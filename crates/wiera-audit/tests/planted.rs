//! The planted-defect fixtures under `tests/fixtures/planted/` each carry
//! one seeded bug: an ABBA lock-order cycle, a replication arm with no
//! epoch fencing, and a forwarded-put arm that never records history.
//! The audit must flag all three — and the CLI must exit 2 on the set.

use std::path::PathBuf;
use std::process::Command;
use wiera_audit::callgraph::Config;
use wiera_audit::{audit, workspace};

fn planted_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/planted")
}

fn planted_compacts() -> Vec<String> {
    let inputs = workspace::discover_paths(&[planted_dir()]);
    assert_eq!(inputs.len(), 3, "three planted fixtures expected");
    let outcome = audit(inputs, Config::default(), None);
    outcome
        .findings
        .iter()
        .map(|f| {
            let origin = f
                .file
                .and_then(|i| outcome.model.files.get(i))
                .map(|x| x.origin.as_str())
                .unwrap_or("<workspace>");
            format!("{origin}: {}", f.diag.compact())
        })
        .collect()
}

#[test]
fn abba_cycle_is_flagged() {
    let c = planted_compacts();
    let hit = c
        .iter()
        .find(|x| x.contains("WS100 deny"))
        .unwrap_or_else(|| panic!("WS100 deny expected: {c:#?}"));
    assert!(
        hit.contains("planted.members") && hit.contains("planted.routes"),
        "cycle names both classes: {hit}"
    );
}

#[test]
fn missing_epoch_fence_is_flagged() {
    let c = planted_compacts();
    assert!(
        c.iter().any(|x| x.contains("missing_fence.rs")
            && x.contains("WS101 deny")
            && x.contains("no epoch fencing")),
        "fence deny expected: {c:#?}"
    );
}

#[test]
fn missing_record_history_is_flagged() {
    let c = planted_compacts();
    assert!(
        c.iter().any(|x| x.contains("missing_history.rs")
            && x.contains("WS101 deny")
            && x.contains("op-history")),
        "history deny expected: {c:#?}"
    );
    // The Get arm in the same handler *does* record history — the check
    // must be per-arm, not per-file.
    assert_eq!(
        c.iter()
            .filter(|x| x.contains("missing_history.rs") && x.contains("op-history"))
            .count(),
        1,
        "exactly the ForwardPut arm: {c:#?}"
    );
}

/// The acceptance gate: the real binary exits 2 on the planted set, and
/// its human output carries all three codes.
#[test]
fn cli_exits_two_on_planted_fixtures() {
    let out = Command::new(env!("CARGO_BIN_EXE_wiera-audit"))
        .arg(planted_dir())
        .output()
        .expect("spawn wiera-audit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(2),
        "deny findings must exit 2; stdout:\n{stdout}"
    );
    assert!(stdout.contains("WS100"), "lock cycle reported:\n{stdout}");
    assert!(
        stdout.contains("no epoch fencing"),
        "fence gap reported:\n{stdout}"
    );
    assert!(
        stdout.contains("op-history"),
        "history gap reported:\n{stdout}"
    );
}

/// JSON mode emits parseable output (shape-checked without a JSON parser:
/// balanced array of objects, each with origin/code/severity keys).
#[test]
fn cli_json_mode_is_well_formed() {
    let out = Command::new(env!("CARGO_BIN_EXE_wiera-audit"))
        .arg("--json")
        .arg(planted_dir())
        .output()
        .expect("spawn wiera-audit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().next().unwrap_or("");
    assert!(line.starts_with('[') && line.ends_with(']'), "{stdout}");
    assert!(line.contains("\"origin\""), "{stdout}");
    assert!(line.contains("\"code\":\"WS100\""), "{stdout}");
    assert!(line.contains("\"severity\""), "{stdout}");
}
