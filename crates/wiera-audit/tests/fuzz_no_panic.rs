//! Fuzz-style property tests: the audit pipeline must never panic.
//!
//! Arbitrary byte soup, Rust-fragment soup, and truncated copies of the
//! analyzer's own sources all have to flow through lex → extract →
//! summarize → resolve → check and come out as findings (possibly none) —
//! panics, overflows, and infinite loops are bugs. The analyzer runs on
//! every PR in CI; a crash on weird-but-valid source would take the gate
//! down with it.

use proptest::prelude::*;
use wiera_audit::callgraph::Config;
use wiera_audit::workspace::Input;

/// Run the full pipeline on arbitrary text.
fn pipeline_survives(src: &str) {
    let outcome = wiera_audit::audit(
        vec![Input {
            origin: "fuzz.rs".to_string(),
            crate_name: "fuzz".to_string(),
            src: src.to_string(),
        }],
        Config::default(),
        Some(&[("a".to_string(), "b".to_string())]),
    );
    for f in &outcome.findings {
        // Rendering must not panic either, even against hostile source.
        let _ = f.diag.render_human(src, "fuzz.rs");
        let _ = f.diag.compact();
        let _ = f.diag.to_json();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Raw bytes (interpreted lossily as UTF-8) never panic the pipeline.
    #[test]
    fn prop_arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        pipeline_survives(&String::from_utf8_lossy(&bytes));
    }

    /// Rust-fragment soup — much likelier to form items, impls, matches,
    /// and lock calls than raw bytes — never panics either.
    #[test]
    fn prop_fragment_soup_never_panics(parts in prop::collection::vec(
        prop::sample::select(vec![
            "fn", "impl", "struct", "enum", "match", "=>", "{", "}", "(", ")",
            "self", ".", "lock", "read", "write", "unwrap", "expect", "::",
            "TrackedMutex", "TrackedRwLock", "new", "\"class.a\"", "let",
            "mut", "epoch", "<", ";", ",", "#", "[", "]", "cfg", "test",
            "DataMsg", "Replicate", "record_history", "drop", "panic!",
            "// ws-audit: allow(WS100): x\n", "'a", "b\"x\"", "r#\"y\"#", "\n",
        ]),
        0..96,
    )) {
        pipeline_survives(&parts.join(" "));
    }

    /// The analyzer's own sources with a window of bytes deleted still
    /// never panic — truncation mid-token, mid-item, mid-match included.
    #[test]
    fn prop_truncated_real_source_never_panics(
        which in 0usize..4,
        start in 0usize..30_000,
        len in 1usize..4_000,
    ) {
        let src = match which {
            0 => include_str!("../src/lexer.rs"),
            1 => include_str!("../src/items.rs"),
            2 => include_str!("../src/summary.rs"),
            _ => include_str!("../src/checks.rs"),
        };
        let chars: Vec<char> = src.chars().collect();
        let start = start.min(chars.len());
        let end = (start + len).min(chars.len());
        let mutated: String = chars[..start].iter().chain(&chars[end..]).collect();
        pipeline_survives(&mutated);
    }

    /// Deep nesting terminates without blowing the stack (all loops in the
    /// pipeline are token-indexed, not recursive).
    #[test]
    fn prop_deep_nesting_terminates(depth in 1usize..400) {
        pipeline_survives(&format!(
            "fn f() {} self.a.lock(); {}",
            "{".repeat(depth),
            "}".repeat(depth),
        ));
    }
}
