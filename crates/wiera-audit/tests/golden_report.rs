//! Golden report: the full compact finding list for the planted fixture
//! set, pinned to a blessed file. Catches silent regressions in any
//! check (a finding disappearing is as much a bug as a false positive
//! appearing).
//!
//! Re-bless after an intentional analyzer change:
//!
//! ```text
//! WIERA_BLESS=1 cargo test -p wiera-audit --test golden_report
//! ```

use std::path::PathBuf;
use wiera_audit::callgraph::Config;
use wiera_audit::{audit, workspace};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/planted_report.expected")
}

fn render_report() -> String {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/planted");
    let inputs = workspace::discover_paths(&[dir]);
    let outcome = audit(inputs, Config::default(), None);
    let mut out = String::new();
    for f in &outcome.findings {
        let origin = f
            .file
            .and_then(|i| outcome.model.files.get(i))
            .map(|x| x.origin.as_str())
            .unwrap_or("<workspace>");
        // Strip the path prefix so the report is machine-independent.
        let origin = origin.rsplit('/').next().unwrap_or(origin);
        out.push_str(&format!("{origin}: {}\n", f.diag.compact()));
    }
    out
}

#[test]
fn planted_report_matches_golden() {
    let got = render_report();
    if std::env::var_os("WIERA_BLESS").is_some() {
        let path = golden_path();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap_or(());
        }
        std::fs::write(&path, &got).unwrap_or_else(|e| panic!("write golden: {e}"));
        return;
    }
    let want = std::fs::read_to_string(golden_path()).unwrap_or_default();
    assert_eq!(
        got, want,
        "planted-fixture report changed (WIERA_BLESS=1 to accept)"
    );
}
