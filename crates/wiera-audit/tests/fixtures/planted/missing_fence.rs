//! Planted defect: a replication handler arm that applies the write
//! without ever comparing the carried epoch against its own — a zombie
//! primary's traffic would be applied. The audit must report a WS101
//! deny ("no epoch fencing") for the `Replicate` arm. The arm *does*
//! record history, so only the fence half fires.

pub enum DataMsg {
    Replicate { key: String, epoch: u64 },
    Ping,
}

impl Node {
    pub fn handle_replication(&self, d: DataMsg) {
        match d {
            DataMsg::Replicate { key, epoch } => {
                // BUG: no `epoch < self.epoch()` / StaleEpoch check here.
                self.apply_remote(&key);
                self.record_history(&key, epoch);
            }
            DataMsg::Ping => {}
        }
    }

    fn apply_remote(&self, _key: &str) {}

    fn record_history(&self, _key: &str, _epoch: u64) {}
}
