//! Planted defect: a forwarded-put handler arm that fences correctly but
//! never records the op in the history buffer — the exact ForwardPut
//! blind spot class: requests monitors under-count and anti-entropy
//! rejoin misses the write. The audit must report a WS101 deny
//! ("op-history") for the `ForwardPut` arm.

pub enum DataMsg {
    ForwardPut { key: String, epoch: u64 },
    Get { key: String },
}

impl Node {
    pub fn dispatch(&self, d: DataMsg) {
        match d {
            DataMsg::ForwardPut { key, epoch } => {
                if epoch < self.epoch() {
                    self.stale_epoch_fail();
                    return;
                }
                // BUG: applies the put but never calls record_history.
                self.apply_put(&key);
            }
            DataMsg::Get { key } => {
                self.read(&key);
                self.record_history(&key, 0);
            }
        }
    }

    fn epoch(&self) -> u64 {
        0
    }

    fn stale_epoch_fail(&self) {}

    fn apply_put(&self, _key: &str) {}

    fn read(&self, _key: &str) {}

    fn record_history(&self, _key: &str, _epoch: u64) {}
}
