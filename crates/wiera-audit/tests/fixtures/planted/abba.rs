//! Planted defect: a classic ABBA lock-order cycle between two tracked
//! locks. `refresh` takes members → routes, `invalidate` takes routes →
//! members; two threads running one each can deadlock. The audit must
//! report a WS100 deny naming both classes.

pub struct RouteTable {
    members: TrackedMutex<Vec<u64>>,
    routes: TrackedRwLock<Vec<u64>>,
}

pub fn build() -> RouteTable {
    RouteTable {
        members: TrackedMutex::new("planted.members", Vec::new()),
        routes: TrackedRwLock::new("planted.routes", Vec::new()),
    }
}

impl RouteTable {
    pub fn refresh(&self) {
        let m = self.members.lock();
        let mut r = self.routes.write();
        r.clear();
        r.extend(m.iter().copied());
    }

    pub fn invalidate(&self, gone: u64) {
        let mut r = self.routes.write();
        let mut m = self.members.lock();
        r.retain(|&x| x != gone);
        m.retain(|&x| x != gone);
    }
}
