//! Per-function summaries: the facts the checks consume.
//!
//! For each function body the summarizer records, lexically:
//!
//! * tracked-lock acquisitions (`x.lock()` / `x.read()` / `x.write()` with
//!   empty argument lists) together with the guard's lexical scope — end of
//!   statement for temporaries, end of enclosing block (or an explicit
//!   `drop(guard)`) for `let`-bound guards,
//! * call sites with a classified receiver, for interprocedural resolution,
//! * panic sites (`unwrap` / `expect` / `panic!` / `unreachable!` /
//!   `todo!` / `unimplemented!`),
//! * potentially-blocking operations (channel `recv`, `sleep`, `join`, …),
//! * metric uses with literal names and label keys,
//! * `match` arms over enum variants plus every `Enum::Variant` that
//!   appears in any pattern position (match arms, `if let`, `while let`,
//!   `matches!`) — the raw material for handler-completeness checks,
//! * slice/map indexing sites (note-level evidence for panic paths).
//!
//! Scopes and event positions are token indexes into the file's stream.

use crate::items::{FnDef, LockKind, SourceFile};
use crate::lexer::Tok;
use std::collections::HashMap;
use wiera_policy::diag::Span;

/// How a method call's receiver looked at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.m()`
    SelfDot,
    /// `self.field.m()`
    SelfField(String),
    /// `var.m()`
    Var(String),
    /// `Type::m()`
    Qualified(String),
    /// Something more complex (`a().b()`, chained temporaries, …).
    Expr,
    /// `m()` — a free function.
    Free,
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub recv: Receiver,
    /// Token index of the callee identifier.
    pub pos: usize,
    pub span: Span,
    /// The call's argument list was `()`.
    pub empty_args: bool,
}

#[derive(Debug, Clone)]
pub struct Acquire {
    /// Receiver identifier the lock was acquired through (field, binding,
    /// or loop variable), when recognizable.
    pub base: Option<String>,
    pub kind: LockKind,
    /// Token index of the `lock`/`read`/`write` identifier.
    pub pos: usize,
    /// Token index the guard is lexically live until (inclusive).
    pub scope_end: usize,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct PanicSite {
    /// `unwrap`, `expect`, `panic`, `unreachable`, `todo`, `unimplemented`.
    pub what: &'static str,
    pub pos: usize,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct MetricUse {
    /// `counter` / `gauge` / `histogram` / `inc` / `observe`.
    pub method: String,
    /// First-argument string literal; None when the name is computed.
    pub name: Option<String>,
    /// Label keys (and literal values where present) from a `&[("k", v)]`
    /// argument; None when no label array was found at the site.
    pub labels: Option<Vec<(String, Option<String>)>>,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct MatchArm {
    /// `(Enum, Variant)` pairs named in the arm's pattern.
    pub pairs: Vec<(String, String)>,
    /// Token range of the arm's pattern (inclusive, up to the `=>`).
    pub pat: (usize, usize),
    /// Token range of the arm body (inclusive).
    pub body: (usize, usize),
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct IndexSite {
    pub pos: usize,
    pub span: Span,
}

/// Everything the checks need to know about one function body.
#[derive(Debug, Default, Clone)]
pub struct FnSummary {
    pub calls: Vec<CallSite>,
    pub acquires: Vec<Acquire>,
    pub panics: Vec<PanicSite>,
    /// Subset of `calls` that may block (indexes into `calls`).
    pub blocking: Vec<usize>,
    pub metrics: Vec<MetricUse>,
    pub arms: Vec<MatchArm>,
    /// Every `Enum::Variant` appearing in a pattern position.
    pub pattern_pairs: Vec<(String, String)>,
    pub indexes: Vec<IndexSite>,
    /// Body contains epoch-fencing evidence (StaleEpoch / epoch compare).
    pub fence_direct: bool,
}

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];
const BLOCKING_NAMES: [&str; 6] = [
    "recv",
    "recv_timeout",
    "sleep",
    "sleep_until",
    "wait_timeout",
    "wait_open",
];
const METRIC_METHODS: [&str; 5] = ["counter", "gauge", "histogram", "inc", "observe"];
const PANIC_MACROS: [(&str, &str); 4] = [
    ("panic", "panic"),
    ("unreachable", "unreachable"),
    ("todo", "todo"),
    ("unimplemented", "unimplemented"),
];

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Does `range` contain epoch-fencing evidence?
pub fn fence_evidence_in(f: &SourceFile, range: (usize, usize)) -> bool {
    let (lo, hi) = range;
    let hi = hi.min(f.tokens.len().saturating_sub(1));
    let mut i = lo;
    while i <= hi {
        if let Some(Tok::Ident(s)) = f.tok(i) {
            if s == "StaleEpoch" || s.contains("stale_epoch") {
                return true;
            }
            if s == "epoch" {
                // An epoch identifier near a comparison operator.
                let lo_w = i.saturating_sub(3);
                let hi_w = (i + 3).min(hi);
                for w in lo_w..=hi_w {
                    if matches!(
                        f.tok(w),
                        Some(Tok::P("<"))
                            | Some(Tok::P(">"))
                            | Some(Tok::P("<="))
                            | Some(Tok::P(">="))
                            | Some(Tok::P("=="))
                            | Some(Tok::P("!="))
                    ) {
                        return true;
                    }
                }
            }
        }
        i += 1;
    }
    false
}

/// Summarize one function body. `nested` holds token ranges of functions
/// defined inside this one (closures are fine to include; nested `fn`s are
/// separate items and must be skipped).
pub fn summarize(f: &SourceFile, def: &FnDef, nested: &[(usize, usize)]) -> FnSummary {
    let mut out = FnSummary::default();
    let Some((b0, b1)) = def.body else {
        return out;
    };
    let rev: HashMap<usize, usize> = f.matching.iter().map(|(o, c)| (*c, *o)).collect();

    let skip_to = |t: usize| -> Option<usize> {
        nested
            .iter()
            .find(|(s, _)| *s == t)
            .map(|(_, e)| e.saturating_add(1))
    };

    let mut t = b0 + 1;
    while t < b1 {
        if let Some(next) = skip_to(t) {
            t = next;
            continue;
        }
        match f.tok(t) {
            // -- tracked-lock acquisition: `. lock ( )` --------------------
            Some(Tok::P(".")) => {
                if let Some(Tok::Ident(m)) = f.tok(t + 1) {
                    if LOCK_METHODS.contains(&m.as_str())
                        && matches!(f.tok(t + 2), Some(Tok::P("(")))
                        && matches!(f.tok(t + 3), Some(Tok::P(")")))
                    {
                        let kind = if m == "lock" {
                            LockKind::Mutex
                        } else {
                            LockKind::Rw
                        };
                        let base = receiver_base(f, t, &rev);
                        let scope_end = guard_scope(f, t + 1, (b0, b1));
                        out.acquires.push(Acquire {
                            base,
                            kind,
                            pos: t + 1,
                            scope_end,
                            span: f.span(t + 1),
                        });
                    }
                    // -- panic sites: `.unwrap()` / `.expect(` -------------
                    if m == "unwrap"
                        && matches!(f.tok(t + 2), Some(Tok::P("(")))
                        && matches!(f.tok(t + 3), Some(Tok::P(")")))
                    {
                        out.panics.push(PanicSite {
                            what: "unwrap",
                            pos: t + 1,
                            span: f.span(t + 1),
                        });
                    }
                    if m == "expect" && matches!(f.tok(t + 2), Some(Tok::P("("))) {
                        out.panics.push(PanicSite {
                            what: "expect",
                            pos: t + 1,
                            span: f.span(t + 1),
                        });
                    }
                }
                t += 1;
            }
            Some(Tok::Ident(name)) => {
                let name = name.clone();
                // -- panic macros ----------------------------------------
                if matches!(f.tok(t + 1), Some(Tok::P("!"))) {
                    if let Some((_, label)) = PANIC_MACROS.iter().find(|(m, _)| *m == name.as_str())
                    {
                        out.panics.push(PanicSite {
                            what: label,
                            pos: t,
                            span: f.span(t),
                        });
                    }
                    if name == "matches" {
                        collect_matches_pairs(f, t, &mut out.pattern_pairs);
                    }
                    t += 1;
                    continue;
                }
                // -- match statements (arm structure only; the loop keeps
                // scanning inside the body for calls/locks/panics) --------
                if name == "match" && !matches!(f.tok(t.wrapping_sub(1)), Some(Tok::P("."))) {
                    collect_match(f, t, b1, &mut out);
                    t += 1;
                    continue;
                }
                // -- if let / while let ----------------------------------
                if (name == "if" || name == "while")
                    && matches!(f.tok(t + 1), Some(Tok::Ident(k)) if k == "let")
                {
                    collect_let_pattern(f, t + 2, b1, &mut out.pattern_pairs);
                    t += 2;
                    continue;
                }
                // -- call sites ------------------------------------------
                if matches!(f.tok(t + 1), Some(Tok::P("(")))
                    && !starts_upper(&name)
                    && !matches!(
                        name.as_str(),
                        "fn" | "if" | "while" | "for" | "match" | "return" | "loop" | "move"
                    )
                    && !matches!(f.tok(t.wrapping_sub(1)), Some(Tok::Ident(k)) if k == "fn")
                {
                    let empty_args = matches!(f.tok(t + 2), Some(Tok::P(")")));
                    let recv = classify_receiver(f, t);
                    // Empty-arg lock methods were recorded as acquires above;
                    // do not also resolve them as user-function calls.
                    if LOCK_METHODS.contains(&name.as_str()) && empty_args && recv != Receiver::Free
                    {
                        t += 1;
                        continue;
                    }
                    if METRIC_METHODS.contains(&name.as_str()) {
                        if let Some(mu) = metric_use(f, t, &name, &recv) {
                            out.metrics.push(mu);
                        }
                    }
                    if BLOCKING_NAMES.contains(&name.as_str())
                        || (name == "join" && empty_args && recv != Receiver::Free)
                    {
                        out.blocking.push(out.calls.len());
                    }
                    out.calls.push(CallSite {
                        name,
                        recv,
                        pos: t,
                        span: f.span(t),
                        empty_args,
                    });
                }
                t += 1;
            }
            // -- indexing sites ------------------------------------------
            Some(Tok::P("[")) => {
                if let Some(Tok::Ident(x)) = f.tok(t.wrapping_sub(1)) {
                    if !starts_upper(x) && !matches!(f.tok(t.wrapping_sub(2)), Some(Tok::P("#"))) {
                        out.indexes.push(IndexSite {
                            pos: t,
                            span: f.span(t),
                        });
                    }
                }
                t += 1;
            }
            _ => t += 1,
        }
    }
    out.fence_direct = fence_evidence_in(f, (b0, b1));
    out
}

/// The identifier a `.lock()/.read()/.write()` call hangs off: the token
/// before the dot, stepping back over one trailing `(…)`/`[…]` group
/// (`self.shards[i].read()` resolves through `shards`).
fn receiver_base(f: &SourceFile, dot: usize, rev: &HashMap<usize, usize>) -> Option<String> {
    let before = dot.checked_sub(1)?;
    match f.tok(before)? {
        Tok::Ident(x) => Some(x.clone()),
        Tok::P(")") | Tok::P("]") => {
            let open = *rev.get(&before)?;
            match f.tok(open.checked_sub(1)?)? {
                Tok::Ident(y) => Some(y.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Lexical scope of a guard obtained at token `at` (the method ident).
/// `.lock()/.read()/.write()` take no arguments, so the token after the
/// closing paren is always `at + 3`.
fn guard_scope(f: &SourceFile, at: usize, body: (usize, usize)) -> usize {
    guard_scope_at(f, at, at + 3, body)
}

/// Like [`guard_scope`], but for an acquiring expression with an arbitrary
/// argument list — a call to a guard-returning helper such as
/// `MetaStore::shard_write(shard)`. `after_close` is the token index just
/// past the call's matching `)`.
pub(crate) fn guard_scope_at(
    f: &SourceFile,
    at: usize,
    after_close: usize,
    body: (usize, usize),
) -> usize {
    let (b0, b1) = body;
    let bd = f.brace_depth.get(at).copied().unwrap_or(0);

    // Statement start: scan back to `;`, `{`, `}`, or `=>` at our depth.
    let mut s = at;
    while s > b0 + 1 {
        let p = s - 1;
        let pbd = f.brace_depth.get(p).copied().unwrap_or(0);
        if pbd < bd {
            break;
        }
        if pbd == bd
            && matches!(
                f.tok(p),
                Some(Tok::P(";")) | Some(Tok::P("{")) | Some(Tok::P("}")) | Some(Tok::P("=>"))
            )
        {
            break;
        }
        s = p;
    }
    let pd_base = f.paren_depth.get(s).copied().unwrap_or(0);

    // `let g = a.read();` binds the guard to `g`; in `let n = a.read().len();`
    // the guard is a temporary dropped at the end of the statement. The
    // statement is the whole initializer exactly when the token after the
    // acquiring call's closing paren terminates it.
    let terminal = matches!(f.tok(after_close), Some(Tok::P(";")) | None);
    let let_bound = terminal && matches!(f.tok(s), Some(Tok::Ident(k)) if k == "let");
    if let_bound {
        // Guard lives to the end of the enclosing block, or an explicit
        // `drop(binding)`.
        let mut open = None;
        let mut p = at;
        while p > b0 {
            p -= 1;
            if f.brace_depth.get(p).copied().unwrap_or(0) == bd.saturating_sub(1)
                && matches!(f.tok(p), Some(Tok::P("{")))
            {
                open = Some(p);
                break;
            }
        }
        let block_end = open.map(|o| f.close_of(o)).unwrap_or(b1);
        // Binding name (skip `mut`; destructuring gives up on drop-tracking).
        let mut q = s + 1;
        if matches!(f.tok(q), Some(Tok::Ident(k)) if k == "mut") {
            q += 1;
        }
        if let Some(Tok::Ident(binding)) = f.tok(q) {
            let binding = binding.clone();
            let mut d = at;
            while d + 3 <= block_end {
                if matches!(f.tok(d), Some(Tok::Ident(k)) if k == "drop")
                    && matches!(f.tok(d + 1), Some(Tok::P("(")))
                    && matches!(f.tok(d + 2), Some(Tok::Ident(b)) if *b == binding)
                    && matches!(f.tok(d + 3), Some(Tok::P(")")))
                {
                    return d;
                }
                d += 1;
            }
        }
        return block_end;
    }

    // A plain `if`/`while` condition is a terminating scope: its temporaries
    // drop before the body runs. (`if let`/`while let` scrutinee temporaries
    // live through the whole expression, so those keep the statement scope.)
    let mut c = s;
    if matches!(f.tok(c), Some(Tok::Ident(k)) if k == "else") {
        c += 1;
    }
    let plain_cond = matches!(f.tok(c), Some(Tok::Ident(k)) if k == "if" || k == "while")
        && !matches!(f.tok(c + 1), Some(Tok::Ident(k)) if k == "let");

    // Temporary guard: lives to the end of the statement (or arm).
    let mut t = at;
    while t < b1 {
        let tbd = f.brace_depth.get(t).copied().unwrap_or(0);
        let tpd = f.paren_depth.get(t).copied().unwrap_or(0);
        if tbd == bd && tpd == pd_base && matches!(f.tok(t), Some(Tok::P(";")) | Some(Tok::P(",")))
        {
            return t;
        }
        if plain_cond && tbd == bd && tpd == pd_base && matches!(f.tok(t), Some(Tok::P("{"))) {
            return t; // condition evaluated; its temporaries are gone
        }
        if tbd < bd {
            return t; // enclosing block closed without a terminator
        }
        t += 1;
    }
    b1
}

/// Classify what a call at token `t` (the callee ident) hangs off.
fn classify_receiver(f: &SourceFile, t: usize) -> Receiver {
    let Some(prev) = t.checked_sub(1) else {
        return Receiver::Free;
    };
    match f.tok(prev) {
        Some(Tok::P(".")) => match f.tok(prev.wrapping_sub(1)) {
            Some(Tok::Ident(x)) if x == "self" => Receiver::SelfDot,
            Some(Tok::Ident(x)) => {
                let x = x.clone();
                if matches!(f.tok(prev.wrapping_sub(2)), Some(Tok::P("."))) {
                    if matches!(f.tok(prev.wrapping_sub(3)), Some(Tok::Ident(s)) if s == "self") {
                        Receiver::SelfField(x)
                    } else {
                        Receiver::Expr
                    }
                } else {
                    Receiver::Var(x)
                }
            }
            _ => Receiver::Expr,
        },
        Some(Tok::P("::")) => match f.tok(prev.wrapping_sub(1)) {
            Some(Tok::Ident(ty)) if starts_upper(ty) => Receiver::Qualified(ty.clone()),
            // `crate::f()` / `self::f()` / `super::f()` are local free calls;
            // any other `mod::f()` names a foreign module, and resolving it
            // against bare same-file fns of the same name would invent edges
            // (`std::thread::spawn` is not the replica's `spawn`).
            Some(Tok::Ident(p)) if p == "crate" || p == "self" || p == "super" => Receiver::Free,
            Some(Tok::Ident(m)) => Receiver::Qualified(m.clone()),
            _ => Receiver::Free,
        },
        _ => Receiver::Free,
    }
}

/// Parse a metric call's name and labels at token `t` (the method ident).
fn metric_use(f: &SourceFile, t: usize, method: &str, recv: &Receiver) -> Option<MetricUse> {
    let open = t + 1;
    let close = f.close_of(open);
    let name = match f.tok(open + 1) {
        Some(Tok::Str(s)) => Some(s.clone()),
        _ => {
            // Computed name: only trust sites whose receiver clearly is the
            // metrics registry, to avoid swallowing unrelated `.inc(x)`s.
            let metricsy = match recv {
                Receiver::SelfField(x) | Receiver::Var(x) => x.contains("metric"),
                Receiver::Qualified(x) => x.contains("Metrics"),
                _ => false,
            };
            if !metricsy {
                return None;
            }
            None
        }
    };
    // Find a `& [ … ]` label group among the arguments.
    let mut labels = None;
    let mut i = open + 1;
    while i < close {
        if matches!(f.tok(i), Some(Tok::P("&"))) && matches!(f.tok(i + 1), Some(Tok::P("["))) {
            let l_close = f.close_of(i + 1);
            let mut found = Vec::new();
            let mut j = i + 2;
            while j < l_close {
                if matches!(f.tok(j), Some(Tok::P("("))) {
                    let t_close = f.close_of(j);
                    let key = match f.tok(j + 1) {
                        Some(Tok::Str(k)) => Some(k.clone()),
                        _ => None,
                    };
                    if let Some(key) = key {
                        // Value: the tokens after the tuple's comma; literal
                        // when they are exactly one string.
                        let mut comma = None;
                        for c in j + 2..t_close {
                            if matches!(f.tok(c), Some(Tok::P(","))) {
                                comma = Some(c);
                                break;
                            }
                        }
                        let value = match comma {
                            Some(c) if c + 2 == t_close => match f.tok(c + 1) {
                                Some(Tok::Str(v)) => Some(v.clone()),
                                _ => None,
                            },
                            _ => None,
                        };
                        found.push((key, value));
                    }
                    j = t_close + 1;
                    continue;
                }
                j += 1;
            }
            labels = Some(found);
            break;
        }
        // Hop nested groups so `&[…]` inside closures is not misread.
        if matches!(f.tok(i), Some(Tok::P("(")) | Some(Tok::P("["))) {
            i = f.close_of(i) + 1;
            continue;
        }
        i += 1;
    }
    Some(MetricUse {
        method: method.to_string(),
        name,
        labels,
        span: f.span(t),
    })
}

/// Collect `(Enum, Variant)` pairs in `range`, where both sides look like
/// type-ish identifiers. `Self::X` and module paths are excluded.
fn pairs_in(f: &SourceFile, lo: usize, hi: usize, out: &mut Vec<(String, String)>) {
    let mut i = lo;
    while i + 2 <= hi {
        if let (Some(Tok::Ident(e)), Some(Tok::P("::")), Some(Tok::Ident(v))) =
            (f.tok(i), f.tok(i + 1), f.tok(i + 2))
        {
            if starts_upper(e) && e != "Self" && starts_upper(v) {
                out.push((e.clone(), v.clone()));
            }
        }
        i += 1;
    }
}

/// Parse the arm structure of a `match` at token `t`.
fn collect_match(f: &SourceFile, t: usize, limit: usize, out: &mut FnSummary) {
    let (Some(bd), Some(pd)) = (f.brace_depth.get(t).copied(), f.paren_depth.get(t).copied())
    else {
        return;
    };
    // Scrutinee runs to the first `{` at our depth.
    let mut j = t + 1;
    let mut open = None;
    while j < limit && j - t < 256 {
        match f.tok(j) {
            Some(Tok::P("(")) | Some(Tok::P("[")) => {
                j = f.close_of(j) + 1;
                continue;
            }
            Some(Tok::P("{"))
                if f.brace_depth.get(j).copied() == Some(bd)
                    && f.paren_depth.get(j).copied() == Some(pd) =>
            {
                open = Some(j);
                break;
            }
            Some(Tok::P(";")) => return,
            _ => j += 1,
        }
    }
    let Some(open) = open else {
        return;
    };
    let close = f.close_of(open);
    let inner_bd = bd + 1;

    let mut a = open + 1;
    while a < close {
        // Skip attributes on arms.
        if matches!(f.tok(a), Some(Tok::P("#"))) && matches!(f.tok(a + 1), Some(Tok::P("["))) {
            a = f.close_of(a + 1) + 1;
            continue;
        }
        // Pattern: to `=>` at arm depth.
        let pat_start = a;
        let mut p = a;
        let mut arrow = None;
        while p < close {
            match f.tok(p) {
                Some(Tok::P("(")) | Some(Tok::P("[")) | Some(Tok::P("{")) => {
                    p = f.close_of(p) + 1;
                    continue;
                }
                Some(Tok::P("=>")) if f.brace_depth.get(p).copied() == Some(inner_bd) => {
                    arrow = Some(p);
                    break;
                }
                _ => p += 1,
            }
        }
        let Some(arrow) = arrow else {
            break;
        };
        let mut pairs = Vec::new();
        pairs_in(f, pat_start, arrow, &mut pairs);

        // Body: brace block or expression to `,` at arm depth.
        let body_start = arrow + 1;
        let body_end;
        let next_arm;
        if matches!(f.tok(body_start), Some(Tok::P("{"))) {
            body_end = f.close_of(body_start);
            next_arm = if matches!(f.tok(body_end + 1), Some(Tok::P(","))) {
                body_end + 2
            } else {
                body_end + 1
            };
        } else {
            let mut e = body_start;
            while e < close {
                match f.tok(e) {
                    Some(Tok::P("(")) | Some(Tok::P("[")) | Some(Tok::P("{")) => {
                        e = f.close_of(e) + 1;
                        continue;
                    }
                    Some(Tok::P(",")) if f.brace_depth.get(e).copied() == Some(inner_bd) => break,
                    _ => e += 1,
                }
            }
            body_end = e.min(close).saturating_sub(1);
            next_arm = e.min(close) + 1;
        }
        out.pattern_pairs.extend(pairs.iter().cloned());
        out.arms.push(MatchArm {
            pairs,
            pat: (pat_start, arrow.saturating_sub(1)),
            body: (body_start, body_end),
            span: f.span(pat_start),
        });
        a = next_arm.max(a + 1);
    }
}

/// `if let PAT = …` / `while let PAT = …`: pattern runs to the first `=`
/// at the same paren depth.
fn collect_let_pattern(
    f: &SourceFile,
    start: usize,
    limit: usize,
    out: &mut Vec<(String, String)>,
) {
    let pd = f.paren_depth.get(start).copied().unwrap_or(0);
    let mut e = start;
    while e < limit && e - start < 128 {
        match f.tok(e) {
            Some(Tok::P("(")) | Some(Tok::P("[")) | Some(Tok::P("{")) => {
                e = f.close_of(e) + 1;
                continue;
            }
            Some(Tok::P("=")) if f.paren_depth.get(e).copied() == Some(pd) => break,
            _ => e += 1,
        }
    }
    pairs_in(f, start, e.min(limit), out);
}

/// `matches!(expr, PAT)`: pairs in the pattern after the first top-level
/// comma inside the macro group.
fn collect_matches_pairs(f: &SourceFile, bang_name: usize, out: &mut Vec<(String, String)>) {
    // bang_name is the `matches` ident; expect `! (`.
    if !matches!(f.tok(bang_name + 1), Some(Tok::P("!"))) {
        return;
    }
    let open = bang_name + 2;
    if !matches!(f.tok(open), Some(Tok::P("("))) {
        return;
    }
    let close = f.close_of(open);
    let mut i = open + 1;
    let mut comma = None;
    while i < close {
        match f.tok(i) {
            Some(Tok::P("(")) | Some(Tok::P("[")) | Some(Tok::P("{")) => {
                i = f.close_of(i) + 1;
                continue;
            }
            Some(Tok::P(",")) => {
                comma = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    if let Some(c) = comma {
        pairs_in(f, c + 1, close, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{extract, SourceFile};

    fn summarized(src: &str) -> (SourceFile, Vec<(String, FnSummary)>) {
        let f = SourceFile::new("test.rs".into(), "testcrate".into(), src.into());
        let ex = extract(&f, 0);
        let mut out = Vec::new();
        for d in &ex.fns {
            let nested: Vec<(usize, usize)> = ex
                .fns
                .iter()
                .filter(|o| {
                    o.name != d.name
                        && matches!((o.body, d.body), (Some(ob), Some(db)) if ob.0 > db.0 && ob.1 < db.1)
                })
                .filter_map(|o| o.body)
                .collect();
            out.push((d.name.clone(), summarize(&f, d, &nested)));
        }
        (f, out)
    }

    fn only(src: &str) -> FnSummary {
        let (_, v) = summarized(src);
        v.into_iter().map(|(_, s)| s).next().unwrap_or_default()
    }

    #[test]
    fn acquire_with_temp_scope_ends_at_semicolon() {
        let s = only("fn f(&self) { self.queue.lock().push(1); self.next(); }");
        assert_eq!(s.acquires.len(), 1);
        assert_eq!(s.acquires[0].base.as_deref(), Some("queue"));
        assert_eq!(s.acquires[0].kind, LockKind::Mutex);
        // The later call must not be inside the guard's scope.
        let call = s.calls.iter().find(|c| c.name == "next");
        let call_pos = call.map(|c| c.pos).unwrap_or(0);
        assert!(call_pos > s.acquires[0].scope_end, "guard dropped at `;`");
    }

    #[test]
    fn let_bound_guard_spans_block_until_drop() {
        let s =
            only("fn f(&self) { let g = self.state.write(); g.push(1); drop(g); self.after(); }");
        assert_eq!(s.acquires.len(), 1);
        assert_eq!(s.acquires[0].kind, LockKind::Rw);
        let push = s
            .calls
            .iter()
            .find(|c| c.name == "push")
            .map(|c| c.pos)
            .unwrap_or(0);
        let after = s
            .calls
            .iter()
            .find(|c| c.name == "after")
            .map(|c| c.pos)
            .unwrap_or(0);
        assert!(push <= s.acquires[0].scope_end, "held across push");
        assert!(after > s.acquires[0].scope_end, "released by drop()");
    }

    #[test]
    fn indexed_shard_resolves_base_ident() {
        let s = only("fn f(&self) { self.shards[i].read().get(k); }");
        assert_eq!(s.acquires.len(), 1);
        assert_eq!(s.acquires[0].base.as_deref(), Some("shards"));
    }

    #[test]
    fn receivers_classified() {
        let s = only("fn f(&self) { self.put(); self.inst.get(k); coord.send(m); Registry::global(); free(); }");
        let kinds: Vec<(&str, &Receiver)> =
            s.calls.iter().map(|c| (c.name.as_str(), &c.recv)).collect();
        assert!(kinds.contains(&("put", &Receiver::SelfDot)));
        assert!(kinds.contains(&("get", &Receiver::SelfField("inst".into()))));
        assert!(kinds.contains(&("send", &Receiver::Var("coord".into()))));
        assert!(kinds.contains(&("global", &Receiver::Qualified("Registry".into()))));
        assert!(kinds.contains(&("free", &Receiver::Free)));
    }

    #[test]
    fn panic_sites_found() {
        let s = only("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); unreachable!(); z.unwrap_or(0); }");
        let whats: Vec<&str> = s.panics.iter().map(|p| p.what).collect();
        assert_eq!(whats, vec!["unwrap", "expect", "panic", "unreachable"]);
    }

    #[test]
    fn blocking_ops_found() {
        let s = only("fn f() { rx.recv(); rx.recv_timeout(d); thread::sleep(d); h.join(); path.join(\"x\"); }");
        let names: Vec<&str> = s
            .blocking
            .iter()
            .map(|&i| s.calls[i].name.as_str())
            .collect();
        assert_eq!(names, vec!["recv", "recv_timeout", "sleep", "join"]);
    }

    #[test]
    fn match_arms_and_pattern_pairs() {
        let s = only(
            "fn dispatch(&self, d: DataMsg) { match d { DataMsg::Put { key } | DataMsg::Get { key } => self.go(key), DataMsg::Ping => {} _ => {} } }",
        );
        assert_eq!(s.arms.len(), 3);
        assert_eq!(
            s.arms[0].pairs,
            vec![
                ("DataMsg".to_string(), "Put".to_string()),
                ("DataMsg".to_string(), "Get".to_string())
            ]
        );
        assert!(s
            .pattern_pairs
            .contains(&("DataMsg".to_string(), "Ping".to_string())));
        // The or-arm body contains the `go` call.
        let go = s
            .calls
            .iter()
            .find(|c| c.name == "go")
            .map(|c| c.pos)
            .unwrap_or(0);
        assert!(go >= s.arms[0].body.0 && go <= s.arms[0].body.1);
    }

    #[test]
    fn if_let_and_matches_patterns_count_for_coverage() {
        let s = only(
            "fn f(m: DataMsg) { if let DataMsg::PutAck { version } = m { use_it(version); } \
             let b = matches!(m, DataMsg::Pong); }",
        );
        assert!(s
            .pattern_pairs
            .contains(&("DataMsg".into(), "PutAck".into())));
        assert!(s.pattern_pairs.contains(&("DataMsg".into(), "Pong".into())));
        assert!(
            s.arms.is_empty(),
            "if-let/matches! are not fence-checked arms"
        );
    }

    #[test]
    fn fence_evidence_detected() {
        let s = only("fn handle(&self, epoch: u64) { if epoch < self.epoch() { return; } }");
        assert!(s.fence_direct);
        let s2 = only("fn handle(&self) { reply(stale_epoch_fail(1)); }");
        assert!(s2.fence_direct);
        let s3 = only("fn handle(&self) { self.apply(); }");
        assert!(!s3.fence_direct);
    }

    #[test]
    fn metric_uses_with_labels() {
        let s = only(
            "fn f(&self) { self.metrics.inc(\"wiera_put_total\", &[(\"tier\", \"mem\"), (\"node\", id)]); }",
        );
        assert_eq!(s.metrics.len(), 1);
        assert_eq!(s.metrics[0].name.as_deref(), Some("wiera_put_total"));
        let labels = s.metrics[0].labels.clone().unwrap_or_default();
        assert_eq!(labels.len(), 2);
        assert_eq!(labels[0], ("tier".to_string(), Some("mem".to_string())));
        assert_eq!(labels[1], ("node".to_string(), None));
    }

    #[test]
    fn nested_fn_bodies_are_excluded() {
        let (_, v) = summarized("fn outer() { fn inner() { x.unwrap(); } call(); }");
        let outer = v
            .iter()
            .find(|(n, _)| n == "outer")
            .map(|(_, s)| s.clone())
            .unwrap_or_default();
        assert!(
            outer.panics.is_empty(),
            "inner fn's unwrap not attributed to outer"
        );
        assert!(outer.calls.iter().any(|c| c.name == "call"));
    }

    #[test]
    fn soup_never_panics() {
        for s in [
            "fn f() { match x {",
            "fn f() { a.lock(",
            "fn f() { if let = }",
        ] {
            let _ = summarized(s);
        }
    }
}
