//! Brace-aware item extraction over the token stream.
//!
//! One linear pass per file discovers the structural facts the auditor
//! needs — no full parse, no `syn`:
//!
//! * function items (`fn name … { body }`) with their enclosing impl type
//!   and `#[test]` / `#[cfg(test)]` classification,
//! * enum definitions with their variant lists,
//! * struct fields with a best-effort element type (so `self.inst.get(…)`
//!   can resolve through `inst: Arc<Instance>`),
//! * tracked-lock declarations: `TrackedMutex::new("class", …)` /
//!   `TrackedRwLock::new_in(&reg, "class", …)` sites, with the field or
//!   `let` binding they initialize.
//!
//! Everything is resilient to unbalanced or nonsensical token soup: all
//! lookups are bounds-checked and unmatched brackets simply truncate the
//! item at end of file.

use crate::lexer::{Allow, Lexed, Tok, Token};
use std::collections::HashMap;
use wiera_policy::diag::Span;

/// One audited source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Display path (repo-relative where possible).
    pub origin: String,
    pub crate_name: String,
    pub src: String,
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
    /// `open index → close index` for `{`, `(`, `[` pairs.
    pub matching: HashMap<usize, usize>,
    /// Brace-only nesting depth per token.
    pub brace_depth: Vec<u32>,
    /// Paren+bracket nesting depth per token.
    pub paren_depth: Vec<u32>,
}

impl SourceFile {
    pub fn new(origin: String, crate_name: String, src: String) -> SourceFile {
        let Lexed { tokens, allows } = crate::lexer::lex(&src);
        let (matching, brace_depth, paren_depth) = bracket_maps(&tokens);
        SourceFile {
            origin,
            crate_name,
            src,
            tokens,
            allows,
            matching,
            brace_depth,
            paren_depth,
        }
    }

    /// Matching close for an opening bracket, or end-of-stream when the
    /// file is truncated/unbalanced.
    pub fn close_of(&self, open: usize) -> usize {
        *self
            .matching
            .get(&open)
            .unwrap_or(&self.tokens.len().saturating_sub(1))
    }

    pub fn tok(&self, i: usize) -> Option<&Tok> {
        self.tokens.get(i).map(|t| &t.tok)
    }

    pub fn span(&self, i: usize) -> Span {
        self.tokens.get(i).map(|t| t.span).unwrap_or_default()
    }
}

/// Which lock type a class was declared with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    Rw,
}

/// A `TrackedMutex`/`TrackedRwLock` construction site.
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub file: usize,
    pub class: String,
    pub kind: LockKind,
    /// Struct field or `let` binding receiving the lock, when recognizable.
    pub binding: Option<String>,
    pub span: Span,
}

/// A function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub file: usize,
    pub name: String,
    /// Type of the enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    pub name_span: Span,
    /// Token range of the body including both braces, when present.
    pub body: Option<(usize, usize)>,
    /// `#[test]` function or inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// An enum definition with its variant names.
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub file: usize,
    pub name: String,
    pub variants: Vec<String>,
    pub span: Span,
}

/// A struct field and the best-effort "interesting" type inside it.
#[derive(Debug, Clone)]
pub struct FieldType {
    pub owner: String,
    pub field: String,
    pub ty: String,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct Extracted {
    pub fns: Vec<FnDef>,
    pub enums: Vec<EnumDef>,
    pub locks: Vec<LockDecl>,
    pub fields: Vec<FieldType>,
}

/// Wrapper/container types to see through when deducing a field's type.
const TYPE_WRAPPERS: [&str; 22] = [
    "Arc",
    "Rc",
    "Box",
    "Option",
    "Vec",
    "VecDeque",
    "HashMap",
    "BTreeMap",
    "HashSet",
    "BTreeSet",
    "Mutex",
    "RwLock",
    "TrackedMutex",
    "TrackedRwLock",
    "RefCell",
    "Cell",
    "OnceLock",
    "Result",
    "dyn",
    "impl",
    "Self",
    "PhantomData",
];

/// Primitive-ish names that are never resolution targets.
const TYPE_PRIMITIVES: [&str; 18] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char", "str", "String",
];

fn bracket_maps(tokens: &[Token]) -> (HashMap<usize, usize>, Vec<u32>, Vec<u32>) {
    let mut matching = HashMap::new();
    let mut brace = Vec::with_capacity(tokens.len());
    let mut paren = Vec::with_capacity(tokens.len());
    let mut brace_stack: Vec<usize> = Vec::new();
    let mut paren_stack: Vec<usize> = Vec::new();
    let mut bd = 0u32;
    let mut pd = 0u32;
    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::P("{") => {
                brace.push(bd);
                paren.push(pd);
                bd += 1;
                brace_stack.push(i);
            }
            Tok::P("}") => {
                bd = bd.saturating_sub(1);
                brace.push(bd);
                paren.push(pd);
                if let Some(open) = brace_stack.pop() {
                    matching.insert(open, i);
                }
            }
            Tok::P("(") | Tok::P("[") => {
                brace.push(bd);
                paren.push(pd);
                pd += 1;
                paren_stack.push(i);
            }
            Tok::P(")") | Tok::P("]") => {
                pd = pd.saturating_sub(1);
                brace.push(bd);
                paren.push(pd);
                if let Some(open) = paren_stack.pop() {
                    matching.insert(open, i);
                }
            }
            _ => {
                brace.push(bd);
                paren.push(pd);
            }
        }
    }
    (matching, brace, paren)
}

/// Identifiers inside the attribute group ending at `close` (`]`), walking
/// back to its `#`/`[` opener. Returns None when `at` is not an attribute
/// close.
fn attr_idents_ending_at(f: &SourceFile, close: usize) -> Option<(usize, Vec<String>)> {
    if !matches!(f.tok(close), Some(Tok::P("]"))) {
        return None;
    }
    // Find the matching `[` by scanning the matching map in reverse: walk
    // back for the `[` whose close is `close`.
    let mut open = None;
    let mut i = close;
    while i > 0 {
        i -= 1;
        if matches!(f.tok(i), Some(Tok::P("["))) && f.close_of(i) == close {
            open = Some(i);
            break;
        }
        // Attributes are short; give up after a window to stay linear.
        if close - i > 256 {
            break;
        }
    }
    let open = open?;
    if open == 0 || !matches!(f.tok(open - 1), Some(Tok::P("#"))) {
        return None;
    }
    let idents = f.tokens[open + 1..close]
        .iter()
        .filter_map(|t| t.tok.ident().map(|s| s.to_string()))
        .collect();
    Some((open - 1, idents))
}

/// Attributes attached to the item whose first token (after attributes)
/// is `item_start`: walks backwards over contiguous `#[…]` groups.
fn attrs_before(f: &SourceFile, item_start: usize) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut pos = item_start;
    while pos > 0 {
        match attr_idents_ending_at(f, pos - 1) {
            Some((hash_pos, idents)) => {
                out.push(idents);
                pos = hash_pos;
            }
            None => break,
        }
    }
    out
}

fn attrs_mark_test(attrs: &[Vec<String>]) -> bool {
    attrs.iter().any(|a| {
        a.iter().any(|i| i == "test")
            || (a.first().is_some_and(|i| i == "cfg") && a.iter().any(|i| i == "test"))
    })
}

/// Is token `i` in item position (start of a top-level-ish item)?
fn item_position(f: &SourceFile, i: usize) -> bool {
    if i == 0 {
        return true;
    }
    match f.tok(i - 1) {
        Some(Tok::P("}")) | Some(Tok::P(";")) | Some(Tok::P("]")) | Some(Tok::P("{")) => true,
        Some(Tok::Ident(k)) => {
            matches!(k.as_str(), "pub" | "unsafe" | "async" | "const" | "extern")
        }
        Some(Tok::P(")")) => {
            // `pub(crate) fn …`: the paren group follows a `pub`.
            let mut j = i - 1;
            while j > 0 {
                j -= 1;
                if matches!(f.tok(j), Some(Tok::P("("))) && f.close_of(j) == i - 1 {
                    return j > 0 && matches!(f.tok(j - 1), Some(Tok::Ident(k)) if k == "pub");
                }
                if (i - 1) - j > 16 {
                    break;
                }
            }
            false
        }
        _ => false,
    }
}

/// Skip a generics group starting at `<`, returning the index just past
/// the matching `>`. Angle brackets are not in the matching map, so this
/// counts depth manually; `>=` never appears inside generics in practice.
fn skip_generics(f: &SourceFile, at: usize) -> usize {
    if !matches!(f.tok(at), Some(Tok::P("<"))) {
        return at;
    }
    let mut depth = 0i32;
    let mut i = at;
    let n = f.tokens.len();
    while i < n {
        match f.tok(i) {
            Some(Tok::P("<")) => depth += 1,
            Some(Tok::P(">")) => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            // A body brace means we overran a malformed header; bail out.
            Some(Tok::P("{")) | Some(Tok::P(";")) => return i,
            _ => {}
        }
        i += 1;
        if i - at > 512 {
            break; // malformed; stay linear
        }
    }
    i.min(n)
}

/// Extract items from one file (`file_idx` is its index in the model).
pub fn extract(f: &SourceFile, file_idx: usize) -> Extracted {
    let mut out = Extracted::default();
    let n = f.tokens.len();

    // -- pass 1: impl ranges and cfg(test) mod ranges ----------------------
    let mut impl_ranges: Vec<(usize, usize, String)> = Vec::new();
    let mut test_ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        match f.tok(i) {
            Some(Tok::Ident(k)) if k == "impl" && item_position(f, i) => {
                // Header: impl [<…>] [Trait for] Type[<…>] [where …] {
                let mut j = skip_generics(f, i + 1);
                let mut last_path_ident: Option<String> = None;
                let mut after_for = false;
                while j < n {
                    match f.tok(j) {
                        Some(Tok::P("{")) => break,
                        Some(Tok::P(";")) => break,
                        Some(Tok::Ident(w)) if w == "for" => {
                            after_for = true;
                            last_path_ident = None;
                            j += 1;
                        }
                        Some(Tok::Ident(w)) if w == "where" => {
                            // Type name settled before the where clause.
                            j += 1;
                            while j < n
                                && !matches!(f.tok(j), Some(Tok::P("{")) | Some(Tok::P(";")))
                            {
                                j += 1;
                            }
                        }
                        Some(Tok::P("<")) => {
                            j = skip_generics(f, j);
                        }
                        Some(Tok::Ident(w)) => {
                            // Track the last identifier of the (possibly
                            // qualified) type path; `fmt::Debug for X` keeps
                            // only segments after `for`.
                            let _ = after_for;
                            last_path_ident = Some(w.clone());
                            j += 1;
                        }
                        _ => j += 1,
                    }
                    if j - i > 2048 {
                        break;
                    }
                }
                if j < n && matches!(f.tok(j), Some(Tok::P("{"))) {
                    if let Some(ty) = last_path_ident {
                        impl_ranges.push((j, f.close_of(j), ty));
                    }
                    // Continue scanning inside the impl body normally.
                }
                i = j.max(i + 1);
            }
            Some(Tok::Ident(k)) if k == "mod" && item_position(f, i) => {
                let name = f.tok(i + 1).and_then(|t| t.ident().map(String::from));
                let attrs = attrs_before(f, prev_attr_anchor(f, i));
                let is_test_mod = attrs_mark_test(&attrs) || name.as_deref() == Some("tests");
                if let Some(Tok::P("{")) = f.tok(i + 2) {
                    if is_test_mod {
                        test_ranges.push((i + 2, f.close_of(i + 2)));
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    let impl_type_at = |pos: usize| -> Option<String> {
        impl_ranges
            .iter()
            .filter(|(s, e, _)| *s <= pos && pos <= *e)
            .min_by_key(|(s, e, _)| e - s)
            .map(|(_, _, ty)| ty.clone())
    };
    let in_test_range = |pos: usize| test_ranges.iter().any(|(s, e)| *s <= pos && pos <= *e);

    // -- pass 2: fns, enums, structs, lock declarations --------------------
    let mut i = 0usize;
    while i < n {
        match f.tok(i) {
            Some(Tok::Ident(k)) if k == "fn" => {
                // `fn(` is a function-pointer type, not an item.
                let Some(Tok::Ident(name)) = f.tok(i + 1) else {
                    i += 1;
                    continue;
                };
                let name = name.clone();
                let name_span = f.span(i + 1);
                let mut j = skip_generics(f, i + 2);
                // Parameter list.
                if matches!(f.tok(j), Some(Tok::P("("))) {
                    j = f.close_of(j) + 1;
                }
                // Scan to the body brace or a trait-decl semicolon.
                let mut body = None;
                while j < n {
                    match f.tok(j) {
                        Some(Tok::P("{")) => {
                            body = Some((j, f.close_of(j)));
                            break;
                        }
                        Some(Tok::P(";")) => break,
                        _ => j += 1,
                    }
                    if j - i > 2048 {
                        break;
                    }
                }
                let attrs = attrs_before(f, prev_attr_anchor(f, i));
                out.fns.push(FnDef {
                    file: file_idx,
                    name,
                    impl_type: impl_type_at(i),
                    name_span,
                    body,
                    is_test: attrs_mark_test(&attrs) || in_test_range(i),
                });
                i += 2;
            }
            Some(Tok::Ident(k)) if k == "enum" => {
                if let (Some(Tok::Ident(name)), Some(Tok::P("{"))) =
                    (f.tok(i + 1), f.tok(skip_generics(f, i + 2)))
                {
                    let name = name.clone();
                    let open = skip_generics(f, i + 2);
                    let close = f.close_of(open);
                    let mut variants = Vec::new();
                    let mut j = open + 1;
                    while j < close {
                        // Skip attributes on variants.
                        if matches!(f.tok(j), Some(Tok::P("#")))
                            && matches!(f.tok(j + 1), Some(Tok::P("[")))
                        {
                            j = f.close_of(j + 1) + 1;
                            continue;
                        }
                        if let Some(Tok::Ident(v)) = f.tok(j) {
                            variants.push(v.clone());
                        }
                        // Advance to the token after this variant's `,` at
                        // depth 1, hopping over payload groups.
                        let mut k = j + 1;
                        while k < close {
                            match f.tok(k) {
                                Some(Tok::P("{")) | Some(Tok::P("(")) | Some(Tok::P("[")) => {
                                    k = f.close_of(k) + 1;
                                }
                                Some(Tok::P(",")) => {
                                    k += 1;
                                    break;
                                }
                                _ => k += 1,
                            }
                        }
                        j = k;
                    }
                    out.enums.push(EnumDef {
                        file: file_idx,
                        name,
                        variants,
                        span: f.span(i + 1),
                    });
                    i = close.max(i + 1);
                } else {
                    i += 1;
                }
            }
            Some(Tok::Ident(k)) if k == "struct" => {
                if let Some(Tok::Ident(owner)) = f.tok(i + 1) {
                    let owner = owner.clone();
                    let open = skip_generics(f, i + 2);
                    if matches!(f.tok(open), Some(Tok::P("{"))) {
                        let close = f.close_of(open);
                        let mut j = open + 1;
                        while j < close {
                            // field := [attrs] [pub[(..)]] name ':' type ','
                            if matches!(f.tok(j), Some(Tok::P("#")))
                                && matches!(f.tok(j + 1), Some(Tok::P("[")))
                            {
                                j = f.close_of(j + 1) + 1;
                                continue;
                            }
                            if matches!(f.tok(j), Some(Tok::Ident(w)) if w == "pub") {
                                j += 1;
                                if matches!(f.tok(j), Some(Tok::P("("))) {
                                    j = f.close_of(j) + 1;
                                }
                                continue;
                            }
                            if let (Some(Tok::Ident(field)), Some(Tok::P(":"))) =
                                (f.tok(j), f.tok(j + 1))
                            {
                                let field = field.clone();
                                // Type tokens to `,` at this depth.
                                let mut k = j + 2;
                                let mut ty_idents: Vec<String> = Vec::new();
                                while k < close {
                                    match f.tok(k) {
                                        Some(Tok::P("(")) | Some(Tok::P("["))
                                        | Some(Tok::P("{")) => {
                                            // Collect idents inside groups too.
                                            let g_close = f.close_of(k);
                                            for t in k + 1..g_close.min(close) {
                                                if let Some(Tok::Ident(w)) = f.tok(t) {
                                                    ty_idents.push(w.clone());
                                                }
                                            }
                                            k = g_close + 1;
                                        }
                                        Some(Tok::P(",")) => break,
                                        Some(Tok::Ident(w)) => {
                                            ty_idents.push(w.clone());
                                            k += 1;
                                        }
                                        _ => k += 1,
                                    }
                                }
                                if let Some(ty) = ty_idents
                                    .iter()
                                    .rev()
                                    .find(|t| {
                                        !TYPE_WRAPPERS.contains(&t.as_str())
                                            && !TYPE_PRIMITIVES.contains(&t.as_str())
                                    })
                                    .cloned()
                                {
                                    out.fields.push(FieldType {
                                        owner: owner.clone(),
                                        field,
                                        ty,
                                    });
                                }
                                j = k + 1;
                                continue;
                            }
                            j += 1;
                        }
                        i = close.max(i + 1);
                        continue;
                    }
                }
                i += 1;
            }
            Some(Tok::Ident(k)) if k == "TrackedMutex" || k == "TrackedRwLock" => {
                let kind = if k == "TrackedMutex" {
                    LockKind::Mutex
                } else {
                    LockKind::Rw
                };
                if matches!(f.tok(i + 1), Some(Tok::P("::")))
                    && matches!(f.tok(i + 2), Some(Tok::Ident(m)) if m == "new" || m == "new_in")
                    && matches!(f.tok(i + 3), Some(Tok::P("(")))
                {
                    let close = f.close_of(i + 3);
                    let class = f.tokens[i + 4..close.min(n)]
                        .iter()
                        .find_map(|t| match &t.tok {
                            Tok::Str(s) => Some(s.clone()),
                            _ => None,
                        });
                    if let Some(class) = class {
                        out.locks.push(LockDecl {
                            file: file_idx,
                            class,
                            kind,
                            binding: lock_binding(f, i),
                            span: f.span(i),
                        });
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Anchor for attribute lookup: the first `pub`/`unsafe`-ish modifier
/// before the item keyword, so `#[test] pub fn x` finds its attribute.
fn prev_attr_anchor(f: &SourceFile, kw: usize) -> usize {
    let mut i = kw;
    while i > 0 {
        match f.tok(i - 1) {
            Some(Tok::Ident(k))
                if matches!(k.as_str(), "pub" | "unsafe" | "async" | "const" | "extern") =>
            {
                i -= 1
            }
            Some(Tok::P(")")) => {
                // possibly `pub(crate)`
                let mut j = i - 1;
                let mut hop = None;
                while j > 0 && (i - 1) - j <= 8 {
                    j -= 1;
                    if matches!(f.tok(j), Some(Tok::P("("))) && f.close_of(j) == i - 1 {
                        if j > 0 && matches!(f.tok(j - 1), Some(Tok::Ident(k)) if k == "pub") {
                            hop = Some(j - 1);
                        }
                        break;
                    }
                }
                match hop {
                    Some(h) => i = h,
                    None => break,
                }
            }
            _ => break,
        }
    }
    i
}

/// The field or let-binding a lock construction initializes: walks back
/// over `Arc::new(`-style wrappers to `field:` or `let [mut] name =`.
fn lock_binding(f: &SourceFile, lock_tok: usize) -> Option<String> {
    let mut p = lock_tok; // index of `TrackedMutex`/`TrackedRwLock`
                          // Skip backwards over wrapper calls: `Ident :: Ident (` directly before.
    loop {
        if p >= 4
            && matches!(f.tok(p - 1), Some(Tok::P("(")))
            && matches!(f.tok(p - 2), Some(Tok::Ident(_)))
            && matches!(f.tok(p - 3), Some(Tok::P("::")))
            && matches!(f.tok(p - 4), Some(Tok::Ident(_)))
        {
            p -= 4;
        } else {
            break;
        }
    }
    if p == 0 {
        return None;
    }
    match f.tok(p - 1) {
        Some(Tok::P(":")) => match f.tok(p.checked_sub(2)?) {
            Some(Tok::Ident(field)) => Some(field.clone()),
            _ => None,
        },
        Some(Tok::P("=")) => {
            let mut q = p.checked_sub(2)?;
            if matches!(f.tok(q), Some(Tok::Ident(k)) if k == "mut") {
                q = q.checked_sub(1)?;
            }
            match f.tok(q) {
                Some(Tok::Ident(name)) => Some(name.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("test.rs".into(), "testcrate".into(), src.into())
    }

    #[test]
    fn fns_with_impl_context_and_tests() {
        let f = file(
            "impl ReplicaNode {\n  fn handle_app_op(&self) { self.put(); }\n  #[test]\n  fn check() {}\n}\n\
             fn free() {}\n#[cfg(test)]\nmod tests { fn helper() {} }",
        );
        let ex = extract(&f, 0);
        let names: Vec<(&str, Option<&str>, bool)> = ex
            .fns
            .iter()
            .map(|d| (d.name.as_str(), d.impl_type.as_deref(), d.is_test))
            .collect();
        assert_eq!(
            names,
            vec![
                ("handle_app_op", Some("ReplicaNode"), false),
                ("check", Some("ReplicaNode"), true),
                ("free", None, false),
                ("helper", None, true),
            ]
        );
    }

    #[test]
    fn trait_impl_resolves_self_type() {
        let f = file("impl fmt::Debug for TrackedMutex<T> { fn fmt(&self) {} }");
        let ex = extract(&f, 0);
        assert_eq!(ex.fns[0].impl_type.as_deref(), Some("TrackedMutex"));
    }

    #[test]
    fn enum_variants_with_payloads() {
        let f = file(
            "pub enum DataMsg { Put { key: String, value: Bytes }, Get { key: String }, Ping, \
             Fail { code: FailCode, why: String } }",
        );
        let ex = extract(&f, 0);
        assert_eq!(ex.enums.len(), 1);
        assert_eq!(ex.enums[0].name, "DataMsg");
        assert_eq!(ex.enums[0].variants, vec!["Put", "Get", "Ping", "Fail"]);
    }

    #[test]
    fn struct_fields_see_through_wrappers() {
        let f = file("struct ReplicaNode { inst: Arc<Instance>, peers: Vec<NodeId>, n: u64 }");
        let ex = extract(&f, 0);
        let inst = ex
            .fields
            .iter()
            .find(|x| x.field == "inst")
            .map(|x| x.ty.as_str());
        let peers = ex
            .fields
            .iter()
            .find(|x| x.field == "peers")
            .map(|x| x.ty.as_str());
        assert_eq!(inst, Some("Instance"));
        assert_eq!(peers, Some("NodeId"));
        assert!(
            !ex.fields.iter().any(|x| x.field == "n"),
            "primitives skipped"
        );
    }

    #[test]
    fn lock_decls_with_field_let_and_wrapped_bindings() {
        let f = file(
            "fn build() {\n\
               let state = Arc::new(TrackedMutex::new(\"coord.state\", State::default()));\n\
               let node = Node { queue: TrackedMutex::new(\"replica.queue\", VecDeque::new()),\n\
                                 map: TrackedRwLock::new(\n    \"replica.state\", x) };\n\
             }",
        );
        let ex = extract(&f, 0);
        let got: Vec<(&str, Option<&str>, LockKind)> = ex
            .locks
            .iter()
            .map(|l| (l.class.as_str(), l.binding.as_deref(), l.kind))
            .collect();
        assert_eq!(
            got,
            vec![
                ("coord.state", Some("state"), LockKind::Mutex),
                ("replica.queue", Some("queue"), LockKind::Mutex),
                ("replica.state", Some("map"), LockKind::Rw),
            ]
        );
    }

    #[test]
    fn new_in_takes_second_argument_class() {
        let f = file("let a = Arc::new(TrackedMutex::new_in(&reg, \"adv.lock-a\", 0u32));");
        let ex = extract(&f, 0);
        assert_eq!(ex.locks[0].class, "adv.lock-a");
        assert_eq!(ex.locks[0].binding.as_deref(), Some("a"));
    }

    #[test]
    fn soup_does_not_panic() {
        for s in [
            "fn",
            "impl {",
            "enum E {",
            "struct S { x:",
            "fn f(",
            "}}}}{{{",
        ] {
            let f = file(s);
            let _ = extract(&f, 0);
        }
    }
}
