//! wiera-audit: workspace-wide static analysis of the Wiera Rust sources.
//!
//! The runtime lockreg (wiera-sim) and the consistency oracle
//! (wiera-check) only see what an execution exercises. This crate closes
//! the gap from the other side: a lightweight lexical analyzer — hand
//! rolled lexer, brace-aware item extraction, per-function summaries, an
//! interprocedural call graph — over the *source* of every crate in the
//! workspace, reporting:
//!
//! * **WS100** static lock-order cycles over tracked-lock classes,
//! * **WS101** wire-enum handler completeness, including epoch-fencing and
//!   op-history discipline of replication/write handler arms,
//! * **WS102** panic sites reachable from data-path entry points,
//! * **WS103** blocking operations while a tracked guard is live,
//! * **WS104** metric-name/kind/label discipline,
//! * **WS105** protocol-extraction blind spots (unresolved/widened call
//!   sites reachable from data-path entries),
//! * **WS110–WS114** local properties of the extracted protocol model:
//!   epoch-guard domination of replication-path mutations, request-arm
//!   reply totality, ack-before-commit ordering, epoch monotonicity, and
//!   empty-extraction visibility.
//!
//! The [`protocol`] module additionally extracts each `DataMsg`/`CoordMsg`
//! handler arm into a guarded transition (guards read, state mutated,
//! messages emitted) — the finite model `wiera-model` exhaustively
//! explores.
//!
//! Diagnostics render through wiera-policy's `diag` infrastructure (the
//! same rustc-style output as the policy linter); findings honor
//! `// ws-audit: allow(WSnnn): reason` suppressions. The analysis is
//! lexical and therefore intentionally unsound in both directions —
//! conservative widening can over-approximate call targets, and macro
//! bodies or trait dispatch through external types are invisible — but it
//! is fast, dependency-free, and catches the defect classes that have
//! actually bitten this codebase (see DESIGN.md §12).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod callgraph;
pub mod checks;
pub mod items;
pub mod lexer;
pub mod protocol;
pub mod summary;
pub mod workspace;

use callgraph::{Config, Model};
use checks::{sort_findings, Finding};
use items::SourceFile;

/// Aggregate run statistics, for `--stats` style reporting.
#[derive(Debug, Default)]
pub struct Stats {
    pub files: usize,
    pub fns: usize,
    pub lock_classes: usize,
    pub unresolved_acquires: usize,
    pub widened_calls: usize,
    /// Unresolved call sites reachable from data-path handler entries —
    /// effects behind them are invisible to protocol extraction.
    pub datapath_unresolved: usize,
    /// Widened call sites reachable from data-path handler entries.
    pub datapath_widened: usize,
}

/// Outcome of an audit run.
pub struct Outcome {
    pub model: Model,
    pub findings: Vec<Finding>,
    pub stats: Stats,
    /// The extracted protocol model (handler arms as guarded transitions).
    pub protocol: protocol::ProtocolModel,
}

/// Run the full pipeline over in-memory sources.
pub fn audit(
    inputs: Vec<workspace::Input>,
    cfg: Config,
    runtime_edges: Option<&[(String, String)]>,
) -> Outcome {
    let files: Vec<SourceFile> = inputs
        .into_iter()
        .map(|i| SourceFile::new(i.origin, i.crate_name, i.src))
        .collect();
    let model = Model::build(files, cfg);
    let mut findings = checks::run_checks(&model, runtime_edges);
    let pm = protocol::extract(&model);
    findings.extend(protocol::protocol_checks(&model, &pm));
    let (datapath_unresolved, datapath_widened) =
        protocol::ws105_blind_spots(&model, &mut findings);
    sort_findings(&mut findings);
    let stats = Stats {
        files: model.files.len(),
        fns: model.fns.len(),
        lock_classes: model.classes.len(),
        unresolved_acquires: model.unresolved_acquires,
        widened_calls: model.widened_calls,
        datapath_unresolved,
        datapath_widened,
    };
    Outcome {
        model,
        findings,
        stats,
        protocol: pm,
    }
}
