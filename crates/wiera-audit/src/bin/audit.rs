//! `wiera-audit` — workspace-wide static analysis of the Wiera sources.
//!
//! ```text
//! wiera-audit [--json] [--deny-warnings] [--stats] [--root DIR]
//!             [--runtime-edges FILE] [--protocol-json FILE]
//!             [--protocol-dot FILE] [--codes] [PATHS...]
//! ```
//!
//! With no PATHS, audits every crate under the enclosing workspace
//! (found by walking up from the current directory, or `--root`). PATHS
//! restrict the run to explicit files/directories — the fixture harness
//! uses this.
//!
//! Exit status: `0` clean (notes never gate), `1` warnings present,
//! `2` deny findings (or any warning under `--deny-warnings`), and `2`
//! for usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;
use wiera_audit::callgraph::Config;
use wiera_audit::lexer::Tok;
use wiera_audit::{audit, workspace};
use wiera_policy::diag::{Diagnostic, Severity};

const USAGE: &str = "\
usage: wiera-audit [--json] [--deny-warnings] [--stats] [--root DIR]
                   [--runtime-edges FILE] [--protocol-json FILE]
                   [--protocol-dot FILE] [--codes] [PATHS...]

  --json                print findings as a JSON array instead of human text
  --deny-warnings       exit non-zero on warnings too (notes never gate)
  --stats               print scan statistics after the findings
  --root DIR            workspace root (default: walk up from the cwd)
  --runtime-edges FILE  lock-order edges observed at runtime, as a JSON
                        array of [\"from\",\"to\"] class pairs; reported
                        against the static edge set
  --protocol-json FILE  write the extracted protocol model (handler arms
                        as guarded transitions) as JSON to FILE
  --protocol-dot FILE   write the protocol model as a DOT graph to FILE
  --codes               list the audit diagnostic codes and exit
";

struct Options {
    json: bool,
    deny_warnings: bool,
    stats: bool,
    codes: bool,
    root: Option<PathBuf>,
    runtime_edges: Option<PathBuf>,
    protocol_json: Option<PathBuf>,
    protocol_dot: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        stats: false,
        codes: false,
        root: None,
        runtime_edges: None,
        protocol_json: None,
        protocol_dot: None,
        paths: Vec::new(),
    };
    let mut i = 0usize;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--stats" => opts.stats = true,
            "--codes" => opts.codes = true,
            "--root" | "--runtime-edges" | "--protocol-json" | "--protocol-dot" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return Err(format!("{a} requires a value"));
                };
                match a {
                    "--root" => opts.root = Some(PathBuf::from(v)),
                    "--runtime-edges" => opts.runtime_edges = Some(PathBuf::from(v)),
                    "--protocol-json" => opts.protocol_json = Some(PathBuf::from(v)),
                    _ => opts.protocol_dot = Some(PathBuf::from(v)),
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    Ok(opts)
}

/// Parse a `[["from","to"], …]` runtime-edge file. Reuses the audit lexer:
/// the string literals appear pairwise in order.
fn parse_runtime_edges(text: &str) -> Vec<(String, String)> {
    let strings: Vec<String> = wiera_audit::lexer::lex(text)
        .tokens
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Str(s) => Some(s),
            _ => None,
        })
        .collect();
    strings
        .chunks(2)
        .filter(|c| c.len() == 2)
        .map(|c| (c[0].clone(), c[1].clone()))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("wiera-audit: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.codes {
        for code in wiera_policy::diag::ALL_AUDIT_CODES {
            println!("{}  {}", code.as_str(), code.describe());
        }
        return ExitCode::SUCCESS;
    }

    let inputs = if opts.paths.is_empty() {
        let root = match opts.root.clone().or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| workspace::find_root(&d))
        }) {
            Some(r) => r,
            None => {
                eprintln!("wiera-audit: no workspace root found (pass --root or PATHS)");
                return ExitCode::from(2);
            }
        };
        workspace::discover_workspace(&root)
    } else {
        workspace::discover_paths(&opts.paths)
    };
    if inputs.is_empty() {
        eprintln!("wiera-audit: no .rs sources found");
        return ExitCode::from(2);
    }

    let runtime_edges = match &opts.runtime_edges {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Some(parse_runtime_edges(&text)),
            Err(e) => {
                eprintln!("wiera-audit: cannot read '{}': {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let outcome = audit(inputs, Config::default(), runtime_edges.as_deref());

    for (path, render) in [(&opts.protocol_json, true), (&opts.protocol_dot, false)] {
        let Some(path) = path else { continue };
        let text = if render {
            outcome.protocol.to_json(&outcome.model)
        } else {
            outcome.protocol.to_dot(&outcome.model)
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("wiera-audit: cannot write '{}': {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut counts = (0usize, 0usize, 0usize); // deny, warn, note
    let mut json_items: Vec<String> = Vec::new();
    for f in &outcome.findings {
        match f.diag.severity {
            Severity::Deny => counts.0 += 1,
            Severity::Warn => counts.1 += 1,
            Severity::Note => counts.2 += 1,
        }
        let origin = f
            .file
            .and_then(|i| outcome.model.files.get(i))
            .map(|x| x.origin.as_str())
            .unwrap_or("<workspace>");
        if opts.json {
            json_items.push(diag_json(origin, &f.diag));
        } else {
            match f.file.and_then(|i| outcome.model.files.get(i)) {
                Some(file) => print!("{}", f.diag.render_human(&file.src, origin)),
                None => println!("{}: {}", origin, f.diag.compact()),
            }
        }
    }

    if opts.json {
        println!("[{}]", json_items.join(","));
    } else {
        let (deny, warn, note) = counts;
        println!(
            "{} files audited ({} fns, {} lock classes): {deny} deny, {warn} warning{}, {note} note{}",
            outcome.stats.files,
            outcome.stats.fns,
            outcome.stats.lock_classes,
            if warn == 1 { "" } else { "s" },
            if note == 1 { "" } else { "s" },
        );
    }
    if opts.stats {
        println!(
            "stats: {} unresolved lock acquisitions, {} widened call sites, \
             {} protocol transitions, {} datapath-unresolved, {} datapath-widened",
            outcome.stats.unresolved_acquires,
            outcome.stats.widened_calls,
            outcome.protocol.transitions.len(),
            outcome.stats.datapath_unresolved,
            outcome.stats.datapath_widened
        );
    }

    let (deny, warn, _) = counts;
    if deny > 0 || (opts.deny_warnings && warn > 0) {
        ExitCode::from(2)
    } else if warn > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The diagnostic's own JSON with the origin file spliced in.
fn diag_json(origin: &str, d: &Diagnostic) -> String {
    let body = d.to_json();
    let rest = body.strip_prefix('{').unwrap_or(&body);
    format!("{{\"origin\":{},{rest}", json_escape(origin))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
