//! Interprocedural model: call resolution, lock-class resolution, and
//! depth-capped fixpoint closures over the call graph.
//!
//! Resolution is deliberately conservative-but-bounded:
//!
//! * `Type::m()` and `self.m()` resolve through impl blocks;
//! * `self.field.m()` resolves through the struct-field type table;
//! * unknown receivers widen to *every* function of that name (the
//!   trait-object fallback) — except for a blocklist of ubiquitous std
//!   method names (`get`, `push`, `clone`, …), which would otherwise drag
//!   half the workspace into every closure;
//! * widened candidate sets are capped, and closure propagation runs a
//!   bounded number of rounds, so pathological graphs stay linear.

use crate::items::{self, EnumDef, FieldType, FnDef, LockDecl, LockKind, SourceFile};
use crate::summary::{self, FnSummary, Receiver};
use std::collections::{BTreeSet, HashMap};

/// Tuning knobs for resolution and propagation.
#[derive(Debug, Clone)]
pub struct Config {
    /// Fixpoint propagation rounds == maximum call-chain depth considered.
    pub max_rounds: usize,
    /// Maximum candidates a widened (unknown-receiver) call may resolve to.
    pub max_widen: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_rounds: 24,
            max_widen: 12,
        }
    }
}

/// Is `name` on the widening blocklist? Unresolved calls to these names
/// are std-library noise, not analysis blind spots.
pub fn is_widen_blocked(name: &str) -> bool {
    WIDEN_BLOCKLIST.contains(&name)
}

/// Ubiquitous method names that never widen to same-name user functions
/// when the receiver type is unknown.
const WIDEN_BLOCKLIST: [&str; 100] = [
    "new",
    // `drop(x)` is std's free function; widening it to every user
    // `Drop::drop` impl drags unrelated lock closures into whatever
    // happens to call `drop`, fabricating lock-order edges.
    "drop",
    "default",
    "clone",
    "fmt",
    "len",
    "is_empty",
    "insert",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "get",
    "get_mut",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "map_err",
    "and_then",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "to_string",
    "to_vec",
    "to_owned",
    "as_str",
    "as_bytes",
    "as_ref",
    "as_mut",
    "into",
    "from",
    "parse",
    "extend",
    "retain",
    "drain",
    "clear",
    "keys",
    "values",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "min",
    "max",
    "abs",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "trim",
    "starts_with",
    "ends_with",
    "join",
    "send",
    "try_send",
    "recv",
    "recv_timeout",
    "flush",
    "cloned",
    "copied",
    "collect",
    "filter",
    "filter_map",
    "fold",
    "sum",
    "count",
    "take",
    "skip",
    "chain",
    "zip",
    "rev",
    "enumerate",
    "any",
    "all",
    "find",
    "position",
    "last",
    "first",
    "saturating_sub",
    "saturating_add",
    "checked_sub",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "elapsed",
    "load",
    "store",
    "spawn",
];

/// Workspace-wide analysis model.
pub struct Model {
    pub cfg: Config,
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnDef>,
    pub summaries: Vec<FnSummary>,
    pub enums: Vec<EnumDef>,
    pub locks: Vec<LockDecl>,
    pub fields: Vec<FieldType>,
    /// `resolved[f][c]` = fn ids the `c`-th call of fn `f` may target.
    pub resolved: Vec<Vec<Vec<usize>>>,
    /// `widened[f][c]` = the `c`-th call of fn `f` used the widening
    /// fallback (unknown receiver resolved by name alone).
    pub widened: Vec<Vec<bool>>,
    /// Interned lock-class names.
    pub classes: Vec<String>,
    /// `acquire_class[f][a]` = class id of the `a`-th acquire of fn `f`.
    pub acquire_class: Vec<Vec<Option<usize>>>,
    /// Acquires with no resolvable class (file, span) — surfaced in stats.
    pub unresolved_acquires: usize,
    /// Call sites that used the widening fallback.
    pub widened_calls: usize,
}

impl Model {
    /// Build the model over already-loaded source files.
    pub fn build(files: Vec<SourceFile>, cfg: Config) -> Model {
        let mut fns: Vec<FnDef> = Vec::new();
        let mut enums = Vec::new();
        let mut locks = Vec::new();
        let mut fields = Vec::new();
        let mut per_file_fn_ranges: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); files.len()];

        for (fi, f) in files.iter().enumerate() {
            let ex = items::extract(f, fi);
            for d in ex.fns {
                if let Some(b) = d.body {
                    per_file_fn_ranges[fi].push((b.0, b.1, fns.len()));
                }
                fns.push(d);
            }
            enums.extend(ex.enums);
            locks.extend(ex.locks);
            fields.extend(ex.fields);
        }

        // Summaries, skipping nested fn bodies.
        let mut summaries = Vec::with_capacity(fns.len());
        for d in &fns {
            let nested: Vec<(usize, usize)> = match d.body {
                Some((s, e)) => per_file_fn_ranges
                    .get(d.file)
                    .map(|v| {
                        v.iter()
                            .filter(|(os, oe, _)| *os > s && *oe < e)
                            .map(|(os, oe, _)| (*os, *oe))
                            .collect()
                    })
                    .unwrap_or_default(),
                None => Vec::new(),
            };
            summaries.push(match files.get(d.file) {
                Some(f) => summary::summarize(f, d, &nested),
                None => FnSummary::default(),
            });
        }

        // Indexes.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_type_method: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        for (id, d) in fns.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(id);
            if let Some(ty) = &d.impl_type {
                by_type_method
                    .entry((ty.as_str(), d.name.as_str()))
                    .or_default()
                    .push(id);
            }
        }
        let mut field_ty: HashMap<(&str, &str), &str> = HashMap::new();
        let mut field_ty_global: HashMap<&str, BTreeSet<&str>> = HashMap::new();
        for ft in &fields {
            field_ty.insert((ft.owner.as_str(), ft.field.as_str()), ft.ty.as_str());
            field_ty_global
                .entry(ft.field.as_str())
                .or_default()
                .insert(ft.ty.as_str());
        }

        // Call resolution.
        let mut resolved: Vec<Vec<Vec<usize>>> = Vec::with_capacity(fns.len());
        let mut widened_flags: Vec<Vec<bool>> = Vec::with_capacity(fns.len());
        let mut widened_calls = 0usize;
        for (id, s) in summaries.iter().enumerate() {
            let caller = &fns[id];
            let mut per_call = Vec::with_capacity(s.calls.len());
            let mut per_widen = Vec::with_capacity(s.calls.len());
            for c in &s.calls {
                let (mut targets, widened) = resolve_call(
                    caller,
                    &c.name,
                    &c.recv,
                    &by_name,
                    &by_type_method,
                    &field_ty,
                    &field_ty_global,
                    &fns,
                    &files,
                    &cfg,
                );
                if widened {
                    widened_calls += 1;
                }
                per_widen.push(widened);
                // Non-test callers never resolve into test helpers.
                if !caller.is_test {
                    targets.retain(|t| !fns[*t].is_test);
                }
                targets.sort_unstable();
                targets.dedup();
                per_call.push(targets);
            }
            resolved.push(per_call);
            widened_flags.push(per_widen);
        }

        // Lock-class resolution.
        let mut class_ids: HashMap<String, usize> = HashMap::new();
        let mut classes: Vec<String> = Vec::new();
        let intern = |name: &str, classes: &mut Vec<String>, ids: &mut HashMap<String, usize>| {
            if let Some(&i) = ids.get(name) {
                return i;
            }
            let i = classes.len();
            classes.push(name.to_string());
            ids.insert(name.to_string(), i);
            i
        };
        let mut acquire_class: Vec<Vec<Option<usize>>> = Vec::with_capacity(fns.len());
        let mut unresolved_acquires = 0usize;
        for (id, s) in summaries.iter().enumerate() {
            let file = fns[id].file;
            let mut per = Vec::with_capacity(s.acquires.len());
            for a in &s.acquires {
                let class = resolve_lock(&locks, file, a.base.as_deref(), a.kind);
                match class {
                    Some(c) => per.push(Some(intern(&c, &mut classes, &mut class_ids))),
                    None => {
                        unresolved_acquires += 1;
                        per.push(None);
                    }
                }
            }
            acquire_class.push(per);
        }

        // Guard-returning helpers: a fn like `MetaStore::shard_write`
        // acquires a lock and *returns the guard*, so the caller — not the
        // helper — holds the lock from the call site onward. Lexical
        // summaries attribute the acquire to the helper's tiny body, losing
        // every edge the caller creates under the guard. Propagate: a call
        // resolved to a fn whose declared return type names a `*Guard*`
        // type re-acquires that fn's lock classes at the call site, scoped
        // like a direct acquire there. Rounds are bounded so chains of
        // guard-returning wrappers converge; `lock`/`read`/`write` callees
        // are skipped because the direct summarizer already records those
        // call sites as acquires.
        let returns_guard: Vec<bool> = fns
            .iter()
            .map(|d| declares_guard_return(&files, d))
            .collect();
        for _ in 0..cfg.max_rounds {
            let mut add: Vec<(usize, summary::Acquire, Option<usize>)> = Vec::new();
            let mut seen: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
            for (f, s) in summaries.iter().enumerate() {
                let Some(body) = fns[f].body else { continue };
                let Some(file) = files.get(fns[f].file) else {
                    continue;
                };
                for (ci, c) in s.calls.iter().enumerate() {
                    for &t in &resolved[f][ci] {
                        if t == f
                            || !returns_guard[t]
                            || matches!(fns[t].name.as_str(), "lock" | "read" | "write")
                        {
                            continue;
                        }
                        for (a, cls) in summaries[t].acquires.iter().zip(&acquire_class[t]) {
                            let Some(cls) = *cls else { continue };
                            let dup = s
                                .acquires
                                .iter()
                                .zip(&acquire_class[f])
                                .any(|(x, k)| x.pos == c.pos && *k == Some(cls));
                            if dup || !seen.insert((f, c.pos, cls)) {
                                continue;
                            }
                            let after_close = if matches!(file.tok(c.pos + 1), Some(t) if t.is("("))
                            {
                                file.close_of(c.pos + 1) + 1
                            } else {
                                c.pos + 3
                            };
                            let scope_end = summary::guard_scope_at(file, c.pos, after_close, body);
                            add.push((
                                f,
                                summary::Acquire {
                                    base: None,
                                    kind: a.kind,
                                    pos: c.pos,
                                    scope_end,
                                    span: c.span,
                                },
                                Some(cls),
                            ));
                        }
                    }
                }
            }
            if add.is_empty() {
                break;
            }
            for (f, a, cls) in add {
                summaries[f].acquires.push(a);
                acquire_class[f].push(cls);
            }
        }

        Model {
            cfg,
            files,
            fns,
            summaries,
            enums,
            locks,
            fields,
            resolved,
            widened: widened_flags,
            classes,
            acquire_class,
            unresolved_acquires,
            widened_calls,
        }
    }

    /// Fixpoint boolean closure: `out[f]` is true when `seed(f)` or any
    /// resolved callee's closure is true, up to `max_rounds` of propagation.
    pub fn bool_closure(&self, seed: impl Fn(usize) -> bool) -> Vec<bool> {
        let mut out: Vec<bool> = (0..self.fns.len()).map(&seed).collect();
        // Each round reads the previous round's snapshot, so `max_rounds`
        // is an honest call-chain depth bound.
        for _ in 0..self.cfg.max_rounds {
            let prev = out.clone();
            let mut changed = false;
            for (f, slot) in out.iter_mut().enumerate() {
                if *slot {
                    continue;
                }
                let hit = self.resolved[f]
                    .iter()
                    .flatten()
                    .any(|&t| prev.get(t).copied().unwrap_or(false));
                if hit {
                    *slot = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        out
    }

    /// Fixpoint set closure: every lock class fn `f` may acquire directly
    /// or through calls, up to `max_rounds` deep.
    pub fn acquires_closure(&self) -> Vec<BTreeSet<usize>> {
        let mut out: Vec<BTreeSet<usize>> = self
            .acquire_class
            .iter()
            .map(|per| per.iter().flatten().copied().collect())
            .collect();
        // Snapshot per round: `max_rounds` bounds propagation depth.
        for _ in 0..self.cfg.max_rounds {
            let prev = out.clone();
            let mut changed = false;
            for (f, slot) in out.iter_mut().enumerate() {
                let mut add: Vec<usize> = Vec::new();
                for targets in &self.resolved[f] {
                    for &t in targets {
                        for &c in prev.get(t).into_iter().flatten() {
                            if !slot.contains(&c) {
                                add.push(c);
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    slot.extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        out
    }

    /// Does the call at `summaries[f].calls[c]` happen while any guard of
    /// fn `f` is lexically live? Returns the live acquire indexes.
    pub fn held_at(&self, f: usize, pos: usize) -> Vec<usize> {
        self.summaries[f]
            .acquires
            .iter()
            .enumerate()
            .filter(|(_, a)| a.pos < pos && pos <= a.scope_end)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Does the fn's declared return type name a guard type? Scans backward
/// from the body brace for the return-type `->`, then looks for any
/// `*Guard*` identifier before the brace. Stops at statement/item
/// boundaries so a previous item's tokens are never misread, and bounds
/// the window so pathological signatures stay cheap.
fn declares_guard_return(files: &[SourceFile], d: &FnDef) -> bool {
    let Some((b0, _)) = d.body else { return false };
    let Some(f) = files.get(d.file) else {
        return false;
    };
    let lo = b0.saturating_sub(64);
    let mut arrow = None;
    let mut p = b0;
    while p > lo {
        p -= 1;
        match f.tok(p) {
            Some(t) if t.is("->") => {
                arrow = Some(p);
                break;
            }
            Some(t) if t.is(";") || t.is("{") || t.is("}") => break,
            _ => {}
        }
    }
    let Some(a) = arrow else { return false };
    (a + 1..b0)
        .any(|i| matches!(f.tok(i), Some(crate::lexer::Tok::Ident(x)) if x.contains("Guard")))
}

#[allow(clippy::too_many_arguments)]
fn resolve_call(
    caller: &FnDef,
    name: &str,
    recv: &Receiver,
    by_name: &HashMap<&str, Vec<usize>>,
    by_type_method: &HashMap<(&str, &str), Vec<usize>>,
    field_ty: &HashMap<(&str, &str), &str>,
    field_ty_global: &HashMap<&str, BTreeSet<&str>>,
    fns: &[FnDef],
    files: &[SourceFile],
    cfg: &Config,
) -> (Vec<usize>, bool) {
    let widen = |blocked_ok: bool| -> (Vec<usize>, bool) {
        if !blocked_ok && WIDEN_BLOCKLIST.contains(&name) {
            return (Vec::new(), false);
        }
        let mut v = by_name.get(name).cloned().unwrap_or_default();
        if v.len() > cfg.max_widen {
            v.truncate(cfg.max_widen);
        }
        let widened = !v.is_empty();
        (v, widened)
    };
    match recv {
        Receiver::Qualified(ty) => {
            if let Some(v) = by_type_method.get(&(ty.as_str(), name)) {
                return (v.clone(), false);
            }
            widen(false)
        }
        Receiver::SelfDot => {
            if let Some(ty) = &caller.impl_type {
                if let Some(v) = by_type_method.get(&(ty.as_str(), name)) {
                    return (v.clone(), false);
                }
            }
            widen(false)
        }
        Receiver::SelfField(field) => {
            let ty = caller
                .impl_type
                .as_deref()
                .and_then(|o| field_ty.get(&(o, field.as_str())).copied())
                .or_else(|| {
                    let set = field_ty_global.get(field.as_str())?;
                    if set.len() == 1 {
                        set.iter().next().copied()
                    } else {
                        None
                    }
                });
            if let Some(ty) = ty {
                if let Some(v) = by_type_method.get(&(ty, name)) {
                    return (v.clone(), false);
                }
            }
            widen(false)
        }
        Receiver::Var(_) | Receiver::Expr => widen(false),
        Receiver::Free => {
            // `drop(x)` is std's free function; the only same-named user
            // fns are `Drop::drop` impls, and resolving to all of them
            // drags unrelated lock closures into every explicit drop.
            if name == "drop" {
                return (Vec::new(), false);
            }
            let all = by_name.get(name).cloned().unwrap_or_default();
            let caller_crate = files
                .get(caller.file)
                .map(|f| f.crate_name.as_str())
                .unwrap_or("");
            let free_only: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&t| fns[t].impl_type.is_none())
                .collect();
            let pool = if free_only.is_empty() {
                &all
            } else {
                &free_only
            };
            let same_file: Vec<usize> = pool
                .iter()
                .copied()
                .filter(|&t| fns[t].file == caller.file)
                .collect();
            if !same_file.is_empty() {
                return (same_file, false);
            }
            let same_crate: Vec<usize> = pool
                .iter()
                .copied()
                .filter(|&t| {
                    files.get(fns[t].file).map(|f| f.crate_name.as_str()) == Some(caller_crate)
                })
                .collect();
            if !same_crate.is_empty() {
                return (same_crate, false);
            }
            let mut v = pool.clone();
            let widened = v.len() > 1;
            if v.len() > cfg.max_widen {
                v.truncate(cfg.max_widen);
            }
            (v, widened)
        }
    }
}

/// Resolve a lock acquisition to its class string.
fn resolve_lock(
    locks: &[LockDecl],
    file: usize,
    base: Option<&str>,
    kind: LockKind,
) -> Option<String> {
    let unique = |iter: &mut dyn Iterator<Item = &LockDecl>| -> Option<String> {
        let mut classes: BTreeSet<&str> = BTreeSet::new();
        for l in iter {
            classes.insert(l.class.as_str());
        }
        if classes.len() == 1 {
            classes.iter().next().map(|s| s.to_string())
        } else {
            None
        }
    };
    if let Some(base) = base {
        // 1. binding match in the same file
        let mut it = locks
            .iter()
            .filter(|l| l.file == file && l.kind == kind && l.binding.as_deref() == Some(base));
        if let Some(c) = unique(&mut it) {
            return Some(c);
        }
        // 2. unique binding match anywhere
        let mut it = locks
            .iter()
            .filter(|l| l.kind == kind && l.binding.as_deref() == Some(base));
        if let Some(c) = unique(&mut it) {
            return Some(c);
        }
    }
    // 3. unique class of that kind declared in this file (covers loop
    //    variables over sharded lock vectors)
    let mut it = locks.iter().filter(|l| l.file == file && l.kind == kind);
    unique(&mut it)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(sources: &[(&str, &str, &str)]) -> Model {
        let files = sources
            .iter()
            .map(|(origin, krate, src)| {
                SourceFile::new(origin.to_string(), krate.to_string(), src.to_string())
            })
            .collect();
        Model::build(files, Config::default())
    }

    fn fn_id(m: &Model, name: &str) -> usize {
        m.fns
            .iter()
            .position(|d| d.name == name)
            .unwrap_or(usize::MAX)
    }

    fn targets_of(m: &Model, caller: &str, callee: &str) -> Vec<String> {
        let f = fn_id(m, caller);
        let mut out = Vec::new();
        for (ci, c) in m.summaries[f].calls.iter().enumerate() {
            if c.name == callee {
                for &t in &m.resolved[f][ci] {
                    let ty = m.fns[t].impl_type.clone().unwrap_or_default();
                    out.push(format!("{}::{}", ty, m.fns[t].name));
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn self_method_resolves_within_impl_block() {
        let m = model(&[(
            "a.rs",
            "c",
            "impl Node { fn go(&self) { self.step(); } fn step(&self) {} }\n\
             impl Other { fn step(&self) {} }",
        )]);
        assert_eq!(targets_of(&m, "go", "step"), vec!["Node::step"]);
    }

    #[test]
    fn field_call_resolves_through_field_type_across_files() {
        let m = model(&[
            (
                "node.rs",
                "c",
                "struct Node { inst: Arc<Instance> }\n\
                 impl Node { fn go(&self) { self.inst.apply(); } }",
            ),
            (
                "inst.rs",
                "c",
                "impl Instance { fn apply(&self) {} }\nimpl Registry { fn apply(&self) {} }",
            ),
        ]);
        assert_eq!(targets_of(&m, "go", "apply"), vec!["Instance::apply"]);
    }

    #[test]
    fn unknown_receiver_widens_but_blocklist_holds() {
        let m = model(&[(
            "a.rs",
            "c",
            "impl A { fn fan_out(&self) { x.apply_delta(); y.get(); } }\n\
             impl B { fn apply_delta(&self) {} }\n\
             impl C { fn apply_delta(&self) {} }\n\
             impl D { fn get(&self) {} }",
        )]);
        // apply_delta is unusual → widened to both impls.
        assert_eq!(
            targets_of(&m, "fan_out", "apply_delta"),
            vec!["B::apply_delta", "C::apply_delta"]
        );
        // get is ubiquitous → blocked from widening.
        assert_eq!(targets_of(&m, "fan_out", "get"), Vec::<String>::new());
    }

    #[test]
    fn guard_returning_helper_propagates_acquire_to_caller() {
        // `grab` returns its shard guard, so `use_it` — not `grab` —
        // holds the lock from the call site to the end of its block.
        let m = model(&[(
            "store.rs",
            "c",
            "fn build() { let s = TrackedRwLock::new(\"store.shards\", ()); }\n\
             pub type ShardGuard<'a> = TrackedWriteGuard<'a, ()>;\n\
             impl Store { fn grab(&self, i: usize) -> ShardGuard<'_> { self.shards[i].write() }\n\
               fn use_it(&self) { let g = self.grab(0); self.step(); } \n\
               fn step(&self) {} }",
        )]);
        let f = fn_id(&m, "use_it");
        assert_eq!(
            m.summaries[f].acquires.len(),
            1,
            "call to guard-returning grab synthesizes an acquire"
        );
        let a = &m.summaries[f].acquires[0];
        assert_eq!(
            m.acquire_class[f][0].map(|c| m.classes[c].as_str()),
            Some("store.shards")
        );
        // The guard is let-bound, so the `step` call happens while held.
        let step = m.summaries[f].calls.iter().find(|c| c.name == "step");
        let pos = step.map(|c| c.pos).unwrap_or(0);
        assert!(a.pos < pos && pos <= a.scope_end, "step runs under guard");
    }

    #[test]
    fn non_guard_returning_helper_propagates_nothing() {
        // `with_shard` acquires internally but returns a plain value; its
        // callers never hold the lock.
        let m = model(&[(
            "store.rs",
            "c",
            "fn build() { let s = TrackedRwLock::new(\"store.shards\", ()); }\n\
             impl Store { fn with_shard(&self, i: usize) -> usize { self.shards[i].write().len() }\n\
               fn use_it(&self) { let n = self.with_shard(0); } }",
        )]);
        let f = fn_id(&m, "use_it");
        assert!(
            m.summaries[f].acquires.is_empty(),
            "value-returning helper must not leak an acquire to callers"
        );
    }

    #[test]
    fn free_drop_call_resolves_to_nothing() {
        // `drop(x)` is std's free function; it must not widen to user
        // `Drop::drop` impls (which would fabricate lock-order edges).
        let m = model(&[(
            "d.rs",
            "c",
            "impl Drop for G { fn drop(&mut self) { self.q.lock(); } }\n\
             fn f(x: G) { drop(x); }",
        )]);
        let f = fn_id(&m, "f");
        assert_eq!(m.resolved[f][0], Vec::<usize>::new());
    }

    #[test]
    fn free_fn_prefers_same_file_then_crate() {
        let m = model(&[
            ("a.rs", "c1", "fn go() { helper(); }\nfn helper() {}"),
            ("b.rs", "c1", "fn helper() {}"),
            ("c.rs", "c2", "fn go2() { helper(); }\nfn unrelated() {}"),
        ]);
        let f = fn_id(&m, "go");
        let t = &m.resolved[f][0];
        assert_eq!(t.len(), 1);
        assert_eq!(m.fns[t[0]].file, 0, "same-file helper wins");
        // go2's crate has no helper → widens to both c1 helpers.
        let f2 = fn_id(&m, "go2");
        assert_eq!(m.resolved[f2][0].len(), 2);
    }

    #[test]
    fn module_qualified_call_never_matches_local_method() {
        // `std::thread::spawn` must not resolve to an unrelated user fn
        // that happens to be named `spawn` in the same file; `crate::`
        // paths stay local free calls.
        let m = model(&[(
            "r.rs",
            "c1",
            "fn fan_out() { std::thread::spawn(|| {}); crate::helper(); }\n\
             fn helper() {}\n\
             impl Replica { pub fn spawn(&self) { self.boot(); } fn boot(&self) {} }",
        )]);
        let f = fn_id(&m, "fan_out");
        let spawn_targets = &m.resolved[f][0];
        assert!(
            spawn_targets.is_empty(),
            "std::thread::spawn resolved to {:?}",
            spawn_targets
                .iter()
                .map(|&t| m.fns[t].name.clone())
                .collect::<Vec<_>>()
        );
        let helper_targets = &m.resolved[f][1];
        assert_eq!(helper_targets.len(), 1, "crate:: call resolves locally");
        assert_eq!(m.fns[helper_targets[0]].name, "helper");
    }

    #[test]
    fn test_fns_are_not_callee_candidates_for_prod_code() {
        let m = model(&[(
            "a.rs",
            "c",
            "fn go() { helper2(); }\n#[cfg(test)]\nmod tests { fn helper2() {} }",
        )]);
        let f = fn_id(&m, "go");
        assert!(m.resolved[f][0].is_empty(), "test helper filtered out");
    }

    #[test]
    fn acquires_closure_propagates_and_respects_depth_cap() {
        let src = "impl A { fn l0(&self) { self.g.lock(); } fn l1(&self) { self.l0(); } \
                   fn l2(&self) { self.l1(); } fn l3(&self) { self.l2(); } }\n\
                   fn build() { let g = TrackedMutex::new(\"cls.g\", ()); }";
        let m = model(&[("a.rs", "c", src)]);
        let closure = m.acquires_closure();
        for f in ["l0", "l1", "l2", "l3"] {
            assert_eq!(closure[fn_id(&m, f)].len(), 1, "{f} sees cls.g");
        }
        // With rounds capped below the chain depth, the far end sees nothing.
        let files = vec![SourceFile::new("a.rs".into(), "c".into(), src.into())];
        let shallow = Model::build(
            files,
            Config {
                max_rounds: 1,
                max_widen: 12,
            },
        );
        let sc = shallow.acquires_closure();
        assert_eq!(sc[fn_id(&shallow, "l0")].len(), 1);
        assert!(
            sc[fn_id(&shallow, "l3")].is_empty(),
            "depth cap stops propagation"
        );
    }

    #[test]
    fn lock_resolution_falls_back_to_unique_file_class() {
        let m = model(&[(
            "meta.rs",
            "c",
            "fn build() { for _ in 0..16 { v.push(TrackedRwLock::new(\"tiera.metastore\", ())); } }\n\
             impl Meta { fn get(&self) { let sh = self.shards[i].read(); } }",
        )]);
        let f = fn_id(&m, "get");
        assert_eq!(m.acquire_class[f], vec![Some(0)]);
        assert_eq!(m.classes, vec!["tiera.metastore"]);
    }

    #[test]
    fn bool_closure_reaches_transitively() {
        let m = model(&[(
            "a.rs",
            "c",
            "impl A { fn top(&self) { self.mid(); } fn mid(&self) { self.record_history(); } \
             fn record_history(&self) {} fn other(&self) {} }",
        )]);
        let reaches = m.bool_closure(|f| m.fns[f].name == "record_history");
        assert!(reaches[fn_id(&m, "top")]);
        assert!(reaches[fn_id(&m, "mid")]);
        assert!(!reaches[fn_id(&m, "other")]);
    }
}
