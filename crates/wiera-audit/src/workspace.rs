//! Source discovery: find the workspace root and enumerate the Rust
//! sources of every crate under `crates/*/src`, plus the facade crate's
//! own `src/`. Fixture runs pass explicit paths instead.

use std::fs;
use std::path::{Path, PathBuf};

/// A discovered source file: display path, crate name, contents.
pub struct Input {
    pub origin: String,
    pub crate_name: String,
    pub src: String,
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn load(root: &Path, path: &Path, crate_name: &str, out: &mut Vec<Input>) {
    let Ok(src) = fs::read_to_string(path) else {
        return;
    };
    let origin = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned();
    out.push(Input {
        origin,
        crate_name: crate_name.to_string(),
        src,
    });
}

/// Every `crates/*/src/**/*.rs` under `root`, plus the facade `src/`.
/// Deterministic order (sorted paths).
pub fn discover_workspace(root: &Path) -> Vec<Input> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for cd in crate_dirs {
        let crate_name = cd
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut files = Vec::new();
        walk_rs(&cd.join("src"), &mut files);
        for f in files {
            load(root, &f, &crate_name, &mut out);
        }
    }
    // Facade crate sources at the workspace root.
    let mut facade = Vec::new();
    walk_rs(&root.join("src"), &mut facade);
    for f in facade {
        load(root, &f, "wiera-suite", &mut out);
    }
    out
}

/// Load explicit paths (files, or directories walked recursively). The
/// crate name is derived from the nearest `crates/<name>/` component, or
/// the parent directory name.
pub fn discover_paths(paths: &[PathBuf]) -> Vec<Input> {
    let mut out = Vec::new();
    for p in paths {
        let mut files = Vec::new();
        if p.is_dir() {
            walk_rs(p, &mut files);
        } else {
            files.push(p.clone());
        }
        for f in files {
            let crate_name = crate_of(&f);
            load(Path::new(""), &f, &crate_name, &mut out);
        }
    }
    out
}

fn crate_of(path: &Path) -> String {
    let comps: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if let Some(i) = comps.iter().position(|c| c == "crates") {
        if let Some(name) = comps.get(i + 1) {
            return name.clone();
        }
    }
    path.parent()
        .and_then(|d| d.file_name())
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string())
}
