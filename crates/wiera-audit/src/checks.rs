//! The WS1xx checks, run over a built [`Model`].
//!
//! | code  | severity | what |
//! |-------|----------|------|
//! | WS100 | deny     | static lock-order cycles over tracked-lock classes |
//! | WS101 | warn/deny| wire-enum variant coverage; epoch-fencing and history |
//! |       |          | completeness of replication/write handler arms |
//! | WS102 | warn     | panic sites reachable from data-path entry points |
//! | WS103 | warn     | blocking operations while a tracked guard is live |
//! | WS104 | warn     | metric-name/kind/label discipline |
//!
//! Every finding honors `// ws-audit: allow(WSnnn): reason` directives on
//! the finding's line (or the line above), and `allow-file(...)` for whole
//! files — the reviewed-suppression mechanism fixtures and deliberate
//! deadlock scenarios use.

use crate::callgraph::Model;
use crate::summary::fence_evidence_in;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use wiera_policy::diag::{Code, Diagnostic, Span};

/// A diagnostic plus the file it is anchored in (None for workspace-level
/// notes such as runtime-coverage summaries).
#[derive(Debug)]
pub struct Finding {
    pub file: Option<usize>,
    pub diag: Diagnostic,
}

/// Enums whose variants make up the wire protocol.
const WIRE_ENUMS: [&str; 2] = ["DataMsg", "CoordMsg"];

/// DataMsg variants whose handler arms must fence on epoch.
const FENCE_REQUIRED: [&str; 6] = [
    "Replicate",
    "ReplicateBatch",
    "ForwardPut",
    "ChangeConsistency",
    "ChangePrimary",
    "SetPeers",
];

/// DataMsg variants whose handler arms must record an op-history span.
const HISTORY_REQUIRED: [&str; 7] = [
    "Put",
    "Get",
    "MultiPut",
    "MultiGet",
    "Replicate",
    "ReplicateBatch",
    "ForwardPut",
];

pub(crate) fn is_handler(name: &str) -> bool {
    name == "dispatch" || name.starts_with("handle_")
}

pub(crate) fn allowed(m: &Model, file: usize, code: &str, line: usize) -> bool {
    m.files
        .get(file)
        .is_some_and(|f| f.allows.iter().any(|a| a.covers(code, line)))
}

/// Run every check. `runtime_edges` are `(from, to)` lock-class pairs the
/// runtime lockreg has observed (from `--runtime-edges`), used to report
/// static/dynamic coverage.
pub fn run_checks(m: &Model, runtime_edges: Option<&[(String, String)]>) -> Vec<Finding> {
    let mut out = Vec::new();
    ws100_lock_cycles(m, runtime_edges, &mut out);
    ws101_handler_completeness(m, &mut out);
    ws102_panic_reachability(m, &mut out);
    ws103_blocking_under_lock(m, &mut out);
    ws104_metrics_discipline(m, &mut out);
    out
}

// ---------------------------------------------------------------------------
// WS100: static lock-order cycles
// ---------------------------------------------------------------------------

struct EdgeEv {
    file: usize,
    span: Span,
    desc: String,
    allowed: bool,
}

/// The static lock-order edge set as `(held-class, acquired-class)` name
/// pairs: class A held while class B is acquired, directly or through a
/// call whose closure acquires B. This is the same edge universe WS100
/// cycles over, exported for the runtime-soundness gate in wiera-check —
/// every edge the runtime lockreg observes must appear here.
pub fn lock_edges(m: &Model) -> BTreeSet<(String, String)> {
    let closure = m.acquires_closure();
    let mut out = BTreeSet::new();
    for (f, s) in m.summaries.iter().enumerate() {
        if m.fns[f].is_test {
            continue;
        }
        for (i, a1) in s.acquires.iter().enumerate() {
            let Some(c1) = m.acquire_class[f][i] else {
                continue;
            };
            for (j, a2) in s.acquires.iter().enumerate() {
                if i == j || !(a1.pos < a2.pos && a2.pos <= a1.scope_end) {
                    continue;
                }
                let Some(c2) = m.acquire_class[f][j] else {
                    continue;
                };
                if c1 != c2 {
                    out.insert((m.classes[c1].clone(), m.classes[c2].clone()));
                }
            }
        }
        for (ci, c) in s.calls.iter().enumerate() {
            let held = m.held_at(f, c.pos);
            if held.is_empty() {
                continue;
            }
            for &t in &m.resolved[f][ci] {
                for &c2 in &closure[t] {
                    for &hi in &held {
                        let Some(c1) = m.acquire_class[f][hi] else {
                            continue;
                        };
                        if c1 != c2 {
                            out.insert((m.classes[c1].clone(), m.classes[c2].clone()));
                        }
                    }
                }
            }
        }
    }
    out
}

fn ws100_lock_cycles(
    m: &Model,
    runtime_edges: Option<&[(String, String)]>,
    out: &mut Vec<Finding>,
) {
    // Edges: class A held while class B is acquired (directly or through a
    // call whose closure acquires B).
    let closure = m.acquires_closure();
    let mut edges: BTreeMap<(usize, usize), Vec<EdgeEv>> = BTreeMap::new();

    for (f, s) in m.summaries.iter().enumerate() {
        if m.fns[f].is_test {
            continue;
        }
        let file = m.fns[f].file;
        let origin = m.files.get(file).map(|x| x.origin.as_str()).unwrap_or("?");
        // Direct acquire-while-held edges.
        for (i, a1) in s.acquires.iter().enumerate() {
            let Some(c1) = m.acquire_class[f][i] else {
                continue;
            };
            for (j, a2) in s.acquires.iter().enumerate() {
                if i == j || !(a1.pos < a2.pos && a2.pos <= a1.scope_end) {
                    continue;
                }
                let Some(c2) = m.acquire_class[f][j] else {
                    continue;
                };
                if c1 == c2 {
                    continue;
                }
                edges.entry((c1, c2)).or_default().push(EdgeEv {
                    file,
                    span: a2.span,
                    desc: format!(
                        "{} acquires '{}' while holding '{}' ({}:{})",
                        m.fns[f].name, m.classes[c2], m.classes[c1], origin, a2.span.line
                    ),
                    allowed: allowed(m, file, "WS100", a2.span.line),
                });
            }
        }
        // Call edges: held here, acquired somewhere down the call chain.
        for (ci, c) in s.calls.iter().enumerate() {
            let held = m.held_at(f, c.pos);
            if held.is_empty() {
                continue;
            }
            for &t in &m.resolved[f][ci] {
                for &c2 in &closure[t] {
                    for &hi in &held {
                        let Some(c1) = m.acquire_class[f][hi] else {
                            continue;
                        };
                        if c1 == c2 {
                            continue;
                        }
                        edges.entry((c1, c2)).or_default().push(EdgeEv {
                            file,
                            span: c.span,
                            desc: format!(
                                "{} calls {} while holding '{}'; {} may acquire '{}' ({}:{})",
                                m.fns[f].name,
                                c.name,
                                m.classes[c1],
                                m.fns[t].name,
                                m.classes[c2],
                                origin,
                                c.span.line
                            ),
                            allowed: allowed(m, file, "WS100", c.span.line),
                        });
                    }
                }
            }
        }
    }

    // SCCs over the class graph.
    let n = m.classes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges.keys() {
        adj[a].push(b);
    }
    let sccs = tarjan_sccs(&adj);

    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let members: BTreeSet<usize> = scc.iter().copied().collect();
        let cycle_edges: Vec<(&(usize, usize), &Vec<EdgeEv>)> = edges
            .iter()
            .filter(|((a, b), _)| members.contains(a) && members.contains(b))
            .collect();
        if cycle_edges
            .iter()
            .all(|(_, evs)| evs.iter().all(|e| e.allowed))
        {
            continue; // every edge reviewed and allowed
        }
        let names: Vec<&str> = members.iter().map(|&c| m.classes[c].as_str()).collect();
        let anchor = cycle_edges
            .iter()
            .flat_map(|(_, evs)| evs.iter())
            .find(|e| !e.allowed);
        let (file, span) = anchor
            .map(|e| (Some(e.file), e.span))
            .unwrap_or((None, Span::default()));
        let mut d = Diagnostic::deny(
            Code::Ws100,
            format!(
                "static lock-order cycle among tracked classes: {}",
                names.join(" <-> ")
            ),
        )
        .at(span);
        for (_, evs) in &cycle_edges {
            if let Some(e) = evs.first() {
                d = d.with_note(e.desc.clone());
            }
        }
        out.push(Finding { file, diag: d });
    }

    // Runtime-coverage note: which static edges lockreg replay has seen.
    let total = edges.len();
    let msg = match runtime_edges {
        Some(rt) => {
            let rtset: HashSet<(&str, &str)> =
                rt.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let covered = edges
                .keys()
                .filter(|(a, b)| rtset.contains(&(m.classes[*a].as_str(), m.classes[*b].as_str())))
                .count();
            let uncovered: Vec<String> = edges
                .keys()
                .filter(|(a, b)| !rtset.contains(&(m.classes[*a].as_str(), m.classes[*b].as_str())))
                .take(5)
                .map(|(a, b)| format!("{} -> {}", m.classes[*a], m.classes[*b]))
                .collect();
            let mut s = format!(
                "lock-order edges: {total} static, {covered} covered by runtime lockreg replay"
            );
            if !uncovered.is_empty() {
                s.push_str(&format!("; uncovered: {}", uncovered.join(", ")));
            }
            s
        }
        None => format!(
            "lock-order edges: {total} static; no runtime lockreg snapshot provided \
             (pass --runtime-edges to report coverage)"
        ),
    };
    out.push(Finding {
        file: None,
        diag: Diagnostic::note(Code::Ws100, msg),
    });
}

/// Iterative Tarjan over a small class graph.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (node, next-child position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, ci)) = frames.last() {
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(ci) {
                if let Some(top) = frames.last_mut() {
                    top.1 += 1;
                }
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

// ---------------------------------------------------------------------------
// WS101: handler completeness
// ---------------------------------------------------------------------------

fn ws101_handler_completeness(m: &Model, out: &mut Vec<Finding>) {
    // (a) coverage: every wire-enum variant must appear in some pattern.
    let mut matched: HashMap<&str, BTreeSet<&str>> = HashMap::new();
    for (f, s) in m.summaries.iter().enumerate() {
        if m.fns[f].is_test {
            continue;
        }
        for (e, v) in &s.pattern_pairs {
            matched.entry(e.as_str()).or_default().insert(v.as_str());
        }
    }
    for e in &m.enums {
        if !WIRE_ENUMS.contains(&e.name.as_str()) {
            continue;
        }
        if allowed(m, e.file, "WS101", e.span.line) {
            continue;
        }
        let seen = matched.get(e.name.as_str());
        let missing: Vec<&str> = e
            .variants
            .iter()
            .map(|v| v.as_str())
            .filter(|v| !seen.is_some_and(|s| s.contains(v)))
            .collect();
        if !missing.is_empty() {
            let mut d = Diagnostic::warn(
                Code::Ws101,
                format!(
                    "wire enum {} has {} variant(s) no non-test code ever matches",
                    e.name,
                    missing.len()
                ),
            )
            .at(e.span);
            for v in missing {
                d = d.with_note(format!(
                    "{}::{} is constructed but never dispatched",
                    e.name, v
                ));
            }
            out.push(Finding {
                file: Some(e.file),
                diag: d,
            });
        }
    }

    // (b) fence/history completeness of handler arms.
    let history = m.bool_closure(|f| m.fns[f].name == "record_history");
    let fence = m.bool_closure(|f| m.summaries[f].fence_direct);

    for (f, s) in m.summaries.iter().enumerate() {
        if m.fns[f].is_test || !is_handler(&m.fns[f].name) {
            continue;
        }
        let file = m.fns[f].file;
        let Some(src_file) = m.files.get(file) else {
            continue;
        };
        for arm in &s.arms {
            let variants: Vec<&str> = arm
                .pairs
                .iter()
                .filter(|(e, _)| e == "DataMsg")
                .map(|(_, v)| v.as_str())
                .collect();
            if variants.is_empty() {
                continue;
            }
            let needs_fence = variants.iter().any(|v| FENCE_REQUIRED.contains(v));
            let needs_history = variants.iter().any(|v| HISTORY_REQUIRED.contains(v));
            if !needs_fence && !needs_history {
                continue;
            }
            if allowed(m, file, "WS101", arm.span.line) {
                continue;
            }
            let calls_in_arm: Vec<usize> = s
                .calls
                .iter()
                .enumerate()
                .filter(|(_, c)| c.pos >= arm.body.0 && c.pos <= arm.body.1)
                .map(|(i, _)| i)
                .collect();
            if needs_fence {
                let direct = fence_evidence_in(src_file, arm.body);
                let transitive = calls_in_arm
                    .iter()
                    .any(|&ci| m.resolved[f][ci].iter().any(|&t| fence[t]));
                if !direct && !transitive {
                    out.push(Finding {
                        file: Some(file),
                        diag: Diagnostic::deny(
                            Code::Ws101,
                            format!(
                                "handler arm for DataMsg::{} performs no epoch fencing",
                                variants.join("|")
                            ),
                        )
                        .at(arm.span)
                        .with_note(
                            "replication/write handlers must refuse stale epochs \
                             (compare against self.epoch() or reply StaleEpoch)"
                                .to_string(),
                        ),
                    });
                }
            }
            if needs_history {
                let direct = calls_in_arm
                    .iter()
                    .any(|&ci| s.calls[ci].name == "record_history");
                let transitive = calls_in_arm
                    .iter()
                    .any(|&ci| m.resolved[f][ci].iter().any(|&t| history[t]));
                if !direct && !transitive {
                    out.push(Finding {
                        file: Some(file),
                        diag: Diagnostic::deny(
                            Code::Ws101,
                            format!(
                                "handler arm for DataMsg::{} never records an op-history span",
                                variants.join("|")
                            ),
                        )
                        .at(arm.span)
                        .with_note(
                            "the consistency oracle only sees ops that reach record_history; \
                             a silent handler is an unauditable write path"
                                .to_string(),
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// WS102: panic-path reachability
// ---------------------------------------------------------------------------

fn ws102_panic_reachability(m: &Model, out: &mut Vec<Finding>) {
    // Multi-source BFS from data-path entry points, keeping parents so the
    // diagnostic can show one witness chain.
    let mut parent: HashMap<usize, Option<usize>> = HashMap::new();
    let mut queue: std::collections::VecDeque<(usize, usize)> = std::collections::VecDeque::new();
    for (f, d) in m.fns.iter().enumerate() {
        if !d.is_test && is_handler(&d.name) && d.body.is_some() {
            parent.insert(f, None);
            queue.push_back((f, 0));
        }
    }
    while let Some((f, depth)) = queue.pop_front() {
        if depth >= m.cfg.max_rounds {
            continue;
        }
        for targets in &m.resolved[f] {
            for &t in targets {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(t) {
                    e.insert(Some(f));
                    queue.push_back((t, depth + 1));
                }
            }
        }
    }

    let chain = |mut f: usize| -> String {
        let mut names = vec![m.fns[f].name.clone()];
        let mut hops = 0;
        while let Some(Some(p)) = parent.get(&f) {
            names.push(m.fns[*p].name.clone());
            f = *p;
            hops += 1;
            if hops > m.cfg.max_rounds {
                break;
            }
        }
        names.reverse();
        names.join(" -> ")
    };

    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut reached: Vec<usize> = parent.keys().copied().collect();
    reached.sort_unstable();
    for f in reached {
        if m.fns[f].is_test {
            continue;
        }
        let file = m.fns[f].file;
        let s = &m.summaries[f];
        for p in &s.panics {
            if allowed(m, file, "WS102", p.span.line) {
                continue;
            }
            // `.expect(..)` / `.unwrap()` that resolved to a *user* method of
            // the same name (e.g. the policy parser's `Parser::expect`) is an
            // ordinary call, not a panic site. Both names are widen-blocked,
            // so a non-empty resolution here is always a typed hit.
            let user_method = s
                .calls
                .iter()
                .enumerate()
                .any(|(i, c)| c.pos == p.pos && !m.resolved[f][i].is_empty());
            if user_method {
                continue;
            }
            if !seen.insert((file, p.span.start)) {
                continue;
            }
            out.push(Finding {
                file: Some(file),
                diag: Diagnostic::warn(
                    Code::Ws102,
                    format!(
                        "`{}` on a path reachable from a data-path entry point",
                        p.what
                    ),
                )
                .at(p.span)
                .with_note(format!("witness call chain: {}", chain(f))),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// WS103: blocking while a tracked guard is live
// ---------------------------------------------------------------------------

fn ws103_blocking_under_lock(m: &Model, out: &mut Vec<Finding>) {
    let blocks = m.bool_closure(|f| !m.summaries[f].blocking.is_empty());
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for (f, s) in m.summaries.iter().enumerate() {
        if m.fns[f].is_test {
            continue;
        }
        let file = m.fns[f].file;
        // Direct blocking sites under a live guard.
        for &bi in &s.blocking {
            let c = &s.calls[bi];
            for hi in m.held_at(f, c.pos) {
                let Some(cls) = m.acquire_class[f][hi] else {
                    continue;
                };
                if allowed(m, file, "WS103", c.span.line) || !seen.insert((file, c.span.start)) {
                    continue;
                }
                out.push(Finding {
                    file: Some(file),
                    diag: Diagnostic::warn(
                        Code::Ws103,
                        format!(
                            "blocking op `{}` while tracked lock '{}' is held",
                            c.name, m.classes[cls]
                        ),
                    )
                    .at(c.span)
                    .with_note(
                        "a blocked thread holding a tracked lock stalls every peer \
                         contending for the same class"
                            .to_string(),
                    ),
                });
            }
        }
        // Calls into functions that may block, while a guard is live here.
        for (ci, c) in s.calls.iter().enumerate() {
            if s.blocking.contains(&ci) {
                continue; // already reported above
            }
            let held = m.held_at(f, c.pos);
            if held.is_empty() {
                continue;
            }
            if !m.resolved[f][ci].iter().any(|&t| blocks[t]) {
                continue;
            }
            for hi in held {
                let Some(cls) = m.acquire_class[f][hi] else {
                    continue;
                };
                if allowed(m, file, "WS103", c.span.line) || !seen.insert((file, c.span.start)) {
                    continue;
                }
                out.push(Finding {
                    file: Some(file),
                    diag: Diagnostic::warn(
                        Code::Ws103,
                        format!(
                            "call to `{}` (which may block on a channel or clock) \
                             while tracked lock '{}' is held",
                            c.name, m.classes[cls]
                        ),
                    )
                    .at(c.span),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// WS104: metrics discipline
// ---------------------------------------------------------------------------

fn metric_kind(method: &str) -> &'static str {
    match method {
        "counter" | "inc" => "counter",
        "gauge" => "gauge",
        _ => "histogram",
    }
}

fn ws104_metrics_discipline(m: &Model, out: &mut Vec<Finding>) {
    struct Site {
        file: usize,
        span: Span,
        kind: &'static str,
        keys: Option<Vec<String>>,
        values: Vec<(String, String)>,
    }
    let mut by_name: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    for (f, s) in m.summaries.iter().enumerate() {
        if m.fns[f].is_test {
            continue;
        }
        let file = m.fns[f].file;
        for mu in &s.metrics {
            match &mu.name {
                Some(name) => {
                    let keys = mu
                        .labels
                        .as_ref()
                        .map(|ls| ls.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>());
                    let values = mu
                        .labels
                        .iter()
                        .flatten()
                        .filter_map(|(k, v)| v.clone().map(|v| (k.clone(), v)))
                        .collect();
                    by_name.entry(name.clone()).or_default().push(Site {
                        file,
                        span: mu.span,
                        kind: metric_kind(&mu.method),
                        keys,
                        values,
                    });
                }
                None => {
                    if !allowed(m, file, "WS104", mu.span.line) {
                        out.push(Finding {
                            file: Some(file),
                            diag: Diagnostic::note(
                                Code::Ws104,
                                format!(
                                    "metric emitted with a computed name (via `{}`)",
                                    mu.method
                                ),
                            )
                            .at(mu.span),
                        });
                    }
                }
            }
        }
    }

    for (name, sites) in &by_name {
        let Some(first) = sites.first() else { continue };
        // Kind consistency.
        let kinds: BTreeSet<&str> = sites.iter().map(|s| s.kind).collect();
        if kinds.len() > 1 && !allowed(m, first.file, "WS104", first.span.line) {
            out.push(Finding {
                file: Some(first.file),
                diag: Diagnostic::warn(
                    Code::Ws104,
                    format!(
                        "metric '{}' is used as more than one kind: {}",
                        name,
                        kinds.into_iter().collect::<Vec<_>>().join(", ")
                    ),
                )
                .at(first.span),
            });
        }
        // Label-key-set consistency across sites that pass literal labels.
        let key_sets: BTreeSet<Vec<String>> = sites.iter().filter_map(|s| s.keys.clone()).collect();
        if key_sets.len() > 1 && !allowed(m, first.file, "WS104", first.span.line) {
            let rendered: Vec<String> = key_sets
                .iter()
                .map(|k| format!("[{}]", k.join(",")))
                .collect();
            out.push(Finding {
                file: Some(first.file),
                diag: Diagnostic::warn(
                    Code::Ws104,
                    format!(
                        "metric '{}' is emitted with inconsistent label keys: {}",
                        name,
                        rendered.join(" vs ")
                    ),
                )
                .at(first.span),
            });
        }
        // Per-site label count bound.
        for s in sites {
            if let Some(keys) = &s.keys {
                if keys.len() > 4 && !allowed(m, s.file, "WS104", s.span.line) {
                    out.push(Finding {
                        file: Some(s.file),
                        diag: Diagnostic::warn(
                            Code::Ws104,
                            format!(
                                "metric '{}' emitted with {} labels (cardinality bound is 4)",
                                name,
                                keys.len()
                            ),
                        )
                        .at(s.span),
                    });
                }
            }
        }
        // Distinct literal values per label key.
        let mut per_key: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for s in sites {
            for (k, v) in &s.values {
                per_key.entry(k.as_str()).or_default().insert(v.as_str());
            }
        }
        for (k, vals) in per_key {
            if vals.len() > 12 && !allowed(m, first.file, "WS104", first.span.line) {
                out.push(Finding {
                    file: Some(first.file),
                    diag: Diagnostic::warn(
                        Code::Ws104,
                        format!(
                            "metric '{}' label '{}' takes {} distinct literal values \
                             (cardinality bound is 12)",
                            name,
                            k,
                            vals.len()
                        ),
                    )
                    .at(first.span),
                });
            }
        }
    }

    // Registered-but-never-used: Invariant::X("name") references in the
    // bench harness must point at metrics some code path emits.
    for (fi, file) in m.files.iter().enumerate() {
        if !file.origin.ends_with("run_all.rs") {
            continue;
        }
        let toks = &file.tokens;
        let mut i = 0usize;
        while i + 4 < toks.len() {
            if toks[i].tok.is_ident("Invariant")
                && toks[i + 1].tok.is("::")
                && matches!(toks[i + 2].tok, crate::lexer::Tok::Ident(_))
                && toks[i + 3].tok.is("(")
            {
                if let crate::lexer::Tok::Str(name) = &toks[i + 4].tok {
                    if !by_name.contains_key(name)
                        && !allowed(m, fi, "WS104", toks[i + 4].span.line)
                    {
                        out.push(Finding {
                            file: Some(fi),
                            diag: Diagnostic::warn(
                                Code::Ws104,
                                format!(
                                    "invariant references metric '{name}' that no non-test \
                                     code path emits with a literal name"
                                ),
                            )
                            .at(toks[i + 4].span),
                        });
                    }
                }
                i += 5;
                continue;
            }
            i += 1;
        }
    }
}

/// Order findings: per file, then by span; workspace notes last.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by_key(|f| {
        (
            f.file.is_none(),
            f.file.unwrap_or(usize::MAX),
            f.diag.span.map(|s| s.start).unwrap_or(0),
            f.diag.code.as_str(),
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Config, Model};
    use crate::items::SourceFile;

    fn audit(sources: &[(&str, &str)]) -> (Model, Vec<Finding>) {
        let files = sources
            .iter()
            .map(|(origin, src)| {
                SourceFile::new(origin.to_string(), "testcrate".to_string(), src.to_string())
            })
            .collect();
        let m = Model::build(files, Config::default());
        let f = run_checks(&m, None);
        (m, f)
    }

    fn compacts(f: &[Finding]) -> Vec<String> {
        f.iter().map(|x| x.diag.compact()).collect()
    }

    #[test]
    fn abba_cycle_is_denied_and_allow_file_suppresses() {
        let src = "fn build() { let a = TrackedMutex::new(\"adv.a\", ()); \
                   let b = TrackedMutex::new(\"adv.b\", ()); }\n\
                   impl W { fn one(&self) { let g = self.a.lock(); self.b.lock(); } \
                   fn two(&self) { let g = self.b.lock(); self.a.lock(); } }\n\
                   struct W { a: TrackedMutex<()>, b: TrackedMutex<()> }";
        let (_, f) = audit(&[("w.rs", src)]);
        assert!(
            f.iter().any(|x| x.diag.compact().starts_with("WS100 deny")),
            "ABBA must be denied: {:?}",
            compacts(&f)
        );
        let suppressed = format!("// ws-audit: allow-file(WS100): deliberate plant\n{src}");
        let (_, f2) = audit(&[("w.rs", &suppressed)]);
        assert!(
            !f2.iter().any(|x| x.diag.compact().contains("WS100 deny")),
            "allow-file suppresses the cycle: {:?}",
            compacts(&f2)
        );
    }

    #[test]
    fn consistent_ordering_is_clean() {
        let src = "fn build() { let a = TrackedMutex::new(\"adv.a\", ()); \
                   let b = TrackedMutex::new(\"adv.b\", ()); }\n\
                   impl W { fn one(&self) { let g = self.a.lock(); self.b.lock(); } \
                   fn two(&self) { let g = self.a.lock(); self.b.lock(); } }";
        let (_, f) = audit(&[("w.rs", src)]);
        assert!(!f.iter().any(|x| x.diag.compact().contains("deny")));
    }

    #[test]
    fn handler_missing_fence_and_history_is_denied() {
        let src = "enum DataMsg { Replicate { epoch: u64 }, Ping }\n\
                   impl Node { fn handle_inline(&self, d: DataMsg) { match d { \
                   DataMsg::Replicate { epoch } => { self.apply(); } \
                   DataMsg::Ping => {} } } \
                   fn apply(&self) {} }";
        let (_, f) = audit(&[("n.rs", src)]);
        let c = compacts(&f);
        assert!(
            c.iter().any(|x| x.contains("no epoch fencing")),
            "fence deny expected: {c:?}"
        );
        assert!(
            c.iter().any(|x| x.contains("op-history")),
            "history deny expected: {c:?}"
        );
    }

    #[test]
    fn fence_and_history_satisfied_transitively() {
        let src = "enum DataMsg { ForwardPut { epoch: u64 }, Ping }\n\
                   impl Node { \
                   fn dispatch(&self, d: DataMsg) { match d { \
                     DataMsg::ForwardPut { epoch } => self.handle_app_op(d), \
                     DataMsg::Ping => {} } } \
                   fn handle_app_op(&self, d: DataMsg) { \
                     if epoch < self.epoch() { return; } self.record_history(); } \
                   fn epoch(&self) -> u64 { 0 } \
                   fn record_history(&self) {} }";
        let (_, f) = audit(&[("n.rs", src)]);
        assert!(
            !f.iter().any(|x| x.diag.compact().contains("deny")),
            "transitive fence+history must satisfy: {:?}",
            compacts(&f)
        );
    }

    #[test]
    fn unmatched_wire_variant_warns() {
        let src = "enum DataMsg { Put, Get, Never }\n\
                   fn use_them(d: DataMsg) { match d { DataMsg::Put => {} DataMsg::Get => {} _ => {} } }";
        let (_, f) = audit(&[("m.rs", src)]);
        let hit = f
            .iter()
            .find(|x| x.diag.compact().contains("variant"))
            .map(|x| format!("{:?}", x.diag.notes));
        assert!(
            hit.is_some_and(|h| h.contains("Never") && !h.contains("::Put")),
            "only Never is unmatched"
        );
    }

    #[test]
    fn panic_reachable_from_handler_warns_with_chain() {
        let src = "impl N { fn handle_op(&self) { self.step(); } \
                   fn step(&self) { self.deep(); } \
                   fn deep(&self) { x.unwrap(); } \
                   fn unrelated(&self) { y.unwrap(); } }";
        let (_, f) = audit(&[("n.rs", src)]);
        let ws102: Vec<&Finding> = f
            .iter()
            .filter(|x| x.diag.compact().starts_with("WS102"))
            .collect();
        assert_eq!(
            ws102.len(),
            1,
            "only the reachable unwrap: {:?}",
            compacts(&f)
        );
        assert!(ws102[0].diag.notes[0].contains("handle_op -> step -> deep"));
    }

    #[test]
    fn blocking_under_lock_warns_direct_and_transitive() {
        let src = "fn build() { let q = TrackedMutex::new(\"n.q\", ()); }\n\
                   impl N { fn direct(&self) { let g = self.q.lock(); rx.recv(); } \
                   fn indirect(&self) { let g = self.q.lock(); self.pump(); } \
                   fn pump(&self) { rx.recv(); } }";
        let (_, f) = audit(&[("n.rs", src)]);
        let ws103: Vec<String> = f
            .iter()
            .filter(|x| x.diag.compact().starts_with("WS103"))
            .map(|x| x.diag.compact())
            .collect();
        assert_eq!(ws103.len(), 2, "direct + transitive: {ws103:?}");
    }

    #[test]
    fn metric_kind_and_label_mismatches_warn() {
        let src =
            "impl N { fn a(&self) { self.metrics.inc(\"wiera_ops\", &[(\"op\", \"put\")]); } \
                   fn b(&self) { self.metrics.observe(\"wiera_ops\", &[(\"kind\", \"x\")]); } }";
        let (_, f) = audit(&[("n.rs", src)]);
        let c = compacts(&f);
        assert!(c.iter().any(|x| x.contains("more than one kind")), "{c:?}");
        assert!(
            c.iter().any(|x| x.contains("inconsistent label keys")),
            "{c:?}"
        );
    }

    #[test]
    fn invariant_over_unknown_metric_warns() {
        let a = "impl N { fn a(&self) { self.metrics.inc(\"wiera_real\", &[]); } }";
        let b = "fn checks() { let i = Invariant::CounterPositive(\"wiera_gone\"); \
                 let j = Invariant::CounterZero(\"wiera_real\"); }";
        let (_, f) = audit(&[("n.rs", a), ("run_all.rs", b)]);
        let c = compacts(&f);
        assert!(
            c.iter().any(|x| x.contains("wiera_gone")),
            "unknown metric flagged: {c:?}"
        );
        assert!(!c.iter().any(|x| x.contains("'wiera_real'")), "{c:?}");
    }
}
