//! Protocol-model extraction: from handler sources to a finite transition
//! system.
//!
//! For every `DataMsg`/`CoordMsg` match arm inside a handler function
//! (`dispatch` / `handle_*`), extraction derives one guarded transition:
//!
//! * **guards** — predicates the arm reads before acting: an epoch fence
//!   (`epoch < self.epoch()` / write-guarded `epoch >= s.epoch` /
//!   `StaleEpoch` replies), a primary check, a lease check;
//! * **effects** — state the arm mutates: metastore writes, epoch bumps,
//!   primary changes, queue operations, history records;
//! * **emits** — wire messages the arm constructs: replies (`PutAck`,
//!   `ReplicateAck`, `Ok`, …), forwards (`Replicate`, `ForwardPut`), and
//!   control broadcasts (`ChangePrimary`, `SetPeers`).
//!
//! Evidence is collected both directly in the arm body and transitively
//! through the resolved call graph (bounded fixpoint closures), so a
//! `Put` arm that mutates through `protocol_put -> primary_side_put ->
//! inst.put` still extracts a `StoreWrite` effect.
//!
//! The extracted [`ProtocolModel`] renders as a human-auditable JSON
//! document and a DOT graph, feeds the WS110–WS114 local-property checks
//! below, and is the input `wiera-model` exhaustively explores. Like the
//! rest of the auditor the extraction is lexical and deliberately
//! unsound in both directions; WS105/WS114 make the blind spots explicit
//! rather than silent (see DESIGN.md §13).

use crate::callgraph::{is_widen_blocked, Model};
use crate::checks::{allowed, is_handler, Finding};
use crate::items::SourceFile;
use crate::lexer::Tok;
use crate::summary::fence_evidence_in;
use std::collections::{BTreeMap, BTreeSet};
use wiera_policy::diag::{Code, Diagnostic, Span};

/// Enums whose variants make up the wire protocol.
pub const WIRE_ENUMS: [&str; 2] = ["DataMsg", "CoordMsg"];

/// A predicate a handler arm reads before acting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Guard {
    /// Refuses stale epochs (compare against the local epoch, or reply
    /// `StaleEpoch`).
    EpochFence,
    /// Branches on primaryship (`self.is_primary()` or a `primary`
    /// comparison).
    PrimaryCheck,
    /// Branches on lease validity.
    LeaseCheck,
}

impl Guard {
    pub fn as_str(self) -> &'static str {
        match self {
            Guard::EpochFence => "epoch-fence",
            Guard::PrimaryCheck => "primary-check",
            Guard::LeaseCheck => "lease-check",
        }
    }
}

/// State a handler arm mutates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Writes the object store / metastore.
    StoreWrite,
    /// Writes the node's epoch.
    EpochBump,
    /// Writes the node's primary designation.
    PrimaryChange,
    /// Touches the replication queue (enqueue/flush).
    QueueOp,
    /// Records an op-history span for the consistency oracle.
    HistoryRecord,
}

impl Effect {
    pub fn as_str(self) -> &'static str {
        match self {
            Effect::StoreWrite => "store-write",
            Effect::EpochBump => "epoch-bump",
            Effect::PrimaryChange => "primary-change",
            Effect::QueueOp => "queue-op",
            Effect::HistoryRecord => "history-record",
        }
    }
}

/// How an emitted message leaves the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EmitKind {
    /// Answers the delivery's reply slot.
    Reply,
    /// Re-sends work to one peer (replication, forwarded writes).
    Forward,
    /// Control-plane fan-out to every peer.
    Broadcast,
}

impl EmitKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EmitKind::Reply => "reply",
            EmitKind::Forward => "forward",
            EmitKind::Broadcast => "broadcast",
        }
    }
}

/// One message construction inside an arm body.
#[derive(Debug, Clone)]
pub struct Emit {
    pub kind: EmitKind,
    /// `Enum::Variant` of the constructed message.
    pub msg_enum: String,
    pub variant: String,
    /// Token index of the construction (ordering evidence).
    pub pos: usize,
}

/// One guarded transition: what a handler arm does to the node.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Handler function containing the arm.
    pub handler: String,
    pub file: usize,
    pub span: Span,
    /// Wire enum the arm matches on.
    pub msg_enum: String,
    /// Variant names (or-patterns keep all of them).
    pub variants: Vec<String>,
    /// The pattern binds an `epoch` payload field.
    pub binds_epoch: bool,
    pub guards: BTreeSet<Guard>,
    pub effects: BTreeSet<Effect>,
    pub emits: Vec<Emit>,
    /// Token index of the first reply-kind emit, for ordering checks.
    pub first_reply_pos: Option<usize>,
    /// Token index of the first state mutation (direct or via the call
    /// that transitively reaches one).
    pub first_mutation_pos: Option<usize>,
    /// Arm body size in tokens (0/1 = intentional no-op arm).
    pub body_tokens: usize,
}

/// The extracted finite model: every handler arm as a guarded transition.
#[derive(Debug, Default)]
pub struct ProtocolModel {
    pub transitions: Vec<Transition>,
}

// ---------------------------------------------------------------------------
// Evidence vocabularies (tuned against the real replica/coordinator idiom)
// ---------------------------------------------------------------------------

/// Method names that write the object store when hung off a store-ish
/// receiver (`self.inst.put(..)`, `meta.update(..)`).
const STORE_METHODS: [&str; 10] = [
    "put",
    "update",
    "insert",
    "remove",
    "remove_version",
    "apply_replicated",
    "apply_batch",
    "ingest",
    "merge",
    "compare_and_put",
];

/// Receiver identifiers that designate the store.
const STORE_RECEIVERS: [&str; 8] = [
    "inst",
    "store",
    "meta",
    "metastore",
    "tier",
    "tiers",
    "db",
    "shard",
];

/// Method names that are store writes regardless of receiver (the
/// unambiguous spellings fixtures and helpers use).
const STORE_METHODS_ANY_RECV: [&str; 8] = [
    "apply_replicated",
    "apply_batch",
    "apply_put",
    "apply_local",
    "apply_remote",
    "store_put",
    "write_local",
    "put_local",
];

/// Reply-slot call names (`reply(slot, msg, took)` closures included).
const QUEUE_CALL_PREFIXES: [&str; 2] = ["flush_", "enqueue"];

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Is `variant` a response message (answers a reply slot) rather than a
/// request/control message?
pub fn is_reply_variant(variant: &str) -> bool {
    variant.ends_with("Reply")
        || variant.ends_with("Ack")
        || matches!(variant, "Ok" | "Pong" | "Fail" | "Granted" | "Denied")
}

fn emit_kind_of(variant: &str) -> EmitKind {
    if is_reply_variant(variant) {
        EmitKind::Reply
    } else if matches!(
        variant,
        "ChangePrimary" | "SetPeers" | "ChangeConsistency" | "Stop"
    ) {
        EmitKind::Broadcast
    } else {
        EmitKind::Forward
    }
}

/// Direct (lexical) evidence found in one token range.
#[derive(Debug, Default, Clone)]
struct DirectEv {
    store_write: Option<usize>,
    epoch_write: Option<usize>,
    primary_change: Option<usize>,
    queue_op: Option<usize>,
    history: Option<usize>,
    primary_check: bool,
    lease_check: bool,
}

fn ident_at(f: &SourceFile, i: usize) -> Option<&str> {
    match f.tok(i) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn is_p(f: &SourceFile, i: usize, p: &str) -> bool {
    matches!(f.tok(i), Some(Tok::P(x)) if *x == p)
}

/// Scan `range` for direct effect/guard evidence.
fn direct_evidence(f: &SourceFile, range: (usize, usize)) -> DirectEv {
    let (lo, hi) = range;
    let hi = hi.min(f.tokens.len().saturating_sub(1));
    let mut ev = DirectEv::default();
    let mut i = lo;
    while i <= hi {
        let Some(name) = ident_at(f, i) else {
            i += 1;
            continue;
        };
        // -- store writes: `recv.method(` -----------------------------------
        if is_p(f, i + 1, "(") {
            let method_ok = STORE_METHODS.contains(&name);
            let any_recv_ok = STORE_METHODS_ANY_RECV.contains(&name);
            if (method_ok || any_recv_ok) && is_p(f, i.wrapping_sub(1), ".") {
                let recv = ident_at(f, i.wrapping_sub(2)).unwrap_or("");
                let store_recv = STORE_RECEIVERS.iter().any(|r| recv.contains(r));
                if (method_ok && store_recv) || any_recv_ok {
                    ev.store_write.get_or_insert(i);
                }
            }
            if name == "record_history" {
                ev.history.get_or_insert(i);
            }
            if name == "set_primary" || name == "promote" || name == "become_primary" {
                ev.primary_change.get_or_insert(i);
            }
            if QUEUE_CALL_PREFIXES.iter().any(|p| name.starts_with(p)) {
                ev.queue_op.get_or_insert(i);
            }
        }
        // -- field writes: `x.epoch = …` / `x.epoch += 1` / `x.primary = …` -
        if name == "epoch" && is_p(f, i.wrapping_sub(1), ".") {
            let plain_assign = is_p(f, i + 1, "=") && !is_p(f, i + 2, "=");
            let increment = is_p(f, i + 1, "+") && is_p(f, i + 2, "=");
            if plain_assign || increment {
                ev.epoch_write.get_or_insert(i);
            }
        }
        if name == "primary" && is_p(f, i.wrapping_sub(1), ".") {
            let plain_assign = is_p(f, i + 1, "=") && !is_p(f, i + 2, "=");
            if plain_assign {
                ev.primary_change.get_or_insert(i);
            }
        }
        // -- queue touch: `queue.lock()` ------------------------------------
        if name == "queue" && is_p(f, i + 1, ".") {
            ev.queue_op.get_or_insert(i);
        }
        // -- guard evidence -------------------------------------------------
        if name == "is_primary" {
            ev.primary_check = true;
        }
        if name == "primary" || name.ends_with("_primary") {
            // `primary` near an equality operator is a primaryship branch.
            let lo_w = i.saturating_sub(3);
            let hi_w = (i + 3).min(hi);
            for w in lo_w..=hi_w {
                if matches!(f.tok(w), Some(Tok::P("==")) | Some(Tok::P("!="))) {
                    ev.primary_check = true;
                }
            }
        }
        if name.contains("lease") {
            ev.lease_check = true;
        }
        i += 1;
    }
    ev
}

/// Wire-message constructions in `range` (expression position only —
/// pattern occurrences in nested matches / `let` bindings are skipped).
fn collect_emits(f: &SourceFile, range: (usize, usize)) -> Vec<Emit> {
    let (lo, hi) = range;
    let hi = hi.min(f.tokens.len().saturating_sub(1));
    let mut out = Vec::new();
    let mut i = lo;
    while i + 2 <= hi {
        let (Some(Tok::Ident(e)), true, Some(Tok::Ident(v))) =
            (f.tok(i), is_p(f, i + 1, "::"), f.tok(i + 2))
        else {
            i += 1;
            continue;
        };
        if !WIRE_ENUMS.contains(&e.as_str()) || !starts_upper(v) {
            i += 1;
            continue;
        }
        // Pattern positions: `let DataMsg::X`, or followed (after one
        // payload group) by `=>` / `|`.
        let preceded_by_let = matches!(ident_at(f, i.wrapping_sub(1)), Some("let"));
        let mut after = i + 3;
        if is_p(f, after, "{") || is_p(f, after, "(") {
            after = f.close_of(after) + 1;
        }
        let pattern_pos = preceded_by_let || is_p(f, after, "=>") || is_p(f, after, "|");
        if !pattern_pos {
            out.push(Emit {
                kind: emit_kind_of(v),
                msg_enum: e.clone(),
                variant: v.clone(),
                pos: i,
            });
        }
        i = (i + 3).max(after.min(hi + 1));
    }
    out
}

/// Per-function closures the transition builder consults for transitive
/// evidence reached through calls.
struct Closures {
    fence: Vec<bool>,
    store: Vec<bool>,
    epoch: Vec<bool>,
    primary: Vec<bool>,
    queue: Vec<bool>,
    history: Vec<bool>,
    primary_check: Vec<bool>,
    lease_check: Vec<bool>,
}

fn fn_evidence(m: &Model) -> Vec<DirectEv> {
    m.fns
        .iter()
        .map(|d| match (d.body, m.files.get(d.file)) {
            (Some(b), Some(f)) => direct_evidence(f, b),
            _ => DirectEv::default(),
        })
        .collect()
}

fn closures(m: &Model, ev: &[DirectEv]) -> Closures {
    Closures {
        fence: m.bool_closure(|f| m.summaries[f].fence_direct),
        store: m.bool_closure(|f| ev[f].store_write.is_some()),
        epoch: m.bool_closure(|f| ev[f].epoch_write.is_some()),
        primary: m.bool_closure(|f| ev[f].primary_change.is_some()),
        queue: m.bool_closure(|f| ev[f].queue_op.is_some()),
        history: m.bool_closure(|f| m.fns[f].name == "record_history"),
        primary_check: m.bool_closure(|f| ev[f].primary_check),
        lease_check: m.bool_closure(|f| ev[f].lease_check),
    }
}

/// Extract the protocol model from a built [`Model`].
pub fn extract(m: &Model) -> ProtocolModel {
    let ev = fn_evidence(m);
    let cls = closures(m, &ev);
    let mut transitions = Vec::new();

    for (fid, s) in m.summaries.iter().enumerate() {
        if m.fns[fid].is_test || !is_handler(&m.fns[fid].name) {
            continue;
        }
        let Some(file) = m.files.get(m.fns[fid].file) else {
            continue;
        };
        for arm in &s.arms {
            // Group the arm's pairs per wire enum (or-patterns may mix).
            let mut per_enum: BTreeMap<&str, Vec<String>> = BTreeMap::new();
            for (e, v) in &arm.pairs {
                if WIRE_ENUMS.contains(&e.as_str()) {
                    per_enum.entry(e.as_str()).or_default().push(v.clone());
                }
            }
            if per_enum.is_empty() {
                continue;
            }
            let binds_epoch = {
                let (lo, hi) = arm.pat;
                (lo..=hi.min(file.tokens.len().saturating_sub(1)))
                    .any(|i| matches!(ident_at(file, i), Some("epoch")))
            };
            let direct = direct_evidence(file, arm.body);
            let fence_direct = fence_evidence_in(file, arm.body);
            let emits = collect_emits(file, arm.body);

            let mut guards = BTreeSet::new();
            let mut effects = BTreeSet::new();
            let mut first_mutation = [
                direct.store_write,
                direct.epoch_write,
                direct.primary_change,
            ]
            .iter()
            .flatten()
            .copied()
            .min();
            if fence_direct {
                guards.insert(Guard::EpochFence);
            }
            if direct.primary_check {
                guards.insert(Guard::PrimaryCheck);
            }
            if direct.lease_check {
                guards.insert(Guard::LeaseCheck);
            }
            if direct.store_write.is_some() {
                effects.insert(Effect::StoreWrite);
            }
            if direct.epoch_write.is_some() {
                effects.insert(Effect::EpochBump);
            }
            if direct.primary_change.is_some() {
                effects.insert(Effect::PrimaryChange);
            }
            if direct.queue_op.is_some() {
                effects.insert(Effect::QueueOp);
            }
            if direct.history.is_some() {
                effects.insert(Effect::HistoryRecord);
            }

            // Transitive evidence through calls made inside the arm.
            for (ci, c) in s.calls.iter().enumerate() {
                if c.pos < arm.body.0 || c.pos > arm.body.1 {
                    continue;
                }
                for &t in &m.resolved[fid][ci] {
                    if cls.fence[t] {
                        guards.insert(Guard::EpochFence);
                    }
                    if cls.primary_check[t] {
                        guards.insert(Guard::PrimaryCheck);
                    }
                    if cls.lease_check[t] {
                        guards.insert(Guard::LeaseCheck);
                    }
                    if cls.store[t] {
                        effects.insert(Effect::StoreWrite);
                        first_mutation = Some(first_mutation.unwrap_or(c.pos).min(c.pos));
                    }
                    if cls.epoch[t] {
                        effects.insert(Effect::EpochBump);
                        first_mutation = Some(first_mutation.unwrap_or(c.pos).min(c.pos));
                    }
                    if cls.primary[t] {
                        effects.insert(Effect::PrimaryChange);
                        first_mutation = Some(first_mutation.unwrap_or(c.pos).min(c.pos));
                    }
                    if cls.queue[t] {
                        effects.insert(Effect::QueueOp);
                    }
                    if cls.history[t] || c.name == "record_history" {
                        effects.insert(Effect::HistoryRecord);
                    }
                }
            }

            let first_reply_pos = emits
                .iter()
                .filter(|e| e.kind == EmitKind::Reply)
                .map(|e| e.pos)
                .min();
            let body_tokens = arm.body.1.saturating_sub(arm.body.0);

            for (msg_enum, variants) in per_enum {
                transitions.push(Transition {
                    handler: m.fns[fid].name.clone(),
                    file: m.fns[fid].file,
                    span: arm.span,
                    msg_enum: msg_enum.to_string(),
                    variants: variants.clone(),
                    binds_epoch,
                    guards: guards.clone(),
                    effects: effects.clone(),
                    emits: emits.clone(),
                    first_reply_pos,
                    first_mutation_pos: first_mutation,
                    body_tokens,
                });
            }
        }
    }
    ProtocolModel { transitions }
}

impl ProtocolModel {
    /// Variants some handler arm matches on.
    pub fn handled_variants(&self) -> BTreeSet<String> {
        self.transitions
            .iter()
            .flat_map(|t| t.variants.iter().cloned())
            .collect()
    }

    /// Variants some transition emits.
    pub fn emitted_variants(&self) -> BTreeSet<String> {
        self.transitions
            .iter()
            .flat_map(|t| t.emits.iter().map(|e| e.variant.clone()))
            .collect()
    }

    /// `(in-variant, out-variant)` message edges of the model: receiving
    /// the first may cause the node to emit the second.
    pub fn message_edges(&self) -> BTreeSet<(String, String)> {
        let mut out = BTreeSet::new();
        for t in &self.transitions {
            for v in &t.variants {
                for e in &t.emits {
                    out.insert((v.clone(), e.variant.clone()));
                }
            }
        }
        out
    }

    /// Does any arm handling `variant` carry an epoch fence?
    pub fn fenced(&self, variant: &str) -> bool {
        self.transitions
            .iter()
            .filter(|t| t.variants.iter().any(|v| v == variant))
            .any(|t| t.guards.contains(&Guard::EpochFence))
    }

    /// Is `variant` handled by at least one arm?
    pub fn handles(&self, variant: &str) -> bool {
        self.transitions
            .iter()
            .any(|t| t.variants.iter().any(|v| v == variant))
    }

    /// Token position ordering for a variant's first reply vs mutation:
    /// `Some(true)` when a reply is emitted before any state mutation.
    pub fn acks_before_mutation(&self, variant: &str) -> Option<bool> {
        for t in &self.transitions {
            if !t.variants.iter().any(|v| v == variant) {
                continue;
            }
            if let (Some(r), Some(w)) = (t.first_reply_pos, t.first_mutation_pos) {
                return Some(r < w);
            }
        }
        None
    }

    /// Human-auditable JSON artifact.
    pub fn to_json(&self, m: &Model) -> String {
        let mut items = Vec::new();
        for t in &self.transitions {
            let origin = m
                .files
                .get(t.file)
                .map(|f| f.origin.as_str())
                .unwrap_or("?");
            let guards: Vec<String> = t.guards.iter().map(|g| quoted(g.as_str())).collect();
            let effects: Vec<String> = t.effects.iter().map(|e| quoted(e.as_str())).collect();
            let emits: Vec<String> = t
                .emits
                .iter()
                .map(|e| {
                    format!(
                        "{{\"kind\":{},\"msg\":{}}}",
                        quoted(e.kind.as_str()),
                        quoted(&format!("{}::{}", e.msg_enum, e.variant))
                    )
                })
                .collect();
            let variants: Vec<String> = t.variants.iter().map(|v| quoted(v)).collect();
            items.push(format!(
                "{{\"handler\":{},\"origin\":{},\"line\":{},\"msg_enum\":{},\
                 \"variants\":[{}],\"binds_epoch\":{},\"guards\":[{}],\
                 \"effects\":[{}],\"emits\":[{}]}}",
                quoted(&t.handler),
                quoted(origin),
                t.span.line,
                quoted(&t.msg_enum),
                variants.join(","),
                t.binds_epoch,
                guards.join(","),
                effects.join(","),
                emits.join(","),
            ));
        }
        format!("{{\"transitions\":[\n{}\n]}}", items.join(",\n"))
    }

    /// DOT graph: message variants (ellipses) flow into handler arms
    /// (boxes) and out to emitted variants. Fenced arms render solid;
    /// unfenced epoch-bearing arms render red.
    pub fn to_dot(&self, m: &Model) -> String {
        let mut out =
            String::from("digraph wiera_protocol {\n  rankdir=LR;\n  node [fontsize=10];\n");
        let mut msg_nodes: BTreeSet<String> = BTreeSet::new();
        for (i, t) in self.transitions.iter().enumerate() {
            let origin = m
                .files
                .get(t.file)
                .map(|f| f.origin.as_str())
                .unwrap_or("?");
            let fenced = t.guards.contains(&Guard::EpochFence);
            let color = if t.binds_epoch && !fenced {
                "red"
            } else {
                "black"
            };
            let label = format!(
                "{}\\n[{}]\\n{}:{}",
                t.variants.join("|"),
                t.effects
                    .iter()
                    .map(|e| e.as_str())
                    .collect::<Vec<_>>()
                    .join(","),
                origin,
                t.span.line
            );
            out.push_str(&format!(
                "  arm{i} [shape=box,color={color},label=\"{label}\"];\n"
            ));
            for v in &t.variants {
                msg_nodes.insert(format!("{}::{}", t.msg_enum, v));
                out.push_str(&format!("  \"{}::{}\" -> arm{i};\n", t.msg_enum, v));
            }
            for e in &t.emits {
                msg_nodes.insert(format!("{}::{}", e.msg_enum, e.variant));
                out.push_str(&format!(
                    "  arm{i} -> \"{}::{}\" [style={},label=\"{}\"];\n",
                    e.msg_enum,
                    e.variant,
                    if e.kind == EmitKind::Reply {
                        "dashed"
                    } else {
                        "solid"
                    },
                    e.kind.as_str()
                ));
            }
        }
        for n in msg_nodes {
            out.push_str(&format!("  \"{n}\" [shape=ellipse];\n"));
        }
        out.push_str("}\n");
        out
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// WS110–WS114: local properties of the extracted model
// ---------------------------------------------------------------------------

/// DataMsg variants that arrive with a reply slot and must answer it.
const REPLY_EXPECTED: [&str; 16] = [
    "Put",
    "Get",
    "GetVersion",
    "GetVersionList",
    "Remove",
    "RemoveVersion",
    "MultiPut",
    "MultiGet",
    "ForwardPut",
    "Ping",
    "SyncRequest",
    "DigestRequest",
    "FetchObjects",
    "Replicate",
    "ReplicateBatch",
    "SetPeers",
];

/// Variants whose arms write client-visible data (ordering-checked).
const WRITE_VARIANTS: [&str; 5] = [
    "Put",
    "MultiPut",
    "ForwardPut",
    "Replicate",
    "ReplicateBatch",
];

/// Run the WS110–WS114 local-property checks over the extracted model.
pub fn protocol_checks(m: &Model, pm: &ProtocolModel) -> Vec<Finding> {
    let mut out = Vec::new();
    let cls_emits = m.bool_closure(|f| match (m.fns[f].body, m.files.get(m.fns[f].file)) {
        (Some(b), Some(file)) => collect_emits(file, b)
            .iter()
            .any(|e| e.kind == EmitKind::Reply),
        _ => false,
    });

    for t in &pm.transitions {
        let line = t.span.line;
        let label = format!("{}::{}", t.msg_enum, t.variants.join("|"));

        // WS110: epoch-bearing arm mutates state without an epoch guard.
        let mutates = t.effects.contains(&Effect::StoreWrite)
            || t.effects.contains(&Effect::EpochBump)
            || t.effects.contains(&Effect::PrimaryChange);
        if t.binds_epoch
            && mutates
            && !t.guards.contains(&Guard::EpochFence)
            && !allowed(m, t.file, "WS110", line)
        {
            out.push(Finding {
                file: Some(t.file),
                diag: Diagnostic::deny(
                    Code::Ws110,
                    format!(
                        "handler arm for {label} carries an epoch but mutates \
                         state without an epoch guard"
                    ),
                )
                .at(t.span)
                .with_note(
                    "a stale-epoch sender (deposed primary, delayed control \
                     message) can corrupt post-failover state; dominate the \
                     mutation with an epoch compare"
                        .to_string(),
                ),
            });
        }

        // WS111: request arm with no reply on any extracted path.
        let expects_reply = t.msg_enum == "DataMsg"
            && t.variants
                .iter()
                .any(|v| REPLY_EXPECTED.contains(&v.as_str()));
        if expects_reply {
            let direct = t.emits.iter().any(|e| e.kind == EmitKind::Reply);
            if !direct
                && !arm_calls_reach(m, t, |x| cls_emits[x])
                && !allowed(m, t.file, "WS111", line)
            {
                out.push(Finding {
                    file: Some(t.file),
                    diag: Diagnostic::deny(
                        Code::Ws111,
                        format!("handler arm for {label} emits no reply on any extracted path"),
                    )
                    .at(t.span)
                    .with_note(
                        "a request without a reply leaves the sender's RPC slot \
                         hanging until timeout"
                            .to_string(),
                    ),
                });
            }
        }

        // WS112: reply ordered before the arm's own mutation.
        let is_write = t.msg_enum == "DataMsg"
            && t.variants
                .iter()
                .any(|v| WRITE_VARIANTS.contains(&v.as_str()));
        if is_write {
            if let (Some(r), Some(w)) = (t.first_reply_pos, t.first_mutation_pos) {
                if r < w && !allowed(m, t.file, "WS112", line) {
                    out.push(Finding {
                        file: Some(t.file),
                        diag: Diagnostic::warn(
                            Code::Ws112,
                            format!(
                                "handler arm for {label} emits its reply before the \
                                 state mutation commits"
                            ),
                        )
                        .at(t.span)
                        .with_note(
                            "an acknowledged-but-uncommitted write is lost if the \
                             node crashes between the ack and the mutation"
                                .to_string(),
                        ),
                    });
                }
            }
        }

        // WS114: non-trivial arm with an empty extraction.
        if t.body_tokens > 3
            && t.guards.is_empty()
            && t.effects.is_empty()
            && t.emits.is_empty()
            && !arm_resolves_any_call(m, t)
            && !allowed(m, t.file, "WS114", line)
        {
            out.push(Finding {
                file: Some(t.file),
                diag: Diagnostic::note(
                    Code::Ws114,
                    format!("handler arm for {label} extracted to an empty transition"),
                )
                .at(t.span)
                .with_note(
                    "the model checker treats this arm as a no-op; if it does \
                     anything real, extraction is blind to it"
                        .to_string(),
                ),
            });
        }
    }

    ws113_epoch_monotonic(m, &mut out);
    out
}

/// Does any call inside the transition's arm resolve to user code?
fn arm_resolves_any_call(m: &Model, t: &Transition) -> bool {
    arm_calls_reach(m, t, |_| true)
}

/// Does any call lexically inside the transition's arm resolve to a
/// function satisfying `pred`? Locates the arm by matching the handler
/// fn and the arm's span line.
fn arm_calls_reach(m: &Model, t: &Transition, pred: impl Fn(usize) -> bool) -> bool {
    for (fid, d) in m.fns.iter().enumerate() {
        if d.file != t.file || d.name != t.handler {
            continue;
        }
        for arm in &m.summaries[fid].arms {
            if arm.span.line != t.span.line {
                continue;
            }
            let hit = m.summaries[fid]
                .calls
                .iter()
                .enumerate()
                .filter(|(_, c)| c.pos >= arm.body.0 && c.pos <= arm.body.1)
                .any(|(ci, _)| m.resolved[fid][ci].iter().any(|&x| pred(x)));
            if hit {
                return true;
            }
        }
    }
    false
}

/// WS113: `x.epoch = <foreign>` with no monotonic guard in the function.
fn ws113_epoch_monotonic(m: &Model, out: &mut Vec<Finding>) {
    for (fid, d) in m.fns.iter().enumerate() {
        if d.is_test {
            continue;
        }
        let Some((b0, b1)) = d.body else { continue };
        let Some(f) = m.files.get(d.file) else {
            continue;
        };
        let hi = b1.min(f.tokens.len().saturating_sub(1));
        let mut i = b0;
        while i <= hi {
            if !matches!(ident_at(f, i), Some("epoch")) || !is_p(f, i.wrapping_sub(1), ".") {
                i += 1;
                continue;
            }
            let plain_assign = is_p(f, i + 1, "=") && !is_p(f, i + 2, "=");
            if !plain_assign {
                i += 1;
                continue;
            }
            // Monotonic forms: `x.epoch = x.epoch.max(e)` — a `max` within
            // the RHS window.
            let monotonic = (i + 2..(i + 10).min(hi))
                .any(|j| matches!(ident_at(f, j), Some("max") | Some("saturating_add")));
            let fenced = m.summaries[fid].fence_direct;
            if !monotonic && !fenced && !allowed(m, d.file, "WS113", f.span(i).line) {
                out.push(Finding {
                    file: Some(d.file),
                    diag: Diagnostic::deny(
                        Code::Ws113,
                        format!(
                            "{} overwrites the epoch from a foreign value with no \
                             monotonic guard",
                            d.name
                        ),
                    )
                    .at(f.span(i))
                    .with_note(
                        "epochs must only move forward; compare before assigning \
                         or use a max() merge"
                            .to_string(),
                    ),
                });
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// WS105: extraction blind spots reachable from data-path entries
// ---------------------------------------------------------------------------

/// Count unresolved and widened call sites reachable from data-path
/// handlers; returns `(unresolved, widened, examples)` and pushes a
/// WS105 note when any exist.
pub fn ws105_blind_spots(m: &Model, out: &mut Vec<Finding>) -> (usize, usize) {
    // Reachable set: BFS from handler entries over resolved edges.
    let mut reach: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<usize> = Vec::new();
    for (f, d) in m.fns.iter().enumerate() {
        if !d.is_test && is_handler(&d.name) && d.body.is_some() {
            reach.insert(f);
            queue.push(f);
        }
    }
    let mut depth = 0usize;
    while !queue.is_empty() && depth < m.cfg.max_rounds {
        let mut next = Vec::new();
        for f in queue.drain(..) {
            for targets in &m.resolved[f] {
                for &t in targets {
                    if reach.insert(t) {
                        next.push(t);
                    }
                }
            }
        }
        queue = next;
        depth += 1;
    }

    let mut unresolved = 0usize;
    let mut widened = 0usize;
    let mut examples: Vec<String> = Vec::new();
    for &f in &reach {
        let origin = m
            .files
            .get(m.fns[f].file)
            .map(|x| x.origin.as_str())
            .unwrap_or("?");
        for (ci, c) in m.summaries[f].calls.iter().enumerate() {
            if m.widened[f][ci] {
                widened += 1;
                if examples.len() < 3 {
                    examples.push(format!("{} (widened, {}:{})", c.name, origin, c.span.line));
                }
            } else if m.resolved[f][ci].is_empty() && !is_widen_blocked(&c.name) {
                unresolved += 1;
                if examples.len() < 3 {
                    examples.push(format!(
                        "{} (unresolved, {}:{})",
                        c.name, origin, c.span.line
                    ));
                }
            }
        }
    }

    if unresolved + widened > 0 {
        let mut d = Diagnostic::note(
            Code::Ws105,
            format!(
                "protocol extraction blind spots: {unresolved} unresolved and \
                 {widened} widened call sites reachable from data-path entries"
            ),
        );
        for e in examples {
            d = d.with_note(e);
        }
        d = d.with_note(
            "effects behind these calls are invisible to the extracted model; \
             see DESIGN.md §13 soundness caveats"
                .to_string(),
        );
        out.push(Finding {
            file: None,
            diag: d,
        });
    }
    (unresolved, widened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Config, Model};
    use crate::items::SourceFile;

    fn build(sources: &[(&str, &str)]) -> (Model, ProtocolModel) {
        let files = sources
            .iter()
            .map(|(origin, src)| {
                SourceFile::new(origin.to_string(), "testcrate".to_string(), src.to_string())
            })
            .collect();
        let m = Model::build(files, Config::default());
        let pm = extract(&m);
        (m, pm)
    }

    const FENCED_HANDLER: &str = "\
        enum DataMsg { Replicate { key: String, epoch: u64 }, Ping, Pong, ReplicateAck { applied: bool } }\n\
        impl Node {\n\
          fn handle_inline(&self, d: DataMsg) { match d {\n\
            DataMsg::Replicate { key, epoch } => {\n\
              if epoch < self.epoch() { reply(stale_epoch_fail(epoch, self.epoch())); return; }\n\
              self.inst.apply_replicated(&key);\n\
              self.record_history();\n\
              reply2(DataMsg::ReplicateAck { applied: true });\n\
            }\n\
            DataMsg::Ping => { reply2(DataMsg::Pong); }\n\
            _ => {}\n\
          } }\n\
          fn epoch(&self) -> u64 { 0 }\n\
          fn record_history(&self) {}\n\
        }\n";

    #[test]
    fn fenced_replicate_extracts_guard_effect_emit() {
        let (_, pm) = build(&[("n.rs", FENCED_HANDLER)]);
        let t = pm
            .transitions
            .iter()
            .find(|t| t.variants == vec!["Replicate".to_string()])
            .expect("replicate transition");
        assert!(t.binds_epoch);
        assert!(t.guards.contains(&Guard::EpochFence));
        assert!(t.effects.contains(&Effect::StoreWrite));
        assert!(t.effects.contains(&Effect::HistoryRecord));
        assert!(t
            .emits
            .iter()
            .any(|e| e.variant == "ReplicateAck" && e.kind == EmitKind::Reply));
        assert!(pm.fenced("Replicate"));
    }

    #[test]
    fn unfenced_mutation_raises_ws110() {
        let src = "\
            enum DataMsg { Replicate { key: String, epoch: u64 }, ReplicateAck { applied: bool } }\n\
            impl Node { fn handle_inline(&self, d: DataMsg) { match d {\n\
              DataMsg::Replicate { key, epoch } => {\n\
                self.inst.apply_replicated(&key);\n\
                reply2(DataMsg::ReplicateAck { applied: true });\n\
              }\n\
              _ => {}\n\
            } } }\n";
        let (m, pm) = build(&[("n.rs", src)]);
        let f = protocol_checks(&m, &pm);
        assert!(
            f.iter().any(|x| x.diag.compact().starts_with("WS110 deny")),
            "{:?}",
            f.iter().map(|x| x.diag.compact()).collect::<Vec<_>>()
        );
        assert!(!pm.fenced("Replicate"));
    }

    #[test]
    fn missing_reply_raises_ws111() {
        let src = "\
            enum DataMsg { Get { key: String } }\n\
            impl Node { fn handle_app_op(&self, d: DataMsg) { match d {\n\
              DataMsg::Get { key } => { let v = self.lookup(key); }\n\
            } } fn lookup(&self, k: String) -> u64 { 0 } }\n";
        let (m, pm) = build(&[("n.rs", src)]);
        let f = protocol_checks(&m, &pm);
        assert!(
            f.iter().any(|x| x.diag.compact().starts_with("WS111 deny")),
            "{:?}",
            f.iter().map(|x| x.diag.compact()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ack_before_commit_raises_ws112() {
        let src = "\
            enum DataMsg { Put { key: String }, PutAck { version: u64 } }\n\
            impl Node { fn handle_app_op(&self, d: DataMsg) { match d {\n\
              DataMsg::Put { key } => {\n\
                reply2(DataMsg::PutAck { version: 1 });\n\
                self.inst.put(&key);\n\
              }\n\
            } } }\n";
        let (m, pm) = build(&[("n.rs", src)]);
        let f = protocol_checks(&m, &pm);
        assert!(
            f.iter().any(|x| x.diag.compact().starts_with("WS112 warn")),
            "{:?}",
            f.iter().map(|x| x.diag.compact()).collect::<Vec<_>>()
        );
        assert_eq!(pm.acks_before_mutation("Put"), Some(true));
    }

    #[test]
    fn foreign_epoch_write_raises_ws113_and_guarded_is_clean() {
        let bad =
            "impl N { fn adopt(&self, e: u64) { let mut s = self.state.write(); s.epoch = e; } }";
        let (m, pm) = build(&[("n.rs", bad)]);
        let f = protocol_checks(&m, &pm);
        assert!(
            f.iter().any(|x| x.diag.compact().starts_with("WS113 deny")),
            "{:?}",
            f.iter().map(|x| x.diag.compact()).collect::<Vec<_>>()
        );
        let good = "impl N { fn adopt(&self, e: u64) { let mut s = self.state.write(); \
                    if e >= s.epoch { s.epoch = e; } } }";
        let (m2, pm2) = build(&[("n.rs", good)]);
        let f2 = protocol_checks(&m2, &pm2);
        assert!(!f2.iter().any(|x| x.diag.compact().contains("WS113")));
        let max_form = "impl N { fn adopt(&self, e: u64) { s.epoch = s.epoch.max(e); } }";
        let (m3, pm3) = build(&[("n.rs", max_form)]);
        let f3 = protocol_checks(&m3, &pm3);
        assert!(!f3.iter().any(|x| x.diag.compact().contains("WS113")));
    }

    #[test]
    fn json_and_dot_render() {
        let (m, pm) = build(&[("n.rs", FENCED_HANDLER)]);
        let j = pm.to_json(&m);
        assert!(j.contains("\"variants\":[\"Replicate\"]"), "{j}");
        assert!(j.contains("epoch-fence"), "{j}");
        let d = pm.to_dot(&m);
        assert!(d.starts_with("digraph"), "{d}");
        assert!(d.contains("DataMsg::ReplicateAck"), "{d}");
    }

    #[test]
    fn message_edges_cover_reply_flow() {
        let (_, pm) = build(&[("n.rs", FENCED_HANDLER)]);
        let edges = pm.message_edges();
        assert!(edges.contains(&("Replicate".to_string(), "ReplicateAck".to_string())));
        assert!(edges.contains(&("Ping".to_string(), "Pong".to_string())));
    }
}
