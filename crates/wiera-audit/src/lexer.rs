//! A lightweight Rust lexer for the source auditor.
//!
//! Same house style as wiera-policy's policy lexer: a hand-rolled scanner
//! over a char vector producing span-carrying tokens. It understands just
//! enough of Rust's lexical grammar to be reliable for the auditor's
//! pattern matching — strings (including raw and byte strings), char
//! literals vs. lifetimes, nested block comments, raw identifiers — and it
//! is deliberately *infallible*: unknown bytes are skipped, unterminated
//! literals end at EOF, and arbitrary byte soup must never panic (a
//! proptest harness holds that line).
//!
//! Comments are not tokens, but `// ws-audit: allow(WS1xx): reason`
//! directives inside them are collected so checks can honor reviewed
//! suppressions (see [`Allow`]).

use wiera_policy::diag::Span;

/// A lexical token of Rust source.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers arrive without the `r#`).
    Ident(String),
    /// A lifetime such as `'a` (name not kept; the auditor never needs it).
    Lifetime,
    /// Numeric literal (value not kept).
    Num,
    /// String literal; the field is the raw inner text with simple escapes
    /// (`\\`, `\"`, `\n`, `\t`) decoded. Good enough for metric names and
    /// lock-class literals, which never use exotic escapes.
    Str(String),
    /// Character or byte literal.
    Char,
    /// Punctuation. Multi-character tokens are emitted for the handful the
    /// auditor's structural matching depends on: `::`, `=>`, `->`, `<=`,
    /// `>=`, `==`, `!=`, `..`. Everything else is a single character.
    P(&'static str),
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the given punctuation.
    pub fn is(&self, p: &str) -> bool {
        matches!(self, Tok::P(x) if *x == p)
    }

    /// True when this token is the given identifier/keyword.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == name)
    }
}

/// Token plus its source span.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// A reviewed suppression parsed from a comment.
///
/// * `// ws-audit: allow(WS102): reason` — suppresses findings of the
///   listed codes anchored on this line or the next source line.
/// * `// ws-audit: allow-file(WS100): reason` — suppresses findings of the
///   listed codes anywhere in this file.
#[derive(Debug, Clone, PartialEq)]
pub struct Allow {
    /// 1-based line of the comment.
    pub line: usize,
    /// Upper-cased codes, e.g. `["WS100", "WS103"]`.
    pub codes: Vec<String>,
    /// True for `allow-file` (whole-file scope).
    pub file_scope: bool,
}

impl Allow {
    /// Does this directive cover `code` at `line`?
    pub fn covers(&self, code: &str, line: usize) -> bool {
        self.codes.iter().any(|c| c == code)
            && (self.file_scope || line == self.line || line == self.line + 1)
    }
}

/// Lexer output: the token stream plus any allow directives found in
/// comments along the way.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

/// Compound punctuation the auditor's matching relies on, longest first.
const COMPOUND: [&str; 8] = ["::", "=>", "->", "<=", ">=", "==", "!=", ".."];

/// Single characters accepted as punctuation tokens.
const SINGLES: &str = "{}()[]<>,;:.#&|!?*+-/%^=@$_~";

fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let rest = comment.split("ws-audit:").nth(1)?.trim_start();
    let file_scope = rest.starts_with("allow-file");
    let rest = rest
        .strip_prefix("allow-file")
        .or_else(|| rest.strip_prefix("allow"))?;
    let open = rest.find('(')?;
    let close = rest[open..].find(')')? + open;
    let codes: Vec<String> = rest[open + 1..close]
        .split(',')
        .map(|c| c.trim().to_ascii_uppercase())
        .filter(|c| !c.is_empty())
        .collect();
    if codes.is_empty() {
        return None;
    }
    Some(Allow {
        line,
        codes,
        file_scope,
    })
}

/// Tokenize Rust source. Never fails and never panics: anything the scanner
/// does not recognize is skipped, and every literal form tolerates EOF.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut line_start = 0usize;

    macro_rules! span {
        ($start:expr, $end:expr) => {
            Span::new($start, $end, line, ($start + 1).saturating_sub(line_start))
        };
    }

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                i += 1;
                line += 1;
                line_start = i;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if let Some(a) = parse_allow(&text, line) {
                    out.allows.push(a);
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Nested block comment; newlines inside still advance lines.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        line_start = i + 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (tok, next, lines) = cooked_string(&chars, i);
                out.tokens.push(Token {
                    tok,
                    span: span!(i, next),
                });
                for _ in 0..lines {
                    line += 1;
                }
                if lines > 0 {
                    line_start = next; // column precision inside multiline strings is not needed
                }
                i = next;
            }
            '\'' => {
                // Lifetime vs char literal. `'ident` not followed by a
                // closing quote is a lifetime; otherwise a char literal.
                let start = i;
                let mut j = i + 1;
                if j < n && (chars[j].is_alphabetic() || chars[j] == '_') {
                    let mut k = j;
                    while k < n && (chars[k].is_alphanumeric() || chars[k] == '_') {
                        k += 1;
                    }
                    if k < n && chars[k] == '\'' {
                        // 'a' — a char literal.
                        out.tokens.push(Token {
                            tok: Tok::Char,
                            span: span!(start, k + 1),
                        });
                        i = k + 1;
                    } else {
                        out.tokens.push(Token {
                            tok: Tok::Lifetime,
                            span: span!(start, k),
                        });
                        i = k;
                    }
                } else {
                    // Escaped or symbolic char literal: scan to the closing
                    // quote on the same line, honoring `\'`.
                    while j < n && chars[j] != '\n' {
                        if chars[j] == '\\' {
                            j += 2;
                            continue;
                        }
                        if chars[j] == '\'' {
                            j += 1;
                            break;
                        }
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        span: span!(start, j.min(n)),
                    });
                    i = j.min(n);
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n {
                    let ch = chars[i];
                    if ch.is_alphanumeric() || ch == '_' || ch == '.' {
                        // `1..` is a range, not a float; stop before `..`.
                        if ch == '.' && i + 1 < n && chars[i + 1] == '.' {
                            break;
                        }
                        i += 1;
                    } else if (ch == '+' || ch == '-')
                        && i > start
                        && matches!(chars[i - 1], 'e' | 'E')
                    {
                        i += 1; // exponent sign: 1.5e-3
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    span: span!(start, i),
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Raw identifier r#type → Ident("type"). Must be checked
                // before the raw-string branch, which also starts `r#`.
                if text == "r" && i + 1 < n && chars[i] == '#' && is_ident_start(chars[i + 1]) {
                    let mut k = i + 1;
                    while k < n && (chars[k].is_alphanumeric() || chars[k] == '_') {
                        k += 1;
                    }
                    let name: String = chars[i + 1..k].iter().collect();
                    out.tokens.push(Token {
                        tok: Tok::Ident(name),
                        span: span!(start, k),
                    });
                    i = k;
                    continue;
                }
                // String-literal prefixes: r"", r#""#, b"", br#""#, c"".
                if matches!(text.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr") && i < n {
                    let is_raw = text.contains('r');
                    if chars[i] == '"' || (chars[i] == '#' && is_raw) {
                        let (tok, next, lines) = if is_raw {
                            raw_string(&chars, i)
                        } else {
                            cooked_string(&chars, i)
                        };
                        out.tokens.push(Token {
                            tok,
                            span: span!(start, next),
                        });
                        for _ in 0..lines {
                            line += 1;
                        }
                        if lines > 0 {
                            line_start = next;
                        }
                        i = next;
                        continue;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(text),
                    span: span!(start, i),
                });
            }
            _ => {
                let mut matched = false;
                for comp in COMPOUND {
                    let len = comp.len(); // all-ASCII compounds
                    if i + len <= n && chars[i..i + len].iter().collect::<String>() == comp {
                        out.tokens.push(Token {
                            tok: Tok::P(comp),
                            span: span!(i, i + len),
                        });
                        i += len;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    if let Some(pos) = SINGLES.find(c) {
                        // Map back into the static str table for a 'static life.
                        let p = &SINGLES[pos..pos + c.len_utf8()];
                        out.tokens.push(Token {
                            tok: Tok::P(p),
                            span: span!(i, i + 1),
                        });
                    }
                    i += 1; // unknown characters are skipped, never fatal
                }
            }
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Scan a `"..."` literal starting at the opening quote (or at a `b`/`c`
/// prefix position whose quote is at `chars[at]`). Returns the token, the
/// index just past the literal, and how many newlines it spanned.
fn cooked_string(chars: &[char], at: usize) -> (Tok, usize, usize) {
    let n = chars.len();
    let mut i = at;
    while i < n && chars[i] != '"' {
        i += 1; // skip prefix letters like b / c
    }
    let mut j = i + 1;
    let mut text = String::new();
    let mut lines = 0usize;
    while j < n {
        match chars[j] {
            '\\' if j + 1 < n => {
                match chars[j + 1] {
                    'n' => text.push('\n'),
                    't' => text.push('\t'),
                    '\\' => text.push('\\'),
                    '"' => text.push('"'),
                    other => {
                        text.push('\\');
                        text.push(other);
                    }
                }
                if chars[j + 1] == '\n' {
                    lines += 1;
                }
                j += 2;
            }
            '"' => return (Tok::Str(text), j + 1, lines),
            c => {
                if c == '\n' {
                    lines += 1;
                }
                text.push(c);
                j += 1;
            }
        }
    }
    (Tok::Str(text), n, lines) // unterminated: swallow to EOF
}

/// Scan a raw string starting at the `#`s or quote following an `r`-ish
/// prefix. Returns (token, index past literal, newline count).
fn raw_string(chars: &[char], at: usize) -> (Tok, usize, usize) {
    let n = chars.len();
    let mut i = at;
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || chars[i] != '"' {
        // `r#ident` handled elsewhere; treat stray `#` as consumed.
        return (Tok::Str(String::new()), i, 0);
    }
    i += 1;
    let start = i;
    let mut lines = 0usize;
    while i < n {
        if chars[i] == '\n' {
            lines += 1;
        }
        if chars[i] == '"' {
            let mut k = i + 1;
            let mut seen = 0usize;
            while k < n && chars[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                let text: String = chars[start..i].iter().collect();
                return (Tok::Str(text), k, lines);
            }
        }
        i += 1;
    }
    let text: String = chars[start..n.min(chars.len())].iter().collect();
    (Tok::Str(text), n, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).tokens.into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_keywords_and_paths() {
        assert_eq!(
            toks("fn handle(&self) -> DataMsg::Ok"),
            vec![
                Tok::Ident("fn".into()),
                Tok::Ident("handle".into()),
                Tok::P("("),
                Tok::P("&"),
                Tok::Ident("self".into()),
                Tok::P(")"),
                Tok::P("->"),
                Tok::Ident("DataMsg".into()),
                Tok::P("::"),
                Tok::Ident("Ok".into()),
            ]
        );
    }

    #[test]
    fn strings_chars_and_lifetimes() {
        assert_eq!(
            toks(r#"let s = "a\"b"; let c = 'x'; fn f<'a>() {}"#),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("s".into()),
                Tok::P("="),
                Tok::Str("a\"b".into()),
                Tok::P(";"),
                Tok::Ident("let".into()),
                Tok::Ident("c".into()),
                Tok::P("="),
                Tok::Char,
                Tok::P(";"),
                Tok::Ident("fn".into()),
                Tok::Ident("f".into()),
                Tok::P("<"),
                Tok::Lifetime,
                Tok::P(">"),
                Tok::P("("),
                Tok::P(")"),
                Tok::P("{"),
                Tok::P("}"),
            ]
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        assert_eq!(
            toks(r##"let x = r#"raw "inner" text"#;"##),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::P("="),
                Tok::Str("raw \"inner\" text".into()),
                Tok::P(";"),
            ]
        );
        assert_eq!(toks("r#type"), vec![Tok::Ident("type".into())]);
    }

    #[test]
    fn comments_are_skipped_and_nested() {
        assert_eq!(
            toks("a // line\nb /* block /* nested */ still */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn allow_directives_parse() {
        let out = lex("x();\n// ws-audit: allow(WS102, ws103): fine here\ny();\n// ws-audit: allow-file(WS100): planted\n");
        assert_eq!(out.allows.len(), 2);
        assert_eq!(out.allows[0].codes, vec!["WS102", "WS103"]);
        assert!(!out.allows[0].file_scope);
        assert!(out.allows[0].covers("WS102", 3), "covers the next line");
        assert!(!out.allows[0].covers("WS102", 4));
        assert!(out.allows[1].file_scope);
        assert!(out.allows[1].covers("WS100", 1), "file scope covers all");
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        assert_eq!(
            toks("0xff_u64 1.5e-3 1..4"),
            vec![Tok::Num, Tok::Num, Tok::Num, Tok::P(".."), Tok::Num,]
        );
    }

    #[test]
    fn compound_punct() {
        assert_eq!(
            toks("a => b :: c -> d <= e"),
            vec![
                Tok::Ident("a".into()),
                Tok::P("=>"),
                Tok::Ident("b".into()),
                Tok::P("::"),
                Tok::Ident("c".into()),
                Tok::P("->"),
                Tok::Ident("d".into()),
                Tok::P("<="),
                Tok::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn spans_carry_lines() {
        let out = lex("a\n  b\n");
        assert_eq!(out.tokens[0].span.line, 1);
        assert_eq!(out.tokens[1].span.line, 2);
        assert_eq!(out.tokens[1].span.col, 3);
    }

    #[test]
    fn garbage_never_panics() {
        for s in [
            "\"unterminated",
            "'",
            "r#\"open",
            "/* open",
            "\u{0}\u{7f}é🦀",
            "b\"",
            "''''",
        ] {
            let _ = lex(s);
        }
    }
}
