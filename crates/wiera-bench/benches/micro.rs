//! Criterion microbenchmarks for the hot paths of the reproduction:
//! policy parsing/compilation (run per instance launch), tier backend
//! operations (run per object access), the network model (run per
//! message), and the measurement plumbing itself (run per sample).
//!
//! These complement the figure harnesses: the figures check *shapes*, these
//! guard the substrate's constant factors (the paper quotes <2% Tiera
//! overhead; our policy evaluation must stay far below tier latencies).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tiera::{InstanceConfig, TieraInstance};
use wiera_net::{Fabric, Region};
use wiera_policy::{compile, parse};
use wiera_sim::{Histogram, ManualClock, SimDuration, SimRng};
use wiera_tiers::{SimTier, TierKind, TierSpec};
use wiera_workload::KeyChooser;

fn bench_policy(c: &mut Criterion) {
    let src = wiera_policy::canned::MULTI_PRIMARIES_CONSISTENCY;
    c.bench_function("policy/parse_multi_primaries", |b| {
        b.iter(|| parse(black_box(src)).unwrap())
    });
    let spec = parse(src).unwrap();
    c.bench_function("policy/compile_multi_primaries", |b| {
        b.iter(|| compile(black_box(&spec)).unwrap())
    });
    c.bench_function("policy/parse_all_canned", |b| {
        b.iter(|| {
            for (_, _, s) in wiera_policy::canned::ALL {
                black_box(parse(s).unwrap());
            }
        })
    });
}

fn bench_tier(c: &mut Criterion) {
    let clock = ManualClock::new();
    let tier = SimTier::new(TierSpec::of(TierKind::EbsSsd), 1 << 30, clock, 7);
    let payload = Bytes::from(vec![0u8; 4096]);
    let mut i = 0u64;
    c.bench_function("tier/put_4k", |b| {
        b.iter(|| {
            i += 1;
            tier.put(&format!("k{}", i % 10_000), payload.clone())
                .unwrap()
        })
    });
    tier.put("hot", payload.clone()).unwrap();
    c.bench_function("tier/get_4k", |b| {
        b.iter(|| tier.get(black_box("hot")).unwrap())
    });
}

fn bench_instance(c: &mut Criterion) {
    let compiled = compile(&parse(wiera_policy::canned::LOW_LATENCY_INSTANCE).unwrap()).unwrap();
    let cfg = InstanceConfig::new("bench", Region::UsEast)
        .with_tier("tier1", "Memcached", 1 << 30)
        .with_tier("tier2", "EBS", 1 << 30)
        .with_rules(compiled.rules);
    let inst = TieraInstance::build(cfg, ManualClock::new()).unwrap();
    let payload = Bytes::from(vec![0u8; 4096]);
    let mut i = 0u64;
    c.bench_function("instance/put_writeback_4k", |b| {
        b.iter(|| {
            i += 1;
            inst.put(&format!("k{}", i % 10_000), payload.clone())
                .unwrap()
        })
    });
    inst.put("hot", payload.clone()).unwrap();
    c.bench_function("instance/get_4k", |b| {
        b.iter(|| inst.get(black_box("hot")).unwrap())
    });
}

fn bench_net(c: &mut Criterion) {
    let fabric = Fabric::multicloud(9);
    c.bench_function("net/one_way_4k", |b| {
        b.iter(|| fabric.one_way(Region::UsEast, Region::EuWest, black_box(4096)))
    });
}

fn bench_metrics(c: &mut Criterion) {
    c.bench_function("metrics/histogram_record", |b| {
        b.iter_batched(
            Histogram::new,
            |mut h| {
                for i in 0..1000u64 {
                    h.record(SimDuration::from_micros(i * 37 + 1));
                }
                h
            },
            BatchSize::SmallInput,
        )
    });
    let mut full = Histogram::new();
    for i in 0..100_000u64 {
        full.record(SimDuration::from_micros(i % 50_000 + 1));
    }
    c.bench_function("metrics/histogram_p99", |b| {
        b.iter(|| full.quantile(black_box(0.99)))
    });
}

fn bench_workload(c: &mut Criterion) {
    let chooser = KeyChooser::zipfian(100_000);
    let mut rng = SimRng::new(3);
    c.bench_function("workload/zipfian_next", |b| {
        b.iter(|| chooser.next(&mut rng))
    });
}

fn bench_transform(c: &mut Criterion) {
    let data = vec![42u8; 4096];
    c.bench_function("transform/rle_compress_4k", |b| {
        b.iter(|| tiera::transform::compress(black_box(&data)))
    });
    c.bench_function("transform/xor_encrypt_4k", |b| {
        b.iter(|| tiera::transform::encrypt(black_box(&data), 0xDEAD))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_policy, bench_tier, bench_instance, bench_net, bench_metrics, bench_workload, bench_transform
}
criterion_main!(benches);
