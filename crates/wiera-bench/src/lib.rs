#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Benchmark harness utilities shared by the per-figure experiment
//! binaries (`src/bin/fig*.rs`, `table*.rs`, `sec*.rs`).
//!
//! Every experiment prints a human-readable table mirroring the paper's
//! figure/table and writes a machine-readable JSON record under
//! `results/`, which EXPERIMENTS.md summarizes.

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Where experiment outputs land (workspace-relative).
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("results");
    p
}

/// Write `record` as pretty JSON to `results/<name>.json`.
pub fn emit<T: Serialize>(name: &str, record: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create results dir: {e}"));
    let path = dir.join(format!("{name}.json"));
    let json =
        serde_json::to_string_pretty(record).unwrap_or_else(|e| panic!("serializable record: {e}"));
    let mut f = std::fs::File::create(&path).unwrap_or_else(|e| panic!("create result file: {e}"));
    f.write_all(json.as_bytes())
        .unwrap_or_else(|e| panic!("write result file: {e}"));
    println!("\n[results written to {}]", path.display());
}

/// Render a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Snapshot the global [`MetricsRegistry`] to `results/metrics_<name>.json`.
///
/// Experiment binaries call [`reset_observability`] before the run and this
/// at exit, so the snapshot covers exactly one experiment. CI's bench-smoke
/// job asserts invariants over these files.
pub fn emit_metrics(name: &str) {
    let snap = wiera_sim::MetricsRegistry::global().snapshot();
    emit(&format!("metrics_{name}"), &snap);
}

/// Clear the global registry and tracer so a fresh run's exported metrics
/// are not polluted by earlier work in the same process.
pub fn reset_observability() {
    wiera_sim::MetricsRegistry::global().reset();
    wiera_sim::Tracer::global().clear();
}

/// True when running under `run_all --smoke` (CI's quick gate): experiments
/// should shrink workloads to seconds of wall time while still exercising
/// every code path they normally measure.
pub fn is_smoke() -> bool {
    std::env::var("WIERA_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Time-compression factor used by the heavier experiments. High enough to
/// run minutes of modeled time in wall seconds, low enough that monitor
/// check loops (sub-second modeled periods) are not starved on small hosts.
pub fn default_scale() -> f64 {
    std::env::var("WIERA_TIME_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(600.0)
}

/// Root RNG seed for experiments (override with WIERA_SEED).
pub fn default_seed() -> u64 {
    std::env::var("WIERA_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_json() {
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        emit("selftest", &R { x: 7 });
        let body = std::fs::read_to_string(results_dir().join("selftest.json")).unwrap();
        assert!(body.contains("\"x\": 7"));
        std::fs::remove_file(results_dir().join("selftest.json")).ok();
    }

    #[test]
    fn defaults_parse_env() {
        assert!(default_scale() > 0.0);
        let _ = default_seed();
    }
}
