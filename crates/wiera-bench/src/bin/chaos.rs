//! Chaos campaign (§4.4): the failure-lifecycle gate as an experiment.
//!
//! Runs the seeded chaos campaign from `wiera-check` — randomized fault
//! scripts (primary/backup crashes, partitions, coordination-session
//! expiry, degraded tiers) against every consistency protocol — over a
//! fixed set of seeds, and records per-protocol outcomes. The shape being
//! reproduced is the paper's failure-handling claim: detection, failover,
//! rejoin and anti-entropy mask every fault the protocol promises to mask,
//! so every campaign must converge with zero gating findings.
//!
//! `results/chaos.json` gets the per-seed reports (scripts are replay
//! documentation: `wiera-check --chaos <seed>` reruns any of them);
//! `results/metrics_chaos.json` gets the fault/failover/repair counters CI
//! asserts on.

use serde::Serialize;
use wiera_check::run_campaign;

/// Fixed campaign seeds. The first is the one the unit test pins; the rest
/// widen fault-script coverage (crash-primary appears under 1 and 7,
/// tier-brownout under 20160601, latency-jitter under 11).
const SEEDS: [u64; 4] = [20_160_601, 1, 7, 11];

#[derive(Serialize)]
struct ProtocolRow {
    protocol: String,
    seed: u64,
    script: Vec<String>,
    ops_attempted: usize,
    ops_failed: usize,
    converged: bool,
    findings: Vec<String>,
    passed: bool,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    seeds: Vec<u64>,
    rows: Vec<ProtocolRow>,
}

fn main() {
    wiera_bench::reset_observability();
    let seeds: Vec<u64> = if wiera_bench::is_smoke() {
        SEEDS[..1].to_vec()
    } else {
        SEEDS.to_vec()
    };

    let mut rows = Vec::new();
    for &seed in &seeds {
        for r in run_campaign(seed) {
            rows.push(ProtocolRow {
                protocol: r.protocol.to_string(),
                seed: r.seed,
                script: r.script.clone(),
                ops_attempted: r.ops_attempted,
                ops_failed: r.ops_failed,
                converged: r.converged,
                findings: r.diags.iter().map(|d| d.compact()).collect(),
                passed: r.passed(true),
            });
        }
    }

    wiera_bench::print_table(
        "Chaos campaign: faults masked per protocol",
        &[
            "Seed",
            "Protocol",
            "Faults",
            "Ops (failed)",
            "Converged",
            "Pass",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.seed.to_string(),
                    r.protocol.clone(),
                    r.script.len().to_string(),
                    format!("{} ({})", r.ops_attempted, r.ops_failed),
                    r.converged.to_string(),
                    if r.passed { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let failed: Vec<String> = rows
        .iter()
        .filter(|r| !r.passed)
        .map(|r| format!("{} seed {}", r.protocol, r.seed))
        .collect();
    assert!(
        failed.is_empty(),
        "chaos campaigns failed (replay with wiera-check --chaos <seed>): {failed:?}"
    );

    println!("\nshape-check: every scheduled fault was masked — detection, failover, rejoin and anti-entropy all held  [OK]");
    wiera_bench::emit(
        "chaos",
        &Record {
            experiment: "chaos",
            seeds,
            rows,
        },
    );
    wiera_bench::emit_metrics("chaos");
}
