//! Fig. 10: operation latency against a centralized S3-IA tier in US-East,
//! from each region.
//!
//! §5.3's single-cold-replica variant: every region's instance reads cold
//! data from one shared S3-IA tier in US-East. The paper reports the worst
//! get around 200 ms (from Asia-East); puts stay local in each region, so
//! the put latency to the central store "can be ignored" — we report it
//! anyway to show what it would cost.

use bytes::Bytes;
use serde::Serialize;
use std::sync::Arc;
use wiera::msg::DataMsg;
use wiera::replica::{app_rpc, ReplicaConfig, ReplicaNode};
use wiera_net::{Fabric, Mesh, NodeId, Region};
use wiera_policy::ConsistencyModel;
use wiera_sim::{ScaledClock, SimDuration, Summary};

#[derive(Serialize)]
struct RegionResult {
    region: String,
    get: Summary,
    put: Summary,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    object_bytes: usize,
    samples: usize,
    central_tier: &'static str,
    central_region: String,
    regions: Vec<RegionResult>,
}

const OBJ: usize = 4096;
const SAMPLES: usize = 120;
const SMOKE_SAMPLES: usize = 24;

fn main() {
    wiera_bench::reset_observability();
    let samples = if wiera_bench::is_smoke() {
        SMOKE_SAMPLES
    } else {
        SAMPLES
    };
    let fabric = Arc::new(Fabric::multicloud(wiera_bench::default_seed()));
    let mesh = Mesh::new(fabric, ScaledClock::shared(4000.0));

    // The centralized cold-data instance: one S3-IA tier in US-East.
    let central = ReplicaNode::spawn(
        mesh.clone(),
        ReplicaConfig {
            node: NodeId::new(Region::UsEast, "central-s3ia"),
            instance: tiera::InstanceConfig::new("central", Region::UsEast)
                .with_tier("tier1", "S3-IA", 0)
                .with_sleep(true, false),
            consistency: ConsistencyModel::Eventual,
            flush_interval: SimDuration::from_secs(1),
            coord: None,
            forward_gets_to: None,
            shard_group: None,
            service_time: None,
            overload: None,
        },
    )
    .expect("replica spawns");
    central.set_peers_direct(vec![], None, 1);

    // Preload the cold objects.
    let loader = NodeId::new(Region::UsEast, "loader");
    for i in 0..samples {
        app_rpc(
            &mesh,
            &loader,
            &central.node,
            DataMsg::Put {
                key: format!("cold-{i}"),
                value: Bytes::from(vec![7u8; OBJ]),
            },
        )
        .unwrap();
    }

    let mut regions = Vec::new();
    for region in [
        Region::UsEast,
        Region::UsWest,
        Region::EuWest,
        Region::AsiaEast,
    ] {
        let client = NodeId::new(region, format!("app-{region}"));
        let mut get = wiera_sim::Histogram::new();
        let mut put = wiera_sim::Histogram::new();
        for i in 0..samples {
            let g = app_rpc(
                &mesh,
                &client,
                &central.node,
                DataMsg::Get {
                    key: format!("cold-{i}"),
                },
            )
            .unwrap();
            get.record(g.latency);
            let p = app_rpc(
                &mesh,
                &client,
                &central.node,
                DataMsg::Put {
                    key: format!("w-{region}-{i}"),
                    value: Bytes::from(vec![1u8; OBJ]),
                },
            )
            .unwrap();
            put.record(p.latency);
        }
        regions.push(RegionResult {
            region: region.to_string(),
            get: get.summary(),
            put: put.summary(),
        });
    }
    central.stop();
    mesh.shutdown();

    let rows: Vec<Vec<String>> = regions
        .iter()
        .map(|r| {
            vec![
                r.region.clone(),
                format!("{:.1}", r.get.mean_ms),
                format!("{:.1}", r.get.p95_ms),
                format!("{:.1}", r.put.mean_ms),
            ]
        })
        .collect();
    wiera_bench::print_table(
        "Fig. 10: latency to centralized US-East S3-IA (ms, 4KB)",
        &["From region", "Get mean", "Get p95", "Put mean"],
        &rows,
    );

    // Shape checks: local is cheapest, Asia-East worst with get ≈ 200 ms.
    let mean = |name: &str| {
        regions
            .iter()
            .find(|r| r.region == name)
            .unwrap()
            .get
            .mean_ms
    };
    assert!(mean("US-East") < mean("US-West"));
    assert!(mean("US-West") < mean("Asia-East"));
    let asia = mean("Asia-East");
    assert!(
        (150.0..260.0).contains(&asia),
        "Asia-East get should land near the paper's ~200ms, got {asia}"
    );
    println!("\nshape-check: US-East < US-West/EU-West < Asia-East (~200ms)  [OK]");

    wiera_bench::emit(
        "fig10_centralized_latency",
        &Record {
            experiment: "fig10",
            object_bytes: OBJ,
            samples,
            central_tier: "S3-IA",
            central_region: Region::UsEast.to_string(),
            regions,
        },
    );
    wiera_bench::emit_metrics("fig10_centralized_latency");
}
