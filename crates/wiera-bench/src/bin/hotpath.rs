//! Hot-path real-time throughput: how fast the engine itself goes.
//!
//! Unlike the paper-figure experiments (modeled time), this bench measures
//! **wall-clock** engine throughput — the number the sharded shared-nothing
//! refactor exists to move. Two paced legs:
//!
//! * **single-node** — N worker threads drive a 50/50 put/get mix in
//!   batches of 64 straight into one `TieraInstance` (no modeled sleeps),
//!   reporting ops/sec and, via the `bytes` shim's copy counter, how many
//!   bytes were physically copied per op (zero-copy check).
//! * **replicated** — a two-region synchronous primary-backup cluster
//!   driven through `WieraClient::put_batch` at high time compression,
//!   reporting end-to-end wall-clock ops/sec across the replication path.
//!
//! Output lands in `results/hotpath.json`. The repo-root
//! `BENCH_hotpath.json` holds the committed throughput trajectory:
//!
//! * `--record <label>` appends this run as a new trajectory entry;
//! * `--gate` compares this run against the last committed entry and exits
//!   non-zero on a >25% single-node throughput regression (CI's
//!   `hotpath-bench` job). Set `WIERA_BLESS_BENCH=1` to re-baseline
//!   intentionally: the run is appended as a `blessed` entry instead of
//!   failing the gate.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use tiera::{BatchOp, InstanceConfig, TieraInstance};
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera_net::Region;
use wiera_sim::ScaledClock;

/// Allowed single-node throughput drop vs the committed baseline before the
/// gate fails (generous, to absorb runner noise; re-bless for bigger moves).
const GATE_MAX_REGRESSION: f64 = 0.25;

const BATCH: usize = 64;
const VALUE_BYTES: usize = 256;
const REPL_SCALE: f64 = 2000.0;

#[derive(Serialize, Deserialize, Clone)]
struct BenchConfig {
    threads: usize,
    ops_per_thread: usize,
    keys_per_thread: usize,
    batch: usize,
    value_bytes: usize,
    replicated_ops: usize,
}

#[derive(Serialize, Deserialize, Clone)]
struct Entry {
    label: String,
    recorded_unix: u64,
    single_node_ops_per_sec: f64,
    copied_bytes_per_op: f64,
    replicated_ops_per_sec: f64,
    config: BenchConfig,
}

#[derive(Serialize, Deserialize, Default)]
struct Trajectory {
    bench: String,
    entries: Vec<Entry>,
}

fn bench_config() -> BenchConfig {
    if wiera_bench::is_smoke() {
        BenchConfig {
            threads: 4,
            ops_per_thread: 2_000,
            keys_per_thread: 500,
            batch: BATCH,
            value_bytes: VALUE_BYTES,
            replicated_ops: 256,
        }
    } else {
        BenchConfig {
            threads: 8,
            ops_per_thread: 20_000,
            keys_per_thread: 2_000,
            batch: BATCH,
            value_bytes: VALUE_BYTES,
            replicated_ops: 2_048,
        }
    }
}

/// Single-node leg: hammer one instance from `threads` workers, each over
/// its own key range (realistic shard spread), batches of `batch`, 50/50
/// put/get. Returns (ops/sec wall-clock, bytes copied per op).
fn run_single_node(cfg: &BenchConfig) -> (f64, f64) {
    let clock = ScaledClock::shared(1_000_000.0);
    let inst = TieraInstance::build(
        InstanceConfig::new("hotpath", Region::UsEast)
            .with_tier("tier1", "LocalMemory", 8 << 30)
            .with_max_versions(1),
        clock,
    )
    .unwrap_or_else(|e| panic!("instance build: {e}"));

    // Warm every key once so gets hit (and the slot map is at steady-state
    // size — the regime where per-op accounting cost shows).
    for t in 0..cfg.threads {
        let puts: Vec<BatchOp> = (0..cfg.keys_per_thread)
            .map(|k| BatchOp::Put {
                key: format!("w{t}-{k:06}"),
                value: bytes::Bytes::from(vec![0u8; cfg.value_bytes]),
            })
            .collect();
        for chunk in puts.chunks(cfg.batch) {
            let (results, _) = inst.apply_batch(chunk);
            for r in results {
                r.unwrap_or_else(|e| panic!("warmup put: {e}"));
            }
        }
    }

    bytes::reset_copied_bytes();
    let total_ops = (cfg.threads * cfg.ops_per_thread) as f64;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..cfg.threads)
        .map(|t| {
            let inst = Arc::clone(&inst);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut next = 0usize;
                let mut done = 0usize;
                while done < cfg.ops_per_thread {
                    let n = cfg.batch.min(cfg.ops_per_thread - done);
                    let ops: Vec<BatchOp> = (0..n)
                        .map(|i| {
                            let k = (next + i) % cfg.keys_per_thread;
                            let key = format!("w{t}-{k:06}");
                            if (next + i).is_multiple_of(2) {
                                BatchOp::Put {
                                    key,
                                    value: bytes::Bytes::from(vec![0xabu8; cfg.value_bytes]),
                                }
                            } else {
                                BatchOp::Get { key }
                            }
                        })
                        .collect();
                    let (results, _) = inst.apply_batch(&ops);
                    for r in results {
                        r.unwrap_or_else(|e| panic!("bench op: {e}"));
                    }
                    next += n;
                    done += n;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap_or_else(|_| panic!("worker panicked"));
    }
    let secs = t0.elapsed().as_secs_f64();
    let copied = bytes::copied_bytes() as f64;
    (total_ops / secs, copied / total_ops)
}

/// Replicated leg: two-region PB-sync deployment, batched puts end to end.
fn run_replicated(cfg: &BenchConfig, seed: u64) -> f64 {
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], REPL_SCALE, seed);
    cluster
        .register_policy_over(
            "hotpath",
            &[("US-East", true), ("US-West", false)],
            bodies::PRIMARY_BACKUP_SYNC,
        )
        .unwrap_or_else(|e| panic!("policy: {e}"));
    let dep = cluster
        .controller
        .start_instances("hotpath", "hotpath", DeploymentConfig::default())
        .unwrap_or_else(|e| panic!("deploy: {e}"));
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "hotpath-app")
        .replicas(dep.replicas())
        .build();

    let t0 = Instant::now();
    let mut done = 0usize;
    let mut round = 0usize;
    while done < cfg.replicated_ops {
        let n = cfg.batch.min(cfg.replicated_ops - done);
        let items: Vec<(String, bytes::Bytes)> = (0..n)
            .map(|i| {
                (
                    format!("r{:06}", (done + i) % 512),
                    bytes::Bytes::from(vec![round as u8; cfg.value_bytes]),
                )
            })
            .collect();
        for r in client
            .put_batch(&items)
            .unwrap_or_else(|e| panic!("put_batch: {e}"))
        {
            r.unwrap_or_else(|e| panic!("replicated put: {e}"));
        }
        done += n;
        round += 1;
    }
    let secs = t0.elapsed().as_secs_f64();
    cluster.shutdown();
    cfg.replicated_ops as f64 / secs
}

fn trajectory_path() -> PathBuf {
    let mut p = wiera_bench::results_dir();
    p.pop(); // workspace root
    p.push("BENCH_hotpath.json");
    p
}

fn load_trajectory() -> Trajectory {
    let path = trajectory_path();
    match std::fs::read_to_string(&path) {
        Ok(body) => serde_json::from_str(&body)
            .unwrap_or_else(|e| panic!("unparseable {}: {e}", path.display())),
        Err(_) => Trajectory {
            bench: "hotpath".to_string(),
            entries: Vec::new(),
        },
    }
}

fn save_trajectory(t: &Trajectory) {
    let path = trajectory_path();
    let body =
        serde_json::to_string_pretty(t).unwrap_or_else(|e| panic!("serialize trajectory: {e}"));
    std::fs::write(&path, body + "\n").unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[trajectory updated: {}]", path.display());
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gate = args.iter().any(|a| a == "--gate");
    let record_label = args
        .iter()
        .position(|a| a == "--record")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let bless = std::env::var("WIERA_BLESS_BENCH")
        .map(|v| v == "1")
        .unwrap_or(false);

    let cfg = bench_config();
    let seed = wiera_bench::default_seed();
    wiera_bench::reset_observability();

    println!(
        "hotpath: single-node {} threads × {} ops (batch {}, {} B values, {} keys/thread)",
        cfg.threads, cfg.ops_per_thread, cfg.batch, cfg.value_bytes, cfg.keys_per_thread
    );
    let (single_ops, copied_per_op) = run_single_node(&cfg);
    println!(
        "  single-node: {:.0} ops/sec wall-clock, {:.0} bytes copied/op",
        single_ops, copied_per_op
    );

    println!(
        "hotpath: replicated {} ops, PB-sync US-East→US-West (scale {})",
        cfg.replicated_ops, REPL_SCALE
    );
    let repl_ops = run_replicated(&cfg, seed);
    println!("  replicated: {:.0} ops/sec wall-clock", repl_ops);

    let entry = Entry {
        label: record_label.clone().unwrap_or_else(|| "run".to_string()),
        recorded_unix: now_unix(),
        single_node_ops_per_sec: single_ops,
        copied_bytes_per_op: copied_per_op,
        replicated_ops_per_sec: repl_ops,
        config: cfg.clone(),
    };

    #[derive(Serialize)]
    struct Record {
        experiment: String,
        entry: Entry,
    }
    wiera_bench::emit(
        "hotpath",
        &Record {
            experiment: "hotpath".to_string(),
            entry: entry.clone(),
        },
    );
    wiera_bench::emit_metrics("hotpath");

    if let Some(label) = record_label {
        let mut traj = load_trajectory();
        traj.entries.push(Entry { label, ..entry });
        save_trajectory(&traj);
        return;
    }

    if gate {
        let mut traj = load_trajectory();
        let Some(last) = traj.entries.last().cloned() else {
            eprintln!("gate: no committed baseline in BENCH_hotpath.json");
            std::process::exit(1);
        };
        // Only gate against an entry measured at the same paced config.
        let comparable = last.config.threads == cfg.threads
            && last.config.ops_per_thread == cfg.ops_per_thread
            && last.config.batch == cfg.batch
            && last.config.value_bytes == cfg.value_bytes;
        let floor = last.single_node_ops_per_sec * (1.0 - GATE_MAX_REGRESSION);
        println!(
            "gate: current {:.0} ops/sec vs committed '{}' {:.0} (floor {:.0}{})",
            single_ops,
            last.label,
            last.single_node_ops_per_sec,
            floor,
            if comparable { "" } else { ", config mismatch" }
        );
        if bless {
            traj.entries.push(Entry {
                label: "blessed".to_string(),
                ..entry
            });
            save_trajectory(&traj);
            println!("gate: WIERA_BLESS_BENCH=1 — re-baselined, not gating");
            return;
        }
        if !comparable {
            eprintln!(
                "gate: committed entry was measured at a different paced config; \
                 re-bless with WIERA_BLESS_BENCH=1"
            );
            std::process::exit(1);
        }
        if single_ops < floor {
            eprintln!(
                "gate: FAIL — single-node throughput regressed >{:.0}% \
                 ({:.0} < {:.0} ops/sec); re-bless with WIERA_BLESS_BENCH=1 if intentional",
                GATE_MAX_REGRESSION * 100.0,
                single_ops,
                floor
            );
            std::process::exit(1);
        }
        println!("gate: PASS");
    }
}
