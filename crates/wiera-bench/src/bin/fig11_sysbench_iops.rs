//! Fig. 11: SysBench random-I/O performance — Azure local disk (no Wiera)
//! vs *remote* AWS memory through Wiera, across Azure VM sizes.
//!
//! The paper's finding: the local disk is flat at ≈500 IOPS ("Azure
//! throttles the disk performance to 500 IOPS") regardless of VM size,
//! while remote memory through Wiera depends on the VM's *network*
//! throttle — worse than the disk on small VMs (Basic A2, Standard D1),
//! ≈44 % better on Standard D2/D3. The crossover is the figure's point.
//!
//! Substitution: VM sizes become per-size NIC egress caps on the Azure
//! site (DESIGN.md §5); the 2 ms AWS↔Azure US-East RTT and the 500-IOPS
//! disk cap come straight from the paper.

use serde::Serialize;
use std::sync::Arc;
use wiera::msg::DataMsg;
use wiera::replica::{ReplicaConfig, ReplicaNode};
use wiera_apps::fs::{FsConfig, WieraFs};
use wiera_apps::sysbench::{Sysbench, SysbenchConfig};
use wiera_apps::TierStore;
use wiera_net::{Fabric, Mesh, NodeId, Region};
use wiera_policy::ConsistencyModel;
use wiera_sim::{ScaledClock, SimDuration};
use wiera_tiers::{SimTier, TierKind, TierSpec};

/// VM sizes and their modeled NIC caps (Mbit/s). The paper observes that
/// Basic A2 (2 CPUs) underperforms Standard D1 (1 CPU) — network throttle,
/// not CPU — and that D2 and D3 look alike.
/// Time compression for the paced runs: low enough that a 2 ms modeled op
/// still maps to a schedulable wall sleep.
const PACE_SCALE: f64 = 4.0;

const VM_SIZES: [(&str, f64); 4] = [
    ("Basic A2", 42.0),
    ("Standard D1", 58.0),
    ("Standard D2", 96.0),
    ("Standard D3", 100.0),
];

#[derive(Serialize)]
struct SizeResult {
    vm: String,
    nic_cap_mbps: f64,
    local_disk_iops: f64,
    remote_memory_iops: f64,
    improvement: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    threads: usize,
    block_bytes: usize,
    duration_secs: f64,
    sizes: Vec<SizeResult>,
}

fn bench_cfg(seed: u64) -> SysbenchConfig {
    // Smoke mode measures a shorter window: enough to exercise the whole
    // paced path, not enough for publication-grade IOPS numbers.
    let secs = if wiera_bench::is_smoke() { 3 } else { 12 };
    SysbenchConfig {
        file_bytes: 8 << 20,
        block_size: 16 * 1024,
        threads: 8,
        write_frac: 1.0 / 3.0,
        duration: SimDuration::from_secs(secs),
        seed,
    }
}

/// Local baseline: sysbench against the VM's own 500-IOPS disk, O_DIRECT.
fn run_local(seed: u64) -> f64 {
    let clock = ScaledClock::shared(PACE_SCALE);
    let tier = SimTier::new(
        TierSpec::of(TierKind::AzureDisk),
        1 << 30,
        clock.clone(),
        seed,
    );
    let store = TierStore::paced(tier, clock.clone());
    let fs = WieraFs::new(store, FsConfig::direct(16 * 1024));
    let cfg = bench_cfg(seed);
    Sysbench::prepare(&fs, &cfg).unwrap();
    Sysbench::run_paced(&fs, &cfg, &clock).unwrap().iops
}

/// Remote memory through Wiera: primary on Azure (disk only), secondary on
/// AWS (memory); all gets forwarded to the AWS memory tier (§5.4.1).
fn run_remote(nic_cap_mbps: f64, seed: u64) -> f64 {
    let fabric = Arc::new(Fabric::multicloud(seed));
    fabric.set_egress_cap_mbps(Region::AzureUsEast, Some(nic_cap_mbps));
    let mesh = Mesh::new(fabric, ScaledClock::shared(PACE_SCALE));

    let azure = ReplicaNode::spawn(
        mesh.clone(),
        ReplicaConfig {
            node: NodeId::new(Region::AzureUsEast, "azure-primary"),
            instance: tiera::InstanceConfig::new("azure", Region::AzureUsEast)
                .with_tier("tier1", "AzureDisk", 1 << 30)
                .with_sleep(true, false),
            consistency: ConsistencyModel::PrimaryBackup { sync: true },
            flush_interval: SimDuration::from_millis(500),
            coord: None,
            forward_gets_to: None,
            shard_group: None,
            service_time: None,
            overload: None,
        },
    )
    .expect("replica spawns");
    let aws = ReplicaNode::spawn(
        mesh.clone(),
        ReplicaConfig {
            node: NodeId::new(Region::UsEast, "aws-memory"),
            instance: tiera::InstanceConfig::new("aws", Region::UsEast)
                .with_tier("tier1", "Memcached", 1 << 30)
                .with_sleep(true, false),
            consistency: ConsistencyModel::PrimaryBackup { sync: true },
            flush_interval: SimDuration::from_millis(500),
            coord: None,
            forward_gets_to: None,
            shard_group: None,
            service_time: None,
            overload: None,
        },
    )
    .expect("replica spawns");
    let peers = vec![azure.node.clone(), aws.node.clone()];
    azure.set_peers_direct(peers.clone(), Some(azure.node.clone()), 1);
    aws.set_peers_direct(peers, Some(azure.node.clone()), 1);
    azure.set_forward_gets_to(Some(aws.node.clone()));

    // SysBench runs on the Azure VM; its POSIX calls land on Wiera via the
    // FUSE shim (our WieraFs) — the application itself is unmodified.
    let client =
        wiera::client::WieraClient::builder(mesh.clone(), Region::AzureUsEast, "sysbench-vm")
            .replicas(vec![azure.node.clone()])
            .build();
    let fs = WieraFs::new(client, FsConfig::direct(16 * 1024));
    let cfg = bench_cfg(seed);
    Sysbench::prepare(&fs, &cfg).unwrap();
    let iops = Sysbench::run_paced(&fs, &cfg, &mesh.clock).unwrap().iops;

    // Quiet shutdown.
    let ctrl = NodeId::new(Region::UsEast, "ctl");
    let _ = mesh.rpc(
        &ctrl,
        &azure.node,
        DataMsg::Stop,
        64,
        SimDuration::from_secs(5),
    );
    let _ = mesh.rpc(
        &ctrl,
        &aws.node,
        DataMsg::Stop,
        64,
        SimDuration::from_secs(5),
    );
    mesh.shutdown();
    iops
}

fn main() {
    wiera_bench::reset_observability();
    let seed = wiera_bench::default_seed();
    let cfg = bench_cfg(seed);
    let mut sizes = Vec::new();
    for (vm, cap) in VM_SIZES {
        let local = run_local(seed);
        let remote = run_remote(cap, seed);
        sizes.push(SizeResult {
            vm: vm.to_string(),
            nic_cap_mbps: cap,
            local_disk_iops: local,
            remote_memory_iops: remote,
            improvement: remote / local - 1.0,
        });
    }

    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|s| {
            vec![
                s.vm.clone(),
                format!("{:.0}", s.local_disk_iops),
                format!("{:.0}", s.remote_memory_iops),
                format!("{:+.0}%", s.improvement * 100.0),
            ]
        })
        .collect();
    wiera_bench::print_table(
        "Fig. 11: SysBench IOPS — Azure local disk vs remote AWS memory via Wiera",
        &["VM size", "Local disk", "Remote memory", "Improvement"],
        &rows,
    );

    // Shape checks mirroring the paper. The short smoke window is too noisy
    // for fine-grained ordering, so smoke keeps only the coarse assertions.
    let smoke = wiera_bench::is_smoke();
    let by = |vm: &str| sizes.iter().find(|s| s.vm == vm).unwrap();
    for s in &sizes {
        assert!(
            (s.local_disk_iops - 500.0).abs() < 75.0,
            "local disk should be throttled to ~500 IOPS, got {} on {}",
            s.local_disk_iops,
            s.vm
        );
    }
    assert!(by("Basic A2").remote_memory_iops < by("Standard D2").remote_memory_iops);
    if !smoke {
        assert!(by("Basic A2").remote_memory_iops < by("Standard D1").remote_memory_iops);
        assert!(by("Standard D1").remote_memory_iops < by("Standard D2").remote_memory_iops);
        let d2 = by("Standard D2").remote_memory_iops;
        let d3 = by("Standard D3").remote_memory_iops;
        assert!(
            (d2 - d3).abs() / d2 < 0.15,
            "D2 and D3 should look alike: {d2} vs {d3}"
        );
        assert!(
            by("Standard D2").improvement > 0.2,
            "D2 remote should beat the local disk clearly: {:+.0}%",
            by("Standard D2").improvement * 100.0
        );
        assert!(
            by("Basic A2").improvement < 0.0,
            "A2's throttled network should lose to the local disk"
        );
    }
    println!("\nshape-check: local flat ~500; remote A2 < D1 < D2 ~= D3; D2/D3 beat disk  [OK]");

    wiera_bench::emit(
        "fig11_sysbench_iops",
        &Record {
            experiment: "fig11",
            threads: cfg.threads,
            block_bytes: cfg.block_size,
            duration_secs: cfg.duration.as_secs_f64(),
            sizes,
        },
    );
    wiera_bench::emit_metrics("fig11_sysbench_iops");
}
