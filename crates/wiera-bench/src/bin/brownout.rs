//! Brownout goodput: graceful degradation when a storage tier slows down
//! without failing.
//!
//! A two-region eventual deployment serves a read-mostly keyset. The
//! US-East replica's memory tier is then browned out — `set_degraded`
//! multiplies its native latency 1000x, so local gets take ~350 ms instead
//! of sub-millisecond — while EU-West stays healthy. Two clients in
//! US-East run the same read workload against it:
//!
//! * **plain** — no resilience features, the pre-overload client;
//! * **resilient** — per-op deadline budget, per-replica circuit breakers,
//!   and hedged reads (the p95 latency trigger races a second get to the
//!   next-closest replica).
//!
//! Goodput is the count of gets that succeed *within the SLO* (200 ms of
//! modeled time). Under the brownout the plain client's gets are all
//! served by the slow local replica and blow the SLO; the resilient
//! client's hedges win the race via EU-West (~80 ms RTT away) and keep the
//! tail bounded. The shape checks assert the ISSUE's acceptance bar: >=3x
//! goodput feature-on vs feature-off, with the resilient p99 bounded and
//! zero admission sheds in the clean phase (the overload machinery is
//! armed but a healthy cluster must never shed).

use bytes::Bytes;
use serde::Serialize;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera::OverloadSpec;
use wiera_net::Region;
use wiera_sim::{MetricsRegistry, SimRng};

/// Clock scale. Deliberately modest: this bench asserts on per-op wall
/// latencies, and at high scales real scheduling time (thread hops in the
/// RPC path) inflates into visible modeled milliseconds.
const SCALE: f64 = 50.0;
const KEYS: usize = 32;
const VALUE_BYTES: usize = 1024;
/// Latency multiplier applied to the US-East memory tier during the
/// brownout phase. 2000x turns a ~0.35 ms native get into ~700 ms.
const BROWNOUT_FACTOR: f64 = 2000.0;
/// An op that takes longer than this (modeled time) does not count as
/// goodput even if it eventually succeeds.
const SLO_MS: f64 = 250.0;
/// Per-op budget for the resilient client: generous enough that hedged
/// gets never trip it, but plumbed end-to-end through every request.
const DEADLINE_MS: f64 = 2000.0;

#[derive(Serialize)]
struct PhaseStats {
    client: &'static str,
    phase: &'static str,
    ops: usize,
    ok: usize,
    goodput: usize,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    slo_ms: f64,
    brownout_factor: f64,
    ops_per_phase: usize,
    goodput_ratio: f64,
    hedges_won: u64,
    phases: Vec<PhaseStats>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Run `ops` gets over the seeded keyset, measuring each op's wall time on
/// the modeled clock.
fn run_phase(
    client: &WieraClient,
    cluster: &Cluster,
    client_name: &'static str,
    phase: &'static str,
    ops: usize,
    seed: u64,
) -> PhaseStats {
    let mut rng = SimRng::new(seed);
    let mut ok = 0usize;
    let mut goodput = 0usize;
    let mut lat = Vec::with_capacity(ops);
    for _ in 0..ops {
        let key = format!("obj-{}", rng.gen_range_usize(0, KEYS));
        let t0 = cluster.clock.now();
        let out = client.get(&key);
        let wall = cluster.clock.now().elapsed_since(t0).as_millis_f64();
        lat.push(wall);
        if out.is_ok() {
            ok += 1;
            if wall <= SLO_MS {
                goodput += 1;
            }
        }
    }
    lat.sort_by(f64::total_cmp);
    PhaseStats {
        client: client_name,
        phase,
        ops,
        ok,
        goodput,
        p50_ms: percentile(&lat, 0.50),
        p95_ms: percentile(&lat, 0.95),
        p99_ms: percentile(&lat, 0.99),
    }
}

fn counter(snapshot: &wiera_sim::RegistrySnapshot, key: &str) -> u64 {
    snapshot.counters.get(key).copied().unwrap_or(0)
}

fn main() {
    wiera_bench::reset_observability();
    let seed = wiera_bench::default_seed();
    let smoke = wiera_bench::is_smoke();
    let ops = if smoke { 60 } else { 300 };

    let cluster = Cluster::launch(&[Region::UsEast, Region::EuWest], SCALE, seed);
    cluster
        .register_policy_over(
            "ev-brownout",
            &[("US-East", false), ("EU-West", false)],
            bodies::EVENTUAL,
        )
        .unwrap();
    // Overload machinery armed (CoDel target 5 ms) so the zero-shed clean
    // phase is a real claim, not a disabled check.
    let dep = cluster
        .controller
        .start_instances(
            "brownout",
            "ev-brownout",
            DeploymentConfig {
                service_time_ms: Some(0.5),
                overload: Some(OverloadSpec {
                    target_delay_ms: 5.0,
                    interval_ms: 100.0,
                }),
                ..DeploymentConfig::default()
            },
        )
        .unwrap();

    let plain = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app-plain")
        .replicas(dep.replicas())
        .build();
    let resilient = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app-resilient")
        .replicas(dep.replicas())
        .deadline_ms(DEADLINE_MS)
        .breakers(true)
        .hedged_reads(true)
        .build();

    // Seed the keyset and wait for eventual propagation to EU-West: a
    // hedge leg that races to a replica that has not applied the key yet
    // would get a NotFound, which is a semantic answer, not a slow one.
    let mut rng = SimRng::new(seed ^ 0x5eed);
    let mut buf = vec![0u8; VALUE_BYTES];
    for i in 0..KEYS {
        rng.fill(&mut buf);
        plain
            .put(&format!("obj-{i}"), Bytes::from(buf.clone()))
            .unwrap_or_else(|e| panic!("seed put obj-{i}: {e:?}"));
    }
    let replicas = cluster.deployment_replicas("brownout");
    assert_eq!(replicas.len(), 2, "expected a replica per region");
    let eu = replicas
        .iter()
        .find(|r| r.node.region == Region::EuWest)
        .expect("EU-West replica handle");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    for i in 0..KEYS {
        while eu.instance().get(&format!("obj-{i}")).is_err() {
            assert!(
                std::time::Instant::now() < deadline,
                "obj-{i} never propagated to EU-West"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    // ---- clean phase: both clients, healthy cluster ----------------------
    let mut phases = Vec::new();
    phases.push(run_phase(&plain, &cluster, "plain", "clean", ops, seed + 1));
    phases.push(run_phase(
        &resilient, &cluster, "resilient", "clean", ops, seed + 2,
    ));
    let clean_snapshot = MetricsRegistry::global().snapshot();
    let clean_sheds = clean_snapshot.counter_sum("wiera_shed_total");

    // ---- brownout phase: US-East memory tier 1000x slower ----------------
    let east = replicas
        .iter()
        .find(|r| r.node.region == Region::UsEast)
        .expect("US-East replica handle");
    let tier = east
        .instance()
        .tier("tier1")
        .and_then(|t| t.as_local().cloned())
        .expect("US-East tier1 is a local tier");
    tier.set_degraded(BROWNOUT_FACTOR);

    phases.push(run_phase(
        &plain, &cluster, "plain", "brownout", ops, seed + 3,
    ));
    phases.push(run_phase(
        &resilient, &cluster, "resilient", "brownout", ops, seed + 4,
    ));

    // ---- heal and sanity-check ------------------------------------------
    tier.set_degraded(1.0);
    let healed = run_phase(&plain, &cluster, "plain", "healed", ops / 4, seed + 5);
    phases.push(healed);

    let snapshot = MetricsRegistry::global().snapshot();
    let hedges_won = counter(&snapshot, "client_hedges{event=hedge-won}");
    let stat = |client: &str, phase: &str| {
        phases
            .iter()
            .find(|p| p.client == client && p.phase == phase)
            .unwrap()
    };
    let off = stat("plain", "brownout");
    let on = stat("resilient", "brownout");
    let goodput_ratio = on.goodput as f64 / (off.goodput.max(1)) as f64;

    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.client.to_string(),
                p.phase.to_string(),
                format!("{}/{}", p.ok, p.ops),
                format!("{}", p.goodput),
                format!("{:.1}", p.p50_ms),
                format!("{:.1}", p.p95_ms),
                format!("{:.1}", p.p99_ms),
            ]
        })
        .collect();
    wiera_bench::print_table(
        &format!("Brownout goodput (SLO {SLO_MS:.0} ms, tier1 {BROWNOUT_FACTOR:.0}x slower)"),
        &["Client", "Phase", "Ok", "Goodput", "p50 ms", "p95 ms", "p99 ms"],
        &rows,
    );

    // ---- shape checks ----------------------------------------------------
    // Smoke runs 60 ops per phase, where p99 is the single worst op — one
    // real OS scheduling stall inflates into hundreds of modeled ms at this
    // clock scale — so the smoke gate bounds the p95 tail instead; the full
    // run (300 ops) holds the p99 to the same bound.
    let (tail, tail_label): (fn(&PhaseStats) -> f64, &str) = if smoke {
        (|p| p.p95_ms, "p95")
    } else {
        (|p| p.p99_ms, "p99")
    };
    assert_eq!(clean_sheds, 0, "a healthy cluster must never shed");
    for p in phases.iter().filter(|p| p.phase != "brownout") {
        assert_eq!(p.ok, p.ops, "{} {}: ops failed", p.client, p.phase);
        assert!(
            tail(p) < SLO_MS,
            "{} {}: {tail_label} {:.1} ms should be well under the SLO",
            p.client,
            p.phase,
            tail(p)
        );
    }
    let need = if smoke { 2.0 } else { 3.0 };
    assert!(
        goodput_ratio >= need,
        "resilient goodput {} vs plain {} under brownout: ratio {goodput_ratio:.1} < {need}",
        on.goodput,
        off.goodput
    );
    assert!(
        tail(on) <= SLO_MS * 1.5,
        "resilient {tail_label} {:.1} ms not bounded under brownout",
        tail(on)
    );
    assert!(
        tail(off) > SLO_MS,
        "plain {tail_label} {:.1} ms suspiciously fast: brownout had no effect",
        tail(off)
    );
    assert!(hedges_won > 0, "hedged reads never won under the brownout");
    println!(
        "\nshape-check: goodput {}x (>= {need}x), resilient {tail_label} {:.1} ms bounded, \
         {hedges_won} hedges won, 0 clean-phase sheds  [OK]",
        goodput_ratio.round(),
        tail(on)
    );

    wiera_bench::emit(
        "brownout",
        &Record {
            experiment: "brownout",
            slo_ms: SLO_MS,
            brownout_factor: BROWNOUT_FACTOR,
            ops_per_phase: ops,
            goodput_ratio,
            hedges_won,
            phases,
        },
    );
    wiera_bench::emit_metrics("brownout");

    cluster.shutdown();
}
