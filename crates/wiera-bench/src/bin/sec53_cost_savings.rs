//! §5.3: reducing cost with multiple storage tiers.
//!
//! Two parts, exactly as the section argues:
//!
//! 1. **Full-scale arithmetic** — the paper's worked example: 10 TB per
//!    instance, 80 % cold after 120 h. Moving the cold 8 TB from EBS to
//!    S3-IA saves ≈$700/month (SSD) or ≈$300/month (HDD) per instance, and
//!    centralizing the cold replica (instead of keeping one per region in a
//!    4-region deployment) saves ≈$100/month for each region dropped.
//!
//! 2. **Live verification** — a scaled-down instance (objects in EBS, a
//!    120-hour ColdDataMonitoring rule into S3-IA) metered through a
//!    modeled month; the metered bills must match the arithmetic.

use bytes::Bytes;
use serde::Serialize;
use std::sync::Arc;
use tiera::{InstanceConfig, TieraInstance};
use wiera_net::Region;
use wiera_policy::{compile, parse};
use wiera_sim::{Clock, ManualClock, SimDuration};
use wiera_tiers::cost::{monthly_cost_gb, CostSpec};
use wiera_tiers::TierKind;

#[derive(Serialize)]
struct FullScale {
    dataset_gb: f64,
    cold_fraction: f64,
    ssd_only_monthly: f64,
    hdd_only_monthly: f64,
    ssd_plus_ia_monthly: f64,
    hdd_plus_ia_monthly: f64,
    saving_vs_ssd: f64,
    saving_vs_hdd: f64,
    regions: usize,
    centralization_saving: f64,
}

#[derive(Serialize)]
struct LiveRun {
    objects: usize,
    object_bytes: usize,
    cold_moved: usize,
    month_hours: f64,
    bill_without_policy: f64,
    bill_with_policy: f64,
    measured_saving_fraction: f64,
    predicted_saving_fraction: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    full_scale: FullScale,
    live: LiveRun,
}

fn full_scale() -> FullScale {
    let dataset_gb = 10_000.0; // 10 TB
    let cold = 0.8;
    let hot = dataset_gb * (1.0 - cold);
    let cold_gb = dataset_gb * cold;

    let ssd_only = monthly_cost_gb(TierKind::EbsSsd, dataset_gb);
    let hdd_only = monthly_cost_gb(TierKind::EbsHdd, dataset_gb);
    let ssd_ia = monthly_cost_gb(TierKind::EbsSsd, hot) + monthly_cost_gb(TierKind::S3Ia, cold_gb);
    let hdd_ia = monthly_cost_gb(TierKind::EbsHdd, hot) + monthly_cost_gb(TierKind::S3Ia, cold_gb);

    // Centralizing: a 4-region deployment keeps the cold 8 TB once instead
    // of 4 times; S3-IA is durable enough that replicas are not needed for
    // durability ("$100 per each region" dropped — 3 regions here).
    let regions = 4;
    let per_replica = monthly_cost_gb(TierKind::S3Ia, cold_gb);
    let centralization = per_replica * (regions as f64 - 1.0);

    FullScale {
        dataset_gb,
        cold_fraction: cold,
        ssd_only_monthly: ssd_only,
        hdd_only_monthly: hdd_only,
        ssd_plus_ia_monthly: ssd_ia,
        hdd_plus_ia_monthly: hdd_ia,
        saving_vs_ssd: ssd_only - ssd_ia,
        saving_vs_hdd: hdd_only - hdd_ia,
        regions,
        centralization_saving: centralization,
    }
}

/// Scaled-down live run: 50 objects of 1 MiB, 80 % going cold; the
/// ColdDataMonitoring rule (Fig. 6(a)) moves them to S3-IA; bills metered
/// over one modeled month with and without the policy.
fn live_run() -> LiveRun {
    const OBJECTS: usize = 50;
    const OBJ_BYTES: usize = 1 << 20;
    // Shared with examples/policies/ so wiera-lint checks it in CI.
    let policy = include_str!("../../../../examples/policies/reduced_cost_live.policy");
    let compiled = compile(&parse(policy).unwrap()).unwrap();

    let run = |with_policy: bool| -> f64 {
        let clock = ManualClock::new();
        let mut cfg = InstanceConfig::new("cost", Region::UsEast)
            .with_tier("tier1", "EBS-SSD", 1 << 30)
            .with_tier("tier2", "S3-IA", 1 << 30);
        if with_policy {
            cfg = cfg.with_rules(compiled.rules.clone());
        }
        let inst: Arc<TieraInstance> = TieraInstance::build(cfg, clock.clone()).unwrap();
        for i in 0..OBJECTS {
            inst.put(&format!("obj-{i}"), Bytes::from(vec![3u8; OBJ_BYTES]))
                .unwrap();
        }
        // 20% of the data stays hot: touch it periodically. The rest goes
        // cold and (with the policy) migrates after 120 h.
        let hot: Vec<String> = (0..OBJECTS / 5).map(|i| format!("obj-{i}")).collect();
        let month = SimDuration::from_hours(730);
        let step = SimDuration::from_hours(24);
        let mut elapsed = SimDuration::ZERO;
        while elapsed < month {
            clock.advance(step);
            elapsed += step;
            for k in &hot {
                inst.get(k).unwrap();
            }
            inst.run_cold_rules();
        }
        let now = clock.now();
        let mut bill = 0.0;
        for (label, kind) in [("tier1", TierKind::EbsSsd), ("tier2", TierKind::S3Ia)] {
            let tier = inst.tier(label).unwrap().as_local().unwrap();
            let report = tier.meter().report(&CostSpec::of(kind), now);
            bill += report.storage + report.requests;
        }
        bill
    };

    let without = run(false);
    let with = run(true);

    // Analytic expectation for this mini scenario: cold data sits on SSD
    // until the first daily cold-scan *after* the 120 h threshold (144 h),
    // then on S3-IA for the rest of the month; migration pays one S3-IA put
    // per object. (At the paper's 10 TB scale the request term vanishes;
    // at 50 MiB it is visible — which is why we model it rather than use
    // the steady-state fraction.)
    let gb = (OBJECTS * OBJ_BYTES) as f64 / 1e9;
    let (hot_gb, cold_gb) = (gb * 0.2, gb * 0.8);
    let t_migrate = 144.0;
    let month = 730.0;
    let ssd = 0.10;
    let ia = 0.0125;
    let expected_without = ssd * gb;
    let expected_with = ssd * (hot_gb + cold_gb * t_migrate / month)
        + ia * cold_gb * (month - t_migrate) / month
        + (OBJECTS as f64 * 0.8) * 0.10 / 10_000.0; // S3-IA puts
    let predicted = (expected_without - expected_with) / expected_without;

    LiveRun {
        objects: OBJECTS,
        object_bytes: OBJ_BYTES,
        cold_moved: OBJECTS - OBJECTS / 5,
        month_hours: 730.0,
        bill_without_policy: without,
        bill_with_policy: with,
        measured_saving_fraction: (without - with) / without,
        predicted_saving_fraction: predicted,
    }
}

fn main() {
    let fs = full_scale();
    wiera_bench::print_table(
        "§5.3 full-scale arithmetic (10TB/instance, 80% cold after 120h)",
        &["Configuration", "Monthly $"],
        &[
            vec!["EBS-SSD only".into(), format!("{:.0}", fs.ssd_only_monthly)],
            vec!["EBS-HDD only".into(), format!("{:.0}", fs.hdd_only_monthly)],
            vec![
                "SSD hot + S3-IA cold".into(),
                format!("{:.0}", fs.ssd_plus_ia_monthly),
            ],
            vec![
                "HDD hot + S3-IA cold".into(),
                format!("{:.0}", fs.hdd_plus_ia_monthly),
            ],
            vec![
                "saving vs SSD (paper: ~$700)".into(),
                format!("{:.0}", fs.saving_vs_ssd),
            ],
            vec![
                "saving vs HDD (paper: ~$300)".into(),
                format!("{:.0}", fs.saving_vs_hdd),
            ],
            vec![
                format!("centralize cold over {} regions (paper: ~$300)", fs.regions),
                format!("{:.0}", fs.centralization_saving),
            ],
        ],
    );
    assert!((fs.saving_vs_ssd - 700.0).abs() < 5.0);
    assert!((fs.saving_vs_hdd - 300.0).abs() < 5.0);
    assert!((fs.centralization_saving - 300.0).abs() < 5.0);

    let live = live_run();
    wiera_bench::print_table(
        "§5.3 live metered month (scaled-down, ColdDataMonitoring on EBS→S3-IA)",
        &["Metric", "Value"],
        &[
            vec!["objects".into(), live.objects.to_string()],
            vec!["cold objects migrated".into(), live.cold_moved.to_string()],
            vec![
                "bill without policy ($)".into(),
                format!("{:.4}", live.bill_without_policy),
            ],
            vec![
                "bill with policy ($)".into(),
                format!("{:.4}", live.bill_with_policy),
            ],
            vec![
                "measured saving".into(),
                format!("{:.1}%", live.measured_saving_fraction * 100.0),
            ],
            vec![
                "predicted saving".into(),
                format!("{:.1}%", live.predicted_saving_fraction * 100.0),
            ],
        ],
    );
    assert!(
        (live.measured_saving_fraction - live.predicted_saving_fraction).abs() < 0.08,
        "measured {} vs predicted {}",
        live.measured_saving_fraction,
        live.predicted_saving_fraction
    );
    println!("\nshape-check: $700/$300/$300 savings & metered month matches arithmetic  [OK]");

    wiera_bench::emit(
        "sec53_cost_savings",
        &Record {
            experiment: "sec53",
            full_scale: fs,
            live,
        },
    );
}
