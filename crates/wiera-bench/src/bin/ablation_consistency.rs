//! Ablation: what each piece of the strong-consistency put costs.
//!
//! The paper attributes MultiPrimaries' ≈400 ms puts to "getting (and
//! releasing) the global lock for a key, broadcasting updates to all other
//! instances synchronously, and internal operations". This ablation
//! decomposes that claim along three axes the paper fixes:
//!
//! 1. **Replica fan-out** — put latency under each protocol as the
//!    deployment grows from 2 to 4 regions. MultiPrimaries and synchronous
//!    primary-backup pay the *slowest* replica; eventual stays flat.
//! 2. **Lock placement** — MultiPrimaries put latency from US-West with the
//!    coordination service hosted in each region. Co-locating the
//!    coordinator with the writer removes one WAN round trip (the paper
//!    always co-locates it with Wiera in US-East).
//! 3. **Queue flush interval** — eventual consistency's staleness window
//!    (time until a remote replica can serve a write) as the flush interval
//!    grows; put latency stays constant while convergence degrades — the
//!    knob §3.3.1 leaves to the application.

use bytes::Bytes;
use serde::Serialize;
use std::sync::Arc;
use wiera::client::WieraClient;
use wiera::controller::ControllerConfig;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera_net::Region;

const SCALE: f64 = 2000.0;
const ALL_REGIONS: [(&str, Region); 4] = [
    ("US-West", Region::UsWest),
    ("US-East", Region::UsEast),
    ("EU-West", Region::EuWest),
    ("Asia-East", Region::AsiaEast),
];

#[derive(Serialize)]
struct FanoutRow {
    replicas: usize,
    multi_primaries_ms: f64,
    primary_backup_sync_ms: f64,
    eventual_ms: f64,
}

#[derive(Serialize)]
struct LockRow {
    coordinator_region: String,
    put_ms: f64,
}

#[derive(Serialize)]
struct FlushRow {
    flush_ms: f64,
    put_ms: f64,
    convergence_ms: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    fanout: Vec<FanoutRow>,
    lock_placement: Vec<LockRow>,
    flush: Vec<FlushRow>,
}

fn mean_put(cluster: &Cluster, dep: &Arc<wiera::deployment::WieraDeployment>, n: usize) -> f64 {
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "probe")
        .replicas(dep.replicas())
        .build();
    let mut total = 0.0;
    for i in 0..n {
        let view = client
            .put(&format!("k{i}"), Bytes::from(vec![0u8; 1024]))
            .unwrap();
        total += view.latency.as_millis_f64();
    }
    total / n as f64
}

fn fanout(seed: u64) -> Vec<FanoutRow> {
    let mut rows = Vec::new();
    for k in 2..=ALL_REGIONS.len() {
        let regions: Vec<Region> = ALL_REGIONS[..k].iter().map(|(_, r)| *r).collect();
        let decls: Vec<(&str, bool)> = ALL_REGIONS[..k].iter().map(|(n, _)| (*n, false)).collect();
        let mut decls_pb = decls.clone();
        decls_pb[0].1 = true; // US-West primary

        let cluster = Cluster::launch(&regions, SCALE, seed);
        cluster
            .register_policy_over("mp", &decls, bodies::MULTI_PRIMARIES)
            .unwrap();
        cluster
            .register_policy_over("pb", &decls_pb, bodies::PRIMARY_BACKUP_SYNC)
            .unwrap();
        cluster
            .register_policy_over("ev", &decls, bodies::EVENTUAL)
            .unwrap();
        let mp = cluster
            .controller
            .start_instances("mp", "mp", DeploymentConfig::default())
            .unwrap();
        let pb = cluster
            .controller
            .start_instances("pb", "pb", DeploymentConfig::default())
            .unwrap();
        let ev = cluster
            .controller
            .start_instances("ev", "ev", DeploymentConfig::default())
            .unwrap();
        rows.push(FanoutRow {
            replicas: k,
            multi_primaries_ms: mean_put(&cluster, &mp, 20),
            primary_backup_sync_ms: mean_put(&cluster, &pb, 20),
            eventual_ms: mean_put(&cluster, &ev, 20),
        });
        cluster.shutdown();
    }
    rows
}

fn lock_placement(seed: u64) -> Vec<LockRow> {
    let mut rows = Vec::new();
    for (name, coord_region) in ALL_REGIONS {
        let regions: Vec<Region> = ALL_REGIONS.iter().map(|(_, r)| *r).collect();
        let decls: Vec<(&str, bool)> = ALL_REGIONS.iter().map(|(n, _)| (*n, false)).collect();
        // Host controller + coordination service in `coord_region`.
        let cluster = Cluster::launch_with(
            &regions,
            SCALE,
            seed,
            ControllerConfig {
                region: coord_region,
                ..Default::default()
            },
        );
        cluster
            .register_policy_over("mp", &decls, bodies::MULTI_PRIMARIES)
            .unwrap();
        let mp = cluster
            .controller
            .start_instances("mp", "mp", DeploymentConfig::default())
            .unwrap();
        rows.push(LockRow {
            coordinator_region: name.to_string(),
            put_ms: mean_put(&cluster, &mp, 20),
        });
        cluster.shutdown();
    }
    rows
}

fn flush(seed: u64) -> Vec<FlushRow> {
    let mut rows = Vec::new();
    for flush_ms in [200.0, 1000.0, 4000.0, 8000.0] {
        let cluster = Cluster::launch(&[Region::UsWest, Region::AsiaEast], SCALE, seed);
        cluster
            .register_policy_over(
                "ev",
                &[("US-West", false), ("Asia-East", false)],
                bodies::EVENTUAL,
            )
            .unwrap();
        let dep = cluster
            .controller
            .start_instances(
                "ev",
                "ev",
                DeploymentConfig {
                    flush_ms,
                    ..Default::default()
                },
            )
            .unwrap();
        let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "probe")
            .replicas(dep.replicas())
            .build();
        let replicas = cluster.deployment_replicas("ev");
        let tokyo = replicas
            .iter()
            .find(|r| r.node.region == Region::AsiaEast)
            .unwrap();

        let mut put_ms = 0.0;
        let mut conv_ms = 0.0;
        let n = 6;
        for i in 0..n {
            let key = format!("conv-{i}");
            let t0 = cluster.clock.now();
            let view = client.put(&key, Bytes::from(vec![1u8; 512])).unwrap();
            put_ms += view.latency.as_millis_f64();
            // Wall-wait until Tokyo can serve it; convergence measured in
            // modeled time.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            while tokyo.instance().get(&key).is_err() {
                assert!(std::time::Instant::now() < deadline, "never converged");
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
            conv_ms += cluster.clock.now().elapsed_since(t0).as_millis_f64();
        }
        rows.push(FlushRow {
            flush_ms,
            put_ms: put_ms / n as f64,
            convergence_ms: conv_ms / n as f64,
        });
        cluster.shutdown();
    }
    rows
}

fn main() {
    let seed = wiera_bench::default_seed();

    let fanout_rows = fanout(seed);
    wiera_bench::print_table(
        "Ablation A: put latency vs replica fan-out (from US-West, ms)",
        &["Replicas", "MultiPrimaries", "PB-sync", "Eventual"],
        &fanout_rows
            .iter()
            .map(|r| {
                vec![
                    r.replicas.to_string(),
                    format!("{:.1}", r.multi_primaries_ms),
                    format!("{:.1}", r.primary_backup_sync_ms),
                    format!("{:.1}", r.eventual_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // Strong protocols pay the slowest replica; eventual is flat.
    assert!(
        fanout_rows.last().unwrap().multi_primaries_ms
            > fanout_rows.first().unwrap().multi_primaries_ms,
        "adding farther replicas must raise the strong put"
    );
    for r in &fanout_rows {
        assert!(
            r.eventual_ms < 10.0,
            "eventual stays local: {}",
            r.eventual_ms
        );
        assert!(
            r.multi_primaries_ms > r.primary_backup_sync_ms,
            "the global lock costs an extra round trip over PB-sync"
        );
    }

    let lock_rows = lock_placement(seed);
    wiera_bench::print_table(
        "Ablation B: MultiPrimaries put (from US-West) vs coordinator placement",
        &["Coordinator", "Put (ms)"],
        &lock_rows
            .iter()
            .map(|r| vec![r.coordinator_region.clone(), format!("{:.1}", r.put_ms)])
            .collect::<Vec<_>>(),
    );
    let by = |n: &str| {
        lock_rows
            .iter()
            .find(|r| r.coordinator_region == n)
            .unwrap()
            .put_ms
    };
    assert!(
        by("US-West") < by("Asia-East"),
        "a writer-local coordinator must beat a trans-Pacific one"
    );

    let flush_rows = flush(seed);
    wiera_bench::print_table(
        "Ablation C: eventual consistency — flush interval vs convergence",
        &["Flush (ms)", "Put (ms)", "Convergence at Tokyo (ms)"],
        &flush_rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.0}", r.flush_ms),
                    format!("{:.1}", r.put_ms),
                    format!("{:.0}", r.convergence_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    assert!(
        flush_rows.last().unwrap().convergence_ms
            > flush_rows.first().unwrap().convergence_ms * 2.0,
        "longer flush interval must delay convergence"
    );
    for w in flush_rows.windows(2) {
        assert!(
            (w[0].put_ms - w[1].put_ms).abs() < 5.0,
            "put latency is independent of the flush interval"
        );
    }

    println!("\nshape-check: fan-out raises strong puts; lock placement matters; flush trades convergence only  [OK]");
    wiera_bench::emit(
        "ablation_consistency",
        &Record {
            experiment: "ablation",
            fanout: fanout_rows,
            lock_placement: lock_rows,
            flush: flush_rows,
        },
    );
}
