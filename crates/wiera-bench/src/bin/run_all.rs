//! Run every paper experiment in sequence.
//!
//! ```sh
//! cargo run --release -p wiera-bench --bin run_all            # full runs
//! cargo run --release -p wiera-bench --bin run_all -- --smoke # CI gate
//! ```
//!
//! Each experiment is a separate binary (so they can also be run and
//! tweaked individually); this driver executes them all, stops on the
//! first failure, and summarizes. JSON results land in `results/`.
//!
//! `--smoke` is the CI bench gate: it sets `WIERA_SMOKE=1` so experiments
//! shrink their workloads to CI-sized runs, then checks that every
//! experiment wrote a parseable `results/<name>.json`, and asserts
//! invariants over the exported `results/metrics_<name>.json` registry
//! snapshots (RPCs flowed, tiers served ops, latencies were recorded).

use std::process::Command;
use wiera_sim::RegistrySnapshot;

const EXPERIMENTS: [(&str, &str); 14] = [
    ("table4_costs", "Table 4: storage tier prices"),
    ("fig9_tier_latency", "Fig. 9: per-tier 4KB latency"),
    (
        "fig10_centralized_latency",
        "Fig. 10: centralized S3-IA latency",
    ),
    ("sec53_cost_savings", "§5.3: cold-data cost savings"),
    (
        "fig7_dynamic_consistency",
        "Fig. 7: run-time consistency switching",
    ),
    (
        "fig8_table3_change_primary",
        "Fig. 8 + Table 3: changing primary",
    ),
    (
        "fig11_sysbench_iops",
        "Fig. 11: SysBench local disk vs remote memory",
    ),
    (
        "fig12_rubis_throughput",
        "Fig. 12: RUBiS local disk vs remote memory",
    ),
    (
        "ablation_consistency",
        "Ablations: fan-out, lock placement, flush interval",
    ),
    (
        "bulk_throughput",
        "Bulk ops: batching vs per-op completion time and wire bytes",
    ),
    (
        "chaos",
        "§4.4 chaos campaign: fault masking across all protocols",
    ),
    (
        "hotpath",
        "Hot path: wall-clock engine throughput + copied-bytes counter",
    ),
    (
        "fleet_throughput",
        "Fleet sharding: aggregate ops/sec scaling over 1→8 replica groups",
    ),
    (
        "brownout",
        "Brownout: goodput under a degraded tier, hedged vs plain clients",
    ),
];

/// Binaries that export a `results/metrics_<name>.json` registry snapshot,
/// with the counter/histogram invariants the smoke gate asserts on each.
const METRIC_CHECKS: [(&str, &[Invariant]); 10] = [
    (
        "fig9_tier_latency",
        &[
            Invariant::CounterPositive("tiera_ops_total"),
            Invariant::CounterPositive("tier_ops_total"),
            Invariant::HistogramPositive("tier_op_latency"),
            Invariant::HistogramPositive("tiera_op_latency"),
        ],
    ),
    (
        "fig10_centralized_latency",
        &[
            Invariant::CounterPositive("net_rpc_total"),
            Invariant::HistogramPositive("net_rpc_latency"),
            Invariant::CounterPositive("tiera_ops_total"),
            Invariant::CounterZero("net_rpc_timeouts"),
        ],
    ),
    (
        "fig7_dynamic_consistency",
        &[
            Invariant::CounterPositive("net_rpc_total"),
            Invariant::CounterPositive("wiera_put_total"),
            Invariant::CounterPositive("wiera_consistency_switches"),
            Invariant::HistogramPositive("wiera_put_latency"),
        ],
    ),
    (
        "fig8_table3_change_primary",
        &[
            Invariant::CounterPositive("net_rpc_total"),
            Invariant::CounterPositive("wiera_put_total"),
            Invariant::CounterPositive("wiera_get_total"),
            Invariant::CounterPositive("controller_change_requests"),
        ],
    ),
    (
        "fig11_sysbench_iops",
        &[
            Invariant::CounterPositive("net_rpc_total"),
            Invariant::CounterPositive("tiera_ops_total"),
            Invariant::HistogramPositive("wiera_get_latency"),
        ],
    ),
    (
        "bulk_throughput",
        &[
            Invariant::CounterPositive("net_rpc_total"),
            Invariant::CounterPositive("net_rpc_bytes"),
            Invariant::CounterPositive("tiera_ops_total"),
        ],
    ),
    (
        "chaos",
        &[
            Invariant::CounterPositive("chaos_faults"),
            Invariant::CounterPositive("wiera_crashes"),
            Invariant::CounterPositive("wiera_restarts"),
            Invariant::CounterPositive("wiera_anti_entropy_pulled"),
            Invariant::CounterPositive("client_retries"),
        ],
    ),
    (
        "hotpath",
        &[
            Invariant::CounterPositive("tiera_ops_total"),
            Invariant::CounterPositive("tier_ops_total"),
        ],
    ),
    (
        "fleet_throughput",
        &[
            Invariant::CounterPositive("net_rpc_total"),
            Invariant::CounterPositive("wiera_put_total"),
            Invariant::CounterPositive("wiera_get_total"),
            // The map is stable while the pool runs: with no shard moving,
            // every op must route correctly on the first try.
            Invariant::CounterZero("wiera_wrong_shard_total"),
        ],
    ),
    (
        "brownout",
        &[
            Invariant::CounterPositive("net_rpc_total"),
            Invariant::CounterPositive("wiera_get_total"),
            // Hedges must fire and win under the browned-out tier.
            Invariant::CounterPositive("client_hedges"),
            // Sequential clients never build an admission backlog, so the
            // armed overload machinery must not shed a single op.
            Invariant::CounterZero("wiera_shed_total"),
        ],
    ),
];

enum Invariant {
    /// Summed counter (across labels) must be > 0.
    CounterPositive(&'static str),
    /// Summed counter must be exactly 0.
    CounterZero(&'static str),
    /// Histogram must have recorded at least one sample.
    HistogramPositive(&'static str),
}

impl Invariant {
    fn check(&self, snap: &RegistrySnapshot) -> Result<(), String> {
        match self {
            Invariant::CounterPositive(name) => {
                let v = snap.counter_sum(name);
                if v == 0 {
                    return Err(format!("counter {name} expected > 0, got 0"));
                }
            }
            Invariant::CounterZero(name) => {
                let v = snap.counter_sum(name);
                if v != 0 {
                    return Err(format!("counter {name} expected 0, got {v}"));
                }
            }
            Invariant::HistogramPositive(name) => {
                let v = snap.histogram_count(name);
                if v == 0 {
                    return Err(format!("histogram {name} expected samples, got none"));
                }
            }
        }
        Ok(())
    }
}

/// Validate results + metrics files after a smoke run. Returns the list of
/// problems found (empty = gate passes).
fn validate_smoke() -> Vec<String> {
    let dir = wiera_bench::results_dir();
    let mut problems = Vec::new();

    for (bin, _) in EXPERIMENTS {
        let path = dir.join(format!("{bin}.json"));
        match std::fs::read_to_string(&path) {
            Err(e) => problems.push(format!("{bin}: missing {}: {e}", path.display())),
            Ok(body) => {
                if let Err(e) = serde_json::from_str::<serde_json::Value>(&body) {
                    problems.push(format!("{bin}: unparseable {}: {e}", path.display()));
                }
            }
        }
    }

    for (bin, invariants) in METRIC_CHECKS {
        let path = dir.join(format!("metrics_{bin}.json"));
        let snap: RegistrySnapshot = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|body| serde_json::from_str(&body).map_err(|e| e.to_string()))
        {
            Ok(snap) => snap,
            Err(e) => {
                problems.push(format!(
                    "{bin}: bad metrics snapshot {}: {e}",
                    path.display()
                ));
                continue;
            }
        };
        for inv in invariants {
            if let Err(e) = inv.check(&snap) {
                problems.push(format!("{bin}: {e}"));
            }
        }
    }
    problems
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let self_exe = std::env::current_exe().expect("own path");
    let bin_dir = self_exe.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    let started = std::time::Instant::now();

    for (bin, what) in EXPERIMENTS {
        println!("\n────────────────────────────────────────────────────────");
        println!("▶ {bin}: {what}");
        println!("────────────────────────────────────────────────────────");
        let path = bin_dir.join(bin);
        let mut cmd = Command::new(&path);
        if smoke {
            cmd.env("WIERA_SMOKE", "1");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(bin.to_string());
            eprintln!("✗ {bin} FAILED ({status})");
        }
    }

    if smoke {
        println!("\n── smoke gate: results + metrics invariants ─────────────");
        let problems = validate_smoke();
        if problems.is_empty() {
            println!("✓ all result files parse; all metric invariants hold");
        } else {
            for p in &problems {
                eprintln!("✗ {p}");
            }
            failures.extend(problems);
        }

        println!("\n── smoke gate: source audit ──────────────────────────────");
        let audit = bin_dir.join("wiera-audit");
        if audit.exists() {
            match Command::new(&audit).arg("--deny-warnings").status() {
                Ok(s) if s.success() => {
                    println!("✓ wiera-audit: workspace sources are clean");
                }
                Ok(s) => failures.push(format!("wiera-audit exited {s}")),
                Err(e) => failures.push(format!("failed to launch wiera-audit: {e}")),
            }
        } else {
            // Built separately (`cargo build --release -p wiera-audit`);
            // the dedicated static-audit CI job always runs it.
            println!("– wiera-audit binary not present; skipping source audit");
        }

        println!("\n── smoke gate: protocol model check ──────────────────────");
        let model = bin_dir.join("wiera-model");
        if model.exists() {
            std::fs::create_dir_all("results").ok();
            match Command::new(&model)
                .args(["--report", "results/model_report.json"])
                .status()
            {
                Ok(s) if s.success() => {
                    println!(
                        "✓ wiera-model: all protocols explore clean \
                         (results/model_report.json)"
                    );
                }
                Ok(s) => failures.push(format!("wiera-model exited {s}")),
                Err(e) => failures.push(format!("failed to launch wiera-model: {e}")),
            }
        } else {
            // Built separately (`cargo build --release -p wiera-model`);
            // the dedicated model-check CI job always runs it.
            println!("– wiera-model binary not present; skipping model check");
        }
    }

    println!("\n════════════════════════════════════════════════════════");
    if failures.is_empty() {
        println!(
            "all {} experiments reproduced their paper shapes in {:.0?}",
            EXPERIMENTS.len(),
            started.elapsed()
        );
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
