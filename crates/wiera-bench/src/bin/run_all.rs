//! Run every paper experiment in sequence.
//!
//! ```sh
//! cargo run --release -p wiera-bench --bin run_all
//! ```
//!
//! Each experiment is a separate binary (so they can also be run and
//! tweaked individually); this driver executes them all, stops on the
//! first failure, and summarizes. JSON results land in `results/`.

use std::process::Command;

const EXPERIMENTS: [(&str, &str); 9] = [
    ("table4_costs", "Table 4: storage tier prices"),
    ("fig9_tier_latency", "Fig. 9: per-tier 4KB latency"),
    ("fig10_centralized_latency", "Fig. 10: centralized S3-IA latency"),
    ("sec53_cost_savings", "§5.3: cold-data cost savings"),
    ("fig7_dynamic_consistency", "Fig. 7: run-time consistency switching"),
    ("fig8_table3_change_primary", "Fig. 8 + Table 3: changing primary"),
    ("fig11_sysbench_iops", "Fig. 11: SysBench local disk vs remote memory"),
    ("fig12_rubis_throughput", "Fig. 12: RUBiS local disk vs remote memory"),
    ("ablation_consistency", "Ablations: fan-out, lock placement, flush interval"),
];

fn main() {
    let self_exe = std::env::current_exe().expect("own path");
    let bin_dir = self_exe.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    let started = std::time::Instant::now();

    for (bin, what) in EXPERIMENTS {
        println!("\n────────────────────────────────────────────────────────");
        println!("▶ {bin}: {what}");
        println!("────────────────────────────────────────────────────────");
        let path = bin_dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(bin);
            eprintln!("✗ {bin} FAILED ({status})");
        }
    }

    println!("\n════════════════════════════════════════════════════════");
    if failures.is_empty() {
        println!(
            "all {} experiments reproduced their paper shapes in {:.0?}",
            EXPERIMENTS.len(),
            started.elapsed()
        );
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
