//! Fleet throughput: what consistent-hash sharding buys in aggregate.
//!
//! One replica group replicates every object to all of its replicas, so
//! its write path is the whole deployment's throughput ceiling. The fleet
//! spreads the keyspace over many groups behind the shard map; this bench
//! measures how aggregate throughput scales as the SAME workload is served
//! by 1, 2, 4, and 8 groups.
//!
//! Setup: a two-region eventual-consistency fleet (2 replicas per group,
//! one per region), 64 shards on the ring, and a modeled per-replica
//! service time — each replica is a saturable single server capping out at
//! `1/service_time` ops/sec, so capacity genuinely grows with groups. A
//! closed-loop pool of Zipfian clients (half per region, YCSB-style
//! read-mostly mix over a 100k-record keyspace) drives every
//! configuration; throughput is total ops over elapsed *sim* time.
//!
//! Shape checks:
//!
//! * near-linear scaling — 8 groups must deliver ≥4× the aggregate
//!   ops/sec of 1 group (sub-linear headroom comes from the Zipfian head:
//!   the hottest group serves more than 1/N of the load);
//! * shard balance — no group's request share may exceed 35 % at 8
//!   groups, i.e. the ring spreads even a skewed keyspace.

use serde::Serialize;
use std::sync::Arc;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::fleet::{FleetConfig, WieraFleet};
use wiera::testkit::{bodies, Cluster};
use wiera_net::Region;
use wiera_sim::{SimDuration, SimRng};
use wiera_workload::{ClientDriver, KeyChooser, Ledger, WorkloadSpec};

/// Gentle time compression, like the other closed-loop throughput benches
/// (`fig11`/`fig12` pace at 4x): modeled sleeps must dominate real compute
/// overhead or wall-clock scheduling noise pollutes the sim-time axis.
const SCALE: f64 = 2.0;
const SHARDS: u32 = 64;
const VNODES: u32 = 8;
const VALUE_BYTES: usize = 64;
/// Per-replica modeled service time: each replica saturates at ~200
/// ops/sec, so one 2-replica group caps near 400 ops/sec aggregate.
const SERVICE_MS: f64 = 5.0;
/// Zipf exponent for the client key distribution. 0.9 is a heavy skew
/// (the hot head carries a large share) while still letting the hottest
/// group stay under the balance bound at 8 groups.
const THETA: f64 = 0.9;

#[derive(Serialize)]
struct Row {
    groups: u32,
    clients: usize,
    ops: u64,
    errors: u64,
    sim_seconds: f64,
    ops_per_sec: f64,
    speedup_vs_1: f64,
    /// Analytic request share of the most-loaded group under the Zipfian
    /// distribution and this run's shard map.
    hottest_group_share: f64,
    mean_put_ms: f64,
    mean_get_ms: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    shards: u32,
    vnodes: u32,
    keyspace: usize,
    service_time_ms: f64,
    zipf_theta: f64,
    rows: Vec<Row>,
}

/// Request-weighted load share of each group: sum the Zipfian probability
/// mass of the head of the keyspace (which carries almost all requests)
/// into the owning group.
fn group_shares(map: &wiera_coord::shard::ShardMap, keyspace: usize) -> Vec<f64> {
    let head = keyspace.min(20_000);
    let mut shares = vec![0.0f64; map.num_groups() as usize];
    let mut total = 0.0;
    for rank in 0..head {
        let p = 1.0 / ((rank + 1) as f64).powf(THETA);
        let g = map.group_of(&format!("user{rank:08}"));
        shares[g as usize] += p;
        total += p;
    }
    for s in &mut shares {
        *s /= total;
    }
    shares
}

/// Drive the closed-loop client pool against a fresh fleet of `groups`
/// groups and report aggregate throughput in ops per sim-second.
fn run_at_groups(
    seed: u64,
    groups: u32,
    clients: usize,
    keyspace: usize,
    ops_per_client: u64,
) -> Row {
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], SCALE, seed);
    cluster
        .register_policy_over(
            "fleetbench",
            &[("US-East", true), ("US-West", false)],
            bodies::EVENTUAL,
        )
        .unwrap();
    let fleet = WieraFleet::launch(
        cluster.controller.clone(),
        cluster.data_mesh.clone(),
        "fleetbench",
        FleetConfig::new("fleetbench")
            .with_groups(groups)
            .with_shards(SHARDS, VNODES)
            .with_deployment(DeploymentConfig {
                service_time_ms: Some(SERVICE_MS),
                ..DeploymentConfig::default()
            }),
    )
    .unwrap();

    let shares = group_shares(&fleet.view().map(), keyspace);
    let hottest = shares.iter().cloned().fold(0.0, f64::max);

    // One shared ledger so freshness tracking spans the whole pool; one
    // driver per client so latency recorders never contend.
    let ledger = Arc::new(Ledger::new());
    let spec = WorkloadSpec {
        name: "fleet-read-mostly",
        get_prop: 0.95,
        put_prop: 0.05,
        rmw_prop: 0.0,
        keys: KeyChooser::zipfian_theta(keyspace, THETA),
        value_bytes: VALUE_BYTES,
    };
    let pool: Vec<(Arc<WieraClient>, Arc<ClientDriver>)> = (0..clients)
        .map(|i| {
            let region = if i % 2 == 0 {
                Region::UsEast
            } else {
                Region::UsWest
            };
            let client =
                WieraClient::builder(cluster.data_mesh.clone(), region, format!("fleet-app-{i}"))
                    .fleet(fleet.view())
                    .max_attempts(40)
                    .build();
            let driver = ClientDriver::new(spec.clone(), ledger.clone(), SimDuration::ZERO);
            (client, driver)
        })
        .collect();

    // Measure only the driven workload, not fleet launch traffic.
    wiera_bench::reset_observability();
    let t0 = cluster.clock.now();
    std::thread::scope(|s| {
        for (i, (client, driver)) in pool.iter().enumerate() {
            let clock = &cluster.clock;
            s.spawn(move || {
                let mut rng = SimRng::new(seed ^ 0xf1ee).child(&format!("client-{i}"));
                driver.run_ops(&**client, clock, &mut rng, ops_per_client);
            });
        }
    });
    let sim_seconds = cluster.clock.now().elapsed_since(t0).as_secs_f64();

    let drivers: Vec<Arc<ClientDriver>> = pool.iter().map(|(_, d)| d.clone()).collect();
    let report = ClientDriver::merged_report(&drivers);
    fleet.stop_all();
    cluster.shutdown();

    Row {
        groups,
        clients,
        ops: report.ops,
        errors: report.errors,
        sim_seconds,
        ops_per_sec: report.ops as f64 / sim_seconds.max(1e-9),
        speedup_vs_1: 0.0, // filled once the 1-group baseline is known
        hottest_group_share: hottest,
        mean_put_ms: report.put_latency.mean_ms,
        mean_get_ms: report.get_latency.mean_ms,
    }
}

fn main() {
    let seed = wiera_bench::default_seed();
    let smoke = wiera_bench::is_smoke();
    // Smoke shrinks the pool and keyspace but keeps the full group sweep,
    // so CI still exercises the 8-group fleet end to end.
    let (clients, keyspace, ops_per_client) = if smoke {
        (16, 10_000, 30)
    } else {
        (64, 100_000, 150)
    };

    let mut rows: Vec<Row> = [1u32, 2, 4, 8]
        .iter()
        .map(|&g| run_at_groups(seed, g, clients, keyspace, ops_per_client))
        .collect();
    let base = rows[0].ops_per_sec;
    for r in &mut rows {
        r.speedup_vs_1 = r.ops_per_sec / base;
    }

    wiera_bench::print_table(
        &format!(
            "Fleet throughput: {clients} Zipfian clients (θ={THETA}), {keyspace} keys, \
             {SHARDS} shards, {SERVICE_MS} ms/op replicas, eventual consistency"
        ),
        &[
            "Groups",
            "Ops",
            "Sim s",
            "Ops/s",
            "Speedup",
            "Hottest grp",
            "Put (ms)",
            "Get (ms)",
            "Errors",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.groups.to_string(),
                    r.ops.to_string(),
                    format!("{:.2}", r.sim_seconds),
                    format!("{:.0}", r.ops_per_sec),
                    format!("{:.2}x", r.speedup_vs_1),
                    format!("{:.0}%", r.hottest_group_share * 100.0),
                    format!("{:.2}", r.mean_put_ms),
                    format!("{:.2}", r.mean_get_ms),
                    r.errors.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let total_ops = clients as u64 * ops_per_client;
    for r in &rows {
        assert_eq!(r.ops, total_ops, "{} groups must drive every op", r.groups);
        assert_eq!(r.errors, 0, "{} groups saw op errors", r.groups);
    }
    let eight = rows.iter().find(|r| r.groups == 8).unwrap();
    assert!(
        eight.hottest_group_share < 0.35,
        "shard imbalance: hottest group carries {:.0}% of requests",
        eight.hottest_group_share * 100.0
    );
    // Smoke runs are small enough that queueing never fully dominates, so
    // the gate is relaxed there; the committed full run must show ≥4×.
    let need = if smoke { 2.0 } else { 4.0 };
    assert!(
        eight.speedup_vs_1 >= need,
        "8 groups must scale ≥{need}x over 1, got {:.2}x",
        eight.speedup_vs_1
    );

    println!(
        "\nshape-check: 8 groups deliver {:.2}x aggregate throughput (≥{need}x) with \
         hottest group at {:.0}%  [OK]",
        eight.speedup_vs_1,
        eight.hottest_group_share * 100.0
    );
    let record = Record {
        experiment: "fleet_throughput",
        shards: SHARDS,
        vnodes: VNODES,
        keyspace,
        service_time_ms: SERVICE_MS,
        zipf_theta: THETA,
        rows,
    };
    wiera_bench::emit("fleet_throughput", &record);
    wiera_bench::emit_metrics("fleet_throughput");
}
