//! Fig. 8 + Table 3: changing the primary instance with user location.
//!
//! §5.2 reproduces a Tuba-style reconfiguration: primary-backup with
//! asynchronous (queued) propagation, instances in US-West, EU-West and
//! Asia-East, 10 clients per region whose active population follows a
//! normal distribution staggered Asia → EU → US. With a *static* primary
//! (Asia-East), most get operations far from the primary return outdated
//! data (paper: 69 %) and put latency is dominated by forwarding
//! (Table 3's static row). With the RequestsMonitoring policy moving the
//! primary toward whichever region forwards the most puts, staleness drops
//! (paper: 39 %) and overall put latency falls (Table 3's changing row).

use bytes::Bytes;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera_net::Region;
use wiera_sim::{Histogram, SimDuration, SimRng};
use wiera_workload::{ActiveSchedule, Ledger};

const SCALE: f64 = 200.0;
const REGIONS: [Region; 3] = [Region::AsiaEast, Region::EuWest, Region::UsWest];
const CLIENTS_PER_REGION: usize = 10;
const KEYS: usize = 15;
/// Staggering between regional activity peaks.
const STAGGER_SECS: u64 = 600;
/// Total experiment length: three staggered bells.
const END_SECS: u64 = 1950;

#[derive(Serialize, Clone)]
struct RunResult {
    label: String,
    stale_fraction: f64,
    fresh_reads: u64,
    stale_reads: u64,
    put_mean_ms_by_region: Vec<(String, f64)>,
    overall_put_mean_ms: f64,
    final_primary_region: String,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    static_run: RunResult,
    changing_run: RunResult,
}

fn run(label: &str, changing: bool, seed: u64) -> RunResult {
    // Smoke compresses time harder: the workload is entirely on the modeled
    // axis, so the same three activity bells play out in ~1/3 the wall time.
    let scale = if wiera_bench::is_smoke() {
        SCALE * 3.0
    } else {
        SCALE
    };
    let cluster = Cluster::launch(&REGIONS, scale, seed);
    cluster
        .register_policy_over(
            "pb-async-3",
            &[("Asia-East", true), ("EU-West", false), ("US-West", false)],
            bodies::PRIMARY_BACKUP_ASYNC,
        )
        .unwrap();
    let mut config = DeploymentConfig {
        flush_ms: 8_000.0,
        ..Default::default()
    };
    if changing {
        // Paper: compare over the last 30 s of put history, check every 15 s.
        config = config.with_change_primary(30_000.0, 15_000.0);
    }
    let dep = cluster
        .controller
        .start_instances("fig8", "pb-async-3", config)
        .unwrap();

    let clock = cluster.clock.clone();
    let t0 = clock.now();
    let end = t0 + SimDuration::from_secs(END_SECS);
    let stop = Arc::new(AtomicBool::new(false));
    let ledger = Arc::new(Ledger::new());

    // Per-region aggregation.
    let put_hists: Vec<Arc<parking_lot::Mutex<Histogram>>> = REGIONS
        .iter()
        .map(|_| Arc::new(parking_lot::Mutex::new(Histogram::new())))
        .collect();
    let fresh = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let stale = Arc::new(std::sync::atomic::AtomicU64::new(0));

    // Activity bells staggered in the paper's order (Asia, EU, US).
    let schedules = ActiveSchedule::staggered(
        CLIENTS_PER_REGION,
        REGIONS.len(),
        SimDuration::from_secs(STAGGER_SECS),
    );

    let mut handles = Vec::new();
    for (ri, &region) in REGIONS.iter().enumerate() {
        let sched = schedules[ri].clone();
        for c in 0..CLIENTS_PER_REGION {
            let client = WieraClient::builder(
                cluster.data_mesh.clone(),
                region,
                format!("cli-{region}-{c}"),
            )
            .replicas(dep.replicas())
            .build();
            let clock = clock.clone();
            let stop = stop.clone();
            let ledger = ledger.clone();
            let hist = put_hists[ri].clone();
            let fresh = fresh.clone();
            let stale = stale.clone();
            let sched = sched.clone();
            let seed = wiera_sim::derive_seed(seed, &format!("{region}:{c}"));
            handles.push(std::thread::spawn(move || {
                let mut rng = SimRng::new(seed);
                let keys = wiera_workload::KeyChooser::zipfian(KEYS);
                while !stop.load(Ordering::Acquire) {
                    let now = clock.now();
                    if now >= end {
                        return;
                    }
                    // The activity bell is shifted to this run's origin.
                    let rel = wiera_sim::SimInstant::EPOCH + (now - t0);
                    if !sched.client_active(c, rel) {
                        clock.sleep(SimDuration::from_secs(10));
                        continue;
                    }
                    // Read-mostly: 5% put / 95% get (the §5.2 mix), zipfian
                    // keys so hot objects see frequent overwrites.
                    let key = format!("user{:04}", keys.next(&mut rng));
                    if rng.gen_bool(0.05) {
                        if let Ok(view) = client.put(&key, Bytes::from(vec![1u8; 512])) {
                            hist.lock().record(view.latency);
                            ledger.on_put(&key, view.version);
                        }
                    } else {
                        let expected = ledger.latest(&key);
                        if let Ok(view) = client.get(&key) {
                            if expected > 0 {
                                if Ledger::is_fresh(view.version, expected) {
                                    fresh.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    stale.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    clock.sleep(SimDuration::from_millis(500));
                }
            }));
        }
    }

    while clock.now() < end {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }

    let fresh = fresh.load(Ordering::Relaxed);
    let stale = stale.load(Ordering::Relaxed);
    let mut by_region = Vec::new();
    let mut overall = Histogram::new();
    for (ri, region) in REGIONS.iter().enumerate() {
        let h = put_hists[ri].lock();
        by_region.push((region.to_string(), h.summary().mean_ms));
        overall.merge(&h);
    }
    let final_primary = dep
        .primary()
        .map(|p| p.region.to_string())
        .unwrap_or_else(|| "-".into());
    cluster.shutdown();

    RunResult {
        label: label.to_string(),
        stale_fraction: stale as f64 / (fresh + stale).max(1) as f64,
        fresh_reads: fresh,
        stale_reads: stale,
        put_mean_ms_by_region: by_region,
        overall_put_mean_ms: overall.summary().mean_ms,
        final_primary_region: final_primary,
    }
}

fn main() {
    wiera_bench::reset_observability();
    let seed = wiera_bench::default_seed();
    let static_run = run("static", false, seed);
    let changing_run = run("changing", true, seed + 1);

    // Fig. 8.
    wiera_bench::print_table(
        "Fig. 8: chance of seeing latest (Strong) vs outdated (Eventual) data",
        &[
            "Primary placement",
            "Latest %",
            "Outdated %",
            "final primary",
        ],
        &[
            vec![
                "Static (Asia-East)".into(),
                format!("{:.0}%", (1.0 - static_run.stale_fraction) * 100.0),
                format!("{:.0}%", static_run.stale_fraction * 100.0),
                static_run.final_primary_region.clone(),
            ],
            vec![
                "Changing (Wiera)".into(),
                format!("{:.0}%", (1.0 - changing_run.stale_fraction) * 100.0),
                format!("{:.0}%", changing_run.stale_fraction * 100.0),
                changing_run.final_primary_region.clone(),
            ],
        ],
    );

    // Table 3.
    let mut rows = Vec::new();
    for (i, (region, _)) in static_run.put_mean_ms_by_region.iter().enumerate() {
        rows.push(vec![
            region.clone(),
            format!("{:.1}", static_run.put_mean_ms_by_region[i].1),
            format!("{:.1}", changing_run.put_mean_ms_by_region[i].1),
        ]);
    }
    rows.push(vec![
        "Overall".into(),
        format!("{:.1}", static_run.overall_put_mean_ms),
        format!("{:.1}", changing_run.overall_put_mean_ms),
    ]);
    wiera_bench::print_table(
        "Table 3: average put operation latency (ms)",
        &["Region", "Static", "Changing"],
        &rows,
    );

    // ---- shape checks -------------------------------------------------------
    assert!(
        static_run.stale_fraction > changing_run.stale_fraction + 0.08,
        "changing primary must reduce staleness: static {:.2} vs changing {:.2}",
        static_run.stale_fraction,
        changing_run.stale_fraction
    );
    assert!(
        static_run.stale_fraction > 0.15,
        "static far-primary reads should be substantially stale: {:.2}",
        static_run.stale_fraction
    );
    let static_asia = static_run.put_mean_ms_by_region[0].1;
    let static_us = static_run.put_mean_ms_by_region[2].1;
    assert!(
        static_asia < 10.0,
        "static: Asia clients sit next to the primary (<5-10ms): {static_asia}"
    );
    assert!(
        static_us > 80.0,
        "static: US-West forwards across the Pacific: {static_us}"
    );
    assert!(
        changing_run.overall_put_mean_ms < static_run.overall_put_mean_ms,
        "changing primary must lower overall put latency: {} vs {}",
        changing_run.overall_put_mean_ms,
        static_run.overall_put_mean_ms
    );
    assert_eq!(
        changing_run.final_primary_region, "US-West",
        "the primary should have followed the activity wave to US-West"
    );
    println!("\nshape-check: staleness drops, overall put latency drops, primary migrates  [OK]");

    wiera_bench::emit(
        "fig8_table3_change_primary",
        &Record {
            experiment: "fig8_table3",
            static_run,
            changing_run,
        },
    );
    wiera_bench::emit_metrics("fig8_table3_change_primary");
}
