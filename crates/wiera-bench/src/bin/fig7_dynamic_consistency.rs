//! Fig. 7: changing consistency at run time.
//!
//! The paper's headline dynamism experiment: instances in four regions run
//! MultiPrimaries consistency under an update-heavy workload; delays are
//! injected into the network. Sustained delays (a) and (b) violate the
//! DynamicConsistency policy's (800 ms, 30 s) condition, so Wiera switches
//! the deployment to Eventual (puts drop from ≈400 ms to <10 ms); when the
//! delay clears and the network monitor sees strong puts would again be
//! affordable for 30 s, it switches back. The transient delay (c) is
//! shorter than the period threshold and is ignored.
//!
//! Output: the put-latency timeline at US-West (the paper's plotted
//! region), consistency-change events, and per-phase latency summaries.

use bytes::Bytes;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera_net::Region;
use wiera_policy::ConsistencyModel;
use wiera_sim::{SimDuration, SimInstant, SimRng, TimeSeries};

#[derive(Serialize, Debug)]
struct Event {
    t_secs: f64,
    consistency: String,
}

#[derive(Serialize)]
struct Phase {
    label: String,
    from_secs: f64,
    to_secs: f64,
    mean_put_ms: Option<f64>,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    threshold_ms: f64,
    period_secs: f64,
    delays: Vec<(f64, f64, f64)>, // (start, end, one-way ms)
    events: Vec<Event>,
    phases: Vec<Phase>,
    series: Vec<(f64, f64)>, // (t secs, put ms) decimated
}

const SCALE: f64 = 300.0;
const END: u64 = 420;

fn main() {
    wiera_bench::reset_observability();
    let seed = wiera_bench::default_seed();
    let cluster = Cluster::launch(
        &[
            Region::UsWest,
            Region::UsEast,
            Region::EuWest,
            Region::AsiaEast,
        ],
        SCALE,
        seed,
    );
    cluster
        .register_policy_over(
            "mp-four",
            &[
                ("US-West", false),
                ("US-East", false),
                ("EU-West", false),
                ("Asia-East", false),
            ],
            bodies::MULTI_PRIMARIES,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "fig7",
            "mp-four",
            DeploymentConfig::default().with_dynamic_consistency(800.0, 30_000.0),
        )
        .unwrap();

    let clock = cluster.clock.clone();
    let t0 = clock.now();
    let at = |secs: u64| t0 + SimDuration::from_secs(secs);
    let stop = Arc::new(AtomicBool::new(false));

    // Update-heavy writers in every region (YCSB-A-shaped: we record puts,
    // which are what the figure plots). The US-West client's samples feed
    // the timeline.
    let series = TimeSeries::new();
    let mut writers = Vec::new();
    for region in [
        Region::UsWest,
        Region::UsEast,
        Region::EuWest,
        Region::AsiaEast,
    ] {
        let client =
            WieraClient::builder(cluster.data_mesh.clone(), region, format!("app-{region}"))
                .replicas(dep.replicas())
                .build();
        let clock = clock.clone();
        let stop = stop.clone();
        let series = if region == Region::UsWest {
            Some(series.clone())
        } else {
            None
        };
        writers.push(std::thread::spawn(move || {
            let mut rng = SimRng::new(wiera_sim::derive_seed(1, &format!("w{region}")));
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let key = format!("k{}", rng.gen_range_usize(0, 64));
                if let Ok(view) = client.put(&key, Bytes::from(vec![i as u8; 1024])) {
                    if let Some(s) = &series {
                        s.push(clock.now(), view.latency.as_millis_f64());
                    }
                }
                i += 1;
                clock.sleep(SimDuration::from_millis(500));
            }
        }));
    }

    // Injected delays: (a) and (b) sustained, (c) transient.
    let delays = [
        (40u64, 110u64, 700.0f64),
        (200, 260, 1000.0),
        (330, 345, 700.0),
    ];
    for (start, end, ms) in delays {
        while clock.now() < at(start) {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        cluster
            .fabric
            .inject_node_delay(Region::EuWest, SimDuration::from_millis_f64(ms));
        while clock.now() < at(end) {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        cluster.fabric.clear_node_delay(Region::EuWest);
    }
    while clock.now() < at(END) {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::Release);
    for w in writers {
        w.join().unwrap();
    }

    // Derive consistency-change events from the latency regime shifts in
    // the put series (the application-visible signal the figure plots).
    let pts = series.sorted();
    let rel = |t: SimInstant| t.elapsed_since(t0).as_secs_f64();

    // Detect switches by observing the deployment's consistency at the end
    // plus the latency regime changes in the series.
    let mut events_out: Vec<Event> = Vec::new();
    let mut in_eventual = false;
    for w in pts.windows(4) {
        let all_fast = w.iter().all(|(_, ms)| *ms < 50.0);
        let all_slow = w.iter().all(|(_, ms)| *ms > 100.0);
        if all_fast && !in_eventual {
            in_eventual = true;
            events_out.push(Event {
                t_secs: rel(w[0].0),
                consistency: "Eventual".into(),
            });
        } else if all_slow && in_eventual {
            in_eventual = false;
            events_out.push(Event {
                t_secs: rel(w[0].0),
                consistency: "MultiPrimaries".into(),
            });
        }
    }

    // Phase summaries around the schedule.
    let phase = |label: &str, a: u64, b: u64| Phase {
        label: label.into(),
        from_secs: a as f64,
        to_secs: b as f64,
        mean_put_ms: series.mean_in(at(a), at(b)),
    };
    let phases = vec![
        phase("initial strong", 5, 40),
        phase("delay (a) active", 45, 105),
        phase("eventual after (a)", 80, 110),
        phase("restored strong", 150, 200),
        phase("eventual after (b)", 240, 260),
        phase("strong through transient (c)", 350, 420),
    ];

    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.0}-{:.0}s", p.from_secs, p.to_secs),
                p.mean_put_ms
                    .map(|m| format!("{m:.1} ms"))
                    .unwrap_or("-".into()),
            ]
        })
        .collect();
    wiera_bench::print_table(
        "Fig. 7: put latency phases at US-West (MultiPrimaries <-> Eventual)",
        &["Phase", "Window", "Mean put"],
        &rows,
    );
    for e in &events_out {
        println!("  t={:.1}s  -> {}", e.t_secs, e.consistency);
    }
    // ---- shape checks -------------------------------------------------------
    let initial = phases[0].mean_put_ms.expect("initial samples");
    assert!(
        (150.0..700.0).contains(&initial),
        "strong puts should cost hundreds of ms, got {initial}"
    );
    let eventual_a = phases[2].mean_put_ms.expect("eventual samples after (a)");
    assert!(
        eventual_a < 30.0,
        "eventual puts should be fast, got {eventual_a}"
    );
    let restored = phases[3].mean_put_ms.expect("restored strong samples");
    assert!(restored > 100.0, "strong restored after (a): {restored}");
    let tail = phases[5].mean_put_ms.expect("tail samples");
    assert!(
        tail > 100.0,
        "transient delay (c) must NOT trigger a switch; tail mean {tail}"
    );
    let to_eventual = events_out
        .iter()
        .filter(|e| e.consistency == "Eventual")
        .count();
    let to_strong = events_out
        .iter()
        .filter(|e| e.consistency == "MultiPrimaries")
        .count();
    assert_eq!(
        to_eventual, 2,
        "exactly two switches to eventual: {events_out:?}"
    );
    assert_eq!(to_strong, 2, "exactly two switches back: {events_out:?}");
    assert_eq!(dep.consistency(), ConsistencyModel::MultiPrimaries);
    // No switch events after the transient delay (c) begins.
    assert!(
        events_out.iter().all(|e| e.t_secs < 330.0),
        "no switches may follow the transient delay: {events_out:?}"
    );

    println!("\nshape-check: 2 switches out + 2 back, transient (c) ignored  [OK]");

    // Decimate the series for the record.
    let series_out: Vec<(f64, f64)> = pts
        .iter()
        .enumerate()
        .filter(|(i, _)| i % (pts.len() / 400 + 1) == 0)
        .map(|(_, (t, ms))| (rel(*t), *ms))
        .collect();

    wiera_bench::emit(
        "fig7_dynamic_consistency",
        &Record {
            experiment: "fig7",
            threshold_ms: 800.0,
            period_secs: 30.0,
            delays: delays
                .iter()
                .map(|&(a, b, ms)| (a as f64, b as f64, ms))
                .collect(),
            events: events_out,
            phases,
            series: series_out,
        },
    );
    wiera_bench::emit_metrics("fig7_dynamic_consistency");

    cluster.shutdown();
}
