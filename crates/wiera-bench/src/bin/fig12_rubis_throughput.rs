//! Fig. 12: RUBiS throughput — MySQL on the Azure VM's local disk vs on
//! remote AWS memory through Wiera, across Azure VM sizes.
//!
//! Same storage setups as Fig. 11 (§5.4.2 uses "the same evaluation
//! environment"), with the unmodified RUBiS application on top: MySQL-like
//! record store, O_DIRECT, minimal buffer pool. The paper reports low
//! throughput on small VMs and a 50–80 % improvement on Standard D2/D3,
//! mirroring the SysBench crossover.

use serde::Serialize;
use std::sync::Arc;
use wiera::msg::DataMsg;
use wiera::replica::{ReplicaConfig, ReplicaNode};
use wiera_apps::fs::{FsConfig, WieraFs};
use wiera_apps::rubis::{Rubis, RubisConfig};
use wiera_apps::TierStore;
use wiera_net::{Fabric, Mesh, NodeId, Region};
use wiera_policy::ConsistencyModel;
use wiera_sim::{ScaledClock, SharedClock, SimDuration};
use wiera_tiers::{SimTier, TierKind, TierSpec};

const PACE_SCALE: f64 = 2.0;

const VM_SIZES: [(&str, f64); 4] = [
    ("Basic A2", 42.0),
    ("Standard D1", 58.0),
    ("Standard D2", 96.0),
    ("Standard D3", 100.0),
];

#[derive(Serialize)]
struct SizeResult {
    vm: String,
    nic_cap_mbps: f64,
    local_disk_rps: f64,
    remote_memory_rps: f64,
    improvement: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    clients: usize,
    items: usize,
    users: usize,
    buffer_pool_bytes: usize,
    sizes: Vec<SizeResult>,
}

fn rubis_cfg(seed: u64) -> RubisConfig {
    // Smoke mode: a shorter measured window and a smaller catalog, enough
    // to drive every request type through the stack without CI minutes.
    let smoke = wiera_bench::is_smoke();
    RubisConfig {
        items: if smoke { 2_000 } else { 10_000 },
        users: if smoke { 2_000 } else { 10_000 },
        clients: 8,
        buffer_pool_bytes: 2 << 20,
        ramp_up: SimDuration::from_secs(if smoke { 1 } else { 4 }),
        measure: SimDuration::from_secs(if smoke { 3 } else { 15 }),
        ramp_down: SimDuration::from_secs(if smoke { 1 } else { 2 }),
        seed,
    }
}

fn run_local(seed: u64) -> f64 {
    let clock: SharedClock = ScaledClock::shared(PACE_SCALE);
    let tier = SimTier::new(
        TierSpec::of(TierKind::AzureDisk),
        1 << 30,
        clock.clone(),
        seed,
    );
    let store = TierStore::paced(tier, clock.clone());
    let fs = WieraFs::new(store, FsConfig::direct(16 * 1024));
    let (rubis, _) = Rubis::populate(fs, rubis_cfg(seed)).unwrap();
    rubis.run_paced(&clock).throughput
}

fn run_remote(nic_cap_mbps: f64, seed: u64) -> f64 {
    let fabric = Arc::new(Fabric::multicloud(seed));
    fabric.set_egress_cap_mbps(Region::AzureUsEast, Some(nic_cap_mbps));
    let mesh = Mesh::new(fabric, ScaledClock::shared(PACE_SCALE));

    let azure = ReplicaNode::spawn(
        mesh.clone(),
        ReplicaConfig {
            node: NodeId::new(Region::AzureUsEast, "azure-primary"),
            instance: tiera::InstanceConfig::new("azure", Region::AzureUsEast)
                .with_tier("tier1", "AzureDisk", 1 << 30)
                .with_sleep(true, false),
            consistency: ConsistencyModel::PrimaryBackup { sync: true },
            flush_interval: SimDuration::from_millis(500),
            coord: None,
            forward_gets_to: None,
            shard_group: None,
            service_time: None,
            overload: None,
        },
    )
    .expect("replica spawns");
    let aws = ReplicaNode::spawn(
        mesh.clone(),
        ReplicaConfig {
            node: NodeId::new(Region::UsEast, "aws-memory"),
            instance: tiera::InstanceConfig::new("aws", Region::UsEast)
                .with_tier("tier1", "Memcached", 1 << 30)
                .with_sleep(true, false),
            consistency: ConsistencyModel::PrimaryBackup { sync: true },
            flush_interval: SimDuration::from_millis(500),
            coord: None,
            forward_gets_to: None,
            shard_group: None,
            service_time: None,
            overload: None,
        },
    )
    .expect("replica spawns");
    let peers = vec![azure.node.clone(), aws.node.clone()];
    azure.set_peers_direct(peers.clone(), Some(azure.node.clone()), 1);
    aws.set_peers_direct(peers, Some(azure.node.clone()), 1);
    azure.set_forward_gets_to(Some(aws.node.clone()));

    let client = wiera::client::WieraClient::builder(mesh.clone(), Region::AzureUsEast, "rubis-vm")
        .replicas(vec![azure.node.clone()])
        .build();
    let fs = WieraFs::new(client, FsConfig::direct(16 * 1024));
    let (rubis, _) = Rubis::populate(fs, rubis_cfg(seed)).unwrap();
    let rps = rubis.run_paced(&mesh.clock).throughput;

    let ctrl = NodeId::new(Region::UsEast, "ctl");
    let _ = mesh.rpc(
        &ctrl,
        &azure.node,
        DataMsg::Stop,
        64,
        SimDuration::from_secs(5),
    );
    let _ = mesh.rpc(
        &ctrl,
        &aws.node,
        DataMsg::Stop,
        64,
        SimDuration::from_secs(5),
    );
    mesh.shutdown();
    rps
}

fn main() {
    wiera_bench::reset_observability();
    let seed = wiera_bench::default_seed();
    let cfg = rubis_cfg(seed);
    let mut sizes = Vec::new();
    for (vm, cap) in VM_SIZES {
        let local = run_local(seed);
        let remote = run_remote(cap, seed);
        sizes.push(SizeResult {
            vm: vm.to_string(),
            nic_cap_mbps: cap,
            local_disk_rps: local,
            remote_memory_rps: remote,
            improvement: remote / local - 1.0,
        });
    }

    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|s| {
            vec![
                s.vm.clone(),
                format!("{:.0}", s.local_disk_rps),
                format!("{:.0}", s.remote_memory_rps),
                format!("{:+.0}%", s.improvement * 100.0),
            ]
        })
        .collect();
    wiera_bench::print_table(
        "Fig. 12: RUBiS throughput (requests/s) — local disk vs remote memory via Wiera",
        &["VM size", "Local disk", "Remote memory", "Improvement"],
        &rows,
    );

    let by = |vm: &str| sizes.iter().find(|s| s.vm == vm).unwrap();
    assert!(by("Basic A2").remote_memory_rps < by("Standard D2").remote_memory_rps);
    if !wiera_bench::is_smoke() {
        assert!(by("Standard D1").remote_memory_rps < by("Standard D2").remote_memory_rps);
        assert!(
            by("Standard D2").improvement > 0.2,
            "D2 should clearly improve: {:+.0}%",
            by("Standard D2").improvement * 100.0
        );
        assert!(
            by("Basic A2").improvement < by("Standard D2").improvement,
            "small VMs improve less (network throttling)"
        );
    }
    println!("\nshape-check: throughput gain grows with VM size; D2/D3 clearly ahead  [OK]");

    wiera_bench::emit(
        "fig12_rubis_throughput",
        &Record {
            experiment: "fig12",
            clients: cfg.clients,
            items: cfg.items,
            users: cfg.users,
            buffer_pool_bytes: cfg.buffer_pool_bytes,
            sizes,
        },
    );
    wiera_bench::emit_metrics("fig12_rubis_throughput");
}
