//! Table 4: storage tiers' prices in AWS (US-East).
//!
//! Regenerates the paper's price table from the cost model that every cost
//! experiment (§5.3) bills against.

use serde::Serialize;
use wiera_tiers::cost::{price_table, PriceRow};

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    rows: Vec<PriceRow>,
}

fn main() {
    let rows = price_table();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tier.to_string(),
                format!("${}", r.storage_gb_month),
                format!("${}", r.put_per_10k),
                format!("${}", r.get_per_10k),
                format!("${}", r.network_within_dc_gb),
                format!("${}", r.network_to_internet_gb),
            ]
        })
        .collect();
    wiera_bench::print_table(
        "Table 4: Storage Tiers' Price in AWS (US East)",
        &[
            "Tier",
            "Storage $/GB-mo",
            "Put $/10k",
            "Get $/10k",
            "Net $/GB (in-DC)",
            "Net $/GB (internet)",
        ],
        &table,
    );
    wiera_bench::emit(
        "table4_costs",
        &Record {
            experiment: "table4",
            rows,
        },
    );
}
