//! Bulk-operation throughput: what batching buys end to end.
//!
//! Drives the same YCSB-A mix through `WieraClient` at batch sizes
//! {1, 8, 64, 256} against a two-region synchronous primary-backup
//! deployment. A batch ships as ONE `MultiPut`/`MultiGet` message (one
//! 64-byte wire header amortized over the batch), the replica applies it
//! through `Instance::apply_batch` (locks and metadata overhead paid once),
//! and the primary fans ONE `ReplicateBatch` per backup instead of one
//! message per key.
//!
//! Two effects stack:
//!
//! * **Completion time** — per-op driving pays a full client↔replica round
//!   trip (plus a replication round trip for every put) per key; batches
//!   pay those once per round.
//! * **Wire bytes** — every message costs a modeled 64-byte header; with
//!   32-byte values the header dominates, so coalescing shrinks total
//!   bytes on the wire, not just message count.
//!
//! Shape check: batch 64 must cut BOTH modeled completion time and total
//! wire bytes at least 2× vs per-op driving.

use serde::Serialize;
use std::sync::Arc;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera_net::Region;
use wiera_sim::{MetricsRegistry, SimDuration, SimRng};
use wiera_workload::{ClientDriver, Ledger, WorkloadSpec};

const SCALE: f64 = 2000.0;
/// Small values make the fixed 64-byte wire header the dominant cost, the
/// regime where coalescing matters most (metadata-heavy workloads).
const VALUE_BYTES: usize = 32;
const KEYS: usize = 200;

#[derive(Serialize)]
struct Row {
    batch: usize,
    ops: u64,
    errors: u64,
    completion_ms: f64,
    wire_bytes: u64,
    rpcs: u64,
    mean_put_ms: f64,
    mean_get_ms: f64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    value_bytes: usize,
    ops_per_run: u64,
    rows: Vec<Row>,
}

/// Run `n_ops` of YCSB-A at one batch size on a fresh cluster; report
/// modeled completion time and the wire bytes the run generated.
fn run_at_batch(seed: u64, n_ops: u64, batch: usize) -> Row {
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], SCALE, seed);
    cluster
        .register_policy_over(
            "bulk",
            &[("US-East", true), ("US-West", false)],
            bodies::PRIMARY_BACKUP_SYNC,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances("bulk", "bulk", DeploymentConfig::default())
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "bulk-app")
        .replicas(dep.replicas())
        .build();

    let ledger = Arc::new(Ledger::new());
    let driver = ClientDriver::new(
        WorkloadSpec::ycsb_a(KEYS, VALUE_BYTES),
        ledger,
        SimDuration::ZERO,
    );
    let mut rng = SimRng::new(seed.wrapping_add(batch as u64));

    // Preload so reads hit data rather than all missing on the first round
    // (key names follow the spec's "user%08d" scheme).
    let preload: Vec<(String, bytes::Bytes)> = (0..KEYS.min(64))
        .map(|i| {
            (
                format!("user{i:08}"),
                bytes::Bytes::from(vec![0u8; VALUE_BYTES]),
            )
        })
        .collect();
    for r in client.put_batch(&preload).unwrap() {
        r.unwrap();
    }

    // Measure only the driven workload: drop setup traffic from the counters.
    wiera_bench::reset_observability();
    let t0 = cluster.clock.now();
    driver.run_batched_ops(&*client, &cluster.clock, &mut rng, n_ops, batch);
    let completion_ms = cluster.clock.now().elapsed_since(t0).as_millis_f64();
    let snap = MetricsRegistry::global().snapshot();
    let wire_bytes = snap.counter_sum("net_rpc_bytes");
    let rpcs = snap.counter_sum("net_rpc_total");

    let report = driver.report();
    cluster.shutdown();
    Row {
        batch,
        ops: report.ops,
        errors: report.errors,
        completion_ms,
        wire_bytes,
        rpcs,
        mean_put_ms: report.put_latency.mean_ms,
        mean_get_ms: report.get_latency.mean_ms,
    }
}

fn main() {
    let seed = wiera_bench::default_seed();
    let n_ops: u64 = if wiera_bench::is_smoke() { 256 } else { 1024 };

    let rows: Vec<Row> = [1usize, 8, 64, 256]
        .iter()
        .map(|&b| run_at_batch(seed, n_ops, b))
        .collect();

    wiera_bench::print_table(
        &format!(
            "Bulk throughput: YCSB-A, {VALUE_BYTES} B values, {n_ops} ops, PB-sync US-East→US-West"
        ),
        &[
            "Batch",
            "Completion (ms)",
            "Wire bytes",
            "RPCs",
            "Put (ms)",
            "Get (ms)",
            "Errors",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.batch.to_string(),
                    format!("{:.1}", r.completion_ms),
                    r.wire_bytes.to_string(),
                    r.rpcs.to_string(),
                    format!("{:.2}", r.mean_put_ms),
                    format!("{:.2}", r.mean_get_ms),
                    r.errors.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let by = |b: usize| rows.iter().find(|r| r.batch == b).unwrap();
    for r in &rows {
        assert_eq!(r.ops, n_ops, "batch {} must drive every op", r.batch);
        assert_eq!(r.errors, 0, "batch {} saw errors", r.batch);
    }
    assert!(
        by(64).completion_ms * 2.0 <= by(1).completion_ms,
        "batch 64 must cut completion time ≥2×: {} vs {}",
        by(64).completion_ms,
        by(1).completion_ms
    );
    assert!(
        by(64).wire_bytes * 2 <= by(1).wire_bytes,
        "batch 64 must cut wire bytes ≥2×: {} vs {}",
        by(64).wire_bytes,
        by(1).wire_bytes
    );
    assert!(
        by(64).rpcs < by(1).rpcs,
        "batching must collapse message count"
    );

    println!("\nshape-check: batch 64 cuts completion time and wire bytes ≥2× vs per-op  [OK]");
    let record = Record {
        experiment: "bulk_throughput",
        value_bytes: VALUE_BYTES,
        ops_per_run: n_ops,
        rows,
    };
    // Canonical name for the run_all gate, plus the bench_-prefixed alias
    // the evaluation docs reference.
    wiera_bench::emit("bulk_throughput", &record);
    wiera_bench::emit("bench_bulk_throughput", &record);
    wiera_bench::emit_metrics("bulk_throughput");
}
