//! Fig. 9: operation latencies for 4 KB objects against each storage tier
//! within US-East, as seen through a Tiera instance.
//!
//! The paper's ordering: EBS-SSD fastest (of the durable tiers), EBS-HDD in
//! between, S3 worst, S3-IA slightly worse than S3 — and "<1 ms regardless
//! of EBS type" when the OS page cache is warm (they throttle memory to
//! defeat it; we run both configurations).

use bytes::Bytes;
use serde::Serialize;
use std::sync::Arc;
use tiera::{InstanceConfig, TieraInstance};
use wiera_net::Region;
use wiera_sim::{ManualClock, SimRng, Summary};

#[derive(Serialize)]
struct TierResult {
    tier: String,
    page_cache: bool,
    get: Summary,
    put: Summary,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    object_bytes: usize,
    samples: usize,
    tiers: Vec<TierResult>,
}

const OBJ: usize = 4096;
const SAMPLES: usize = 300;

fn measure(kind: &str, page_cache: bool, seed: u64) -> TierResult {
    let clock = ManualClock::new();
    let cfg =
        InstanceConfig::new(format!("fig9-{kind}"), Region::UsEast).with_tier("tier1", kind, 0);
    let inst: Arc<TieraInstance> = TieraInstance::build(cfg, clock).unwrap();
    // "Enough memory on EC2" → EBS reads hit the OS page cache; the paper
    // throttles memory (O_DIRECT-style) to measure the native device.
    inst.tier("tier1")
        .unwrap()
        .as_local()
        .unwrap()
        .set_page_cache(page_cache);

    let mut rng = SimRng::new(seed);
    let mut get = wiera_sim::Histogram::new();
    let mut put = wiera_sim::Histogram::new();
    let mut buf = vec![0u8; OBJ];
    for i in 0..SAMPLES {
        rng.fill(&mut buf);
        let key = format!("obj-{i}");
        let p = inst.put(&key, Bytes::from(buf.clone())).unwrap();
        put.record(p.latency);
        let g = inst.get(&key).unwrap();
        get.record(g.latency);
    }
    TierResult {
        tier: kind.to_string(),
        page_cache,
        get: get.summary(),
        put: put.summary(),
    }
}

fn main() {
    wiera_bench::reset_observability();
    let seed = wiera_bench::default_seed();
    let mut tiers = Vec::new();
    for kind in ["Memcached", "EBS-SSD", "EBS-HDD", "S3", "S3-IA"] {
        tiers.push(measure(kind, false, seed));
    }
    // The paper's "<1ms regardless of EBS type if there is enough memory".
    tiers.push(measure("EBS-SSD", true, seed));
    tiers.push(measure("EBS-HDD", true, seed));

    let rows: Vec<Vec<String>> = tiers
        .iter()
        .map(|t| {
            vec![
                format!("{}{}", t.tier, if t.page_cache { " (+cache)" } else { "" }),
                format!("{:.2}", t.get.mean_ms),
                format!("{:.2}", t.get.p95_ms),
                format!("{:.2}", t.put.mean_ms),
                format!("{:.2}", t.put.p95_ms),
            ]
        })
        .collect();
    wiera_bench::print_table(
        "Fig. 9: 4KB operation latency per tier, US-East (ms)",
        &["Tier", "Get mean", "Get p95", "Put mean", "Put p95"],
        &rows,
    );

    let record = Record {
        experiment: "fig9",
        object_bytes: OBJ,
        samples: SAMPLES,
        tiers,
    };
    // Shape checks mirroring the paper's claims.
    let mean = |name: &str, cached: bool| {
        record
            .tiers
            .iter()
            .find(|t| t.tier == name && t.page_cache == cached)
            .map(|t| t.get.mean_ms)
            .unwrap()
    };
    assert!(mean("EBS-SSD", false) < mean("EBS-HDD", false));
    assert!(mean("EBS-HDD", false) < mean("S3", false));
    assert!(mean("S3", false) <= mean("S3-IA", false) * 1.1);
    assert!(mean("EBS-SSD", true) < 1.0 && mean("EBS-HDD", true) < 1.0);
    println!("\nshape-check: SSD < HDD < S3 <= S3-IA; cached EBS <1ms  [OK]");

    wiera_bench::emit("fig9_tier_latency", &record);
    wiera_bench::emit_metrics("fig9_tier_latency");
}
