//! Cluster harness: one call to stand up the whole paper deployment —
//! fabric, coordination service, Wiera controller, and a Tiera server per
//! region — used by integration tests, examples, and the benchmark
//! harnesses that regenerate the paper's figures.

use crate::controller::{ControllerConfig, WieraController};
use crate::msg::DataMsg;
use crate::replica::ReplicaNode;
use crate::server::{CoordAccess, TieraServer};
use std::collections::HashMap;
use std::sync::Arc;
use wiera_coord::{CoordConfig, CoordMsg, CoordService};
use wiera_net::{Fabric, Mesh, NodeId, Region};
use wiera_sim::{ScaledClock, SharedClock};

/// A running multi-region cluster.
pub struct Cluster {
    pub fabric: Arc<Fabric>,
    pub clock: SharedClock,
    pub data_mesh: Arc<Mesh<DataMsg>>,
    pub coord_mesh: Arc<Mesh<CoordMsg>>,
    pub coord: Arc<CoordService>,
    pub controller: Arc<WieraController>,
    pub servers: HashMap<Region, Arc<TieraServer>>,
}

impl Cluster {
    /// Launch with defaults: controller + ZooKeeper stand-in in US-East
    /// (like the paper), one Tiera server per listed region.
    pub fn launch(regions: &[Region], time_scale: f64, seed: u64) -> Cluster {
        Self::launch_with(regions, time_scale, seed, ControllerConfig::default())
    }

    pub fn launch_with(
        regions: &[Region],
        time_scale: f64,
        seed: u64,
        controller_config: ControllerConfig,
    ) -> Cluster {
        Self::launch_full(
            regions,
            time_scale,
            seed,
            controller_config,
            CoordConfig::default(),
        )
    }

    /// Like [`Cluster::launch_with`] but with an explicit coordination
    /// config — e.g. a session timeout widened for heavily loaded hosts
    /// where heartbeat threads can stall for many wall milliseconds.
    pub fn launch_full(
        regions: &[Region],
        time_scale: f64,
        seed: u64,
        controller_config: ControllerConfig,
        coord_config: CoordConfig,
    ) -> Cluster {
        let fabric = Arc::new(Fabric::multicloud(seed));
        let clock: SharedClock = ScaledClock::shared(time_scale);
        let data_mesh = Mesh::new(fabric.clone(), clock.clone());
        let coord_mesh = Mesh::new(fabric.clone(), clock.clone());

        // Coordination service co-located with the controller (§5: "Zookeeper
        // is also running with Wiera on the same instance").
        let coord = CoordService::spawn(
            coord_mesh.clone(),
            NodeId::new(controller_config.region, "zk"),
            coord_config.clone(),
        )
        .unwrap_or_else(|e| panic!("coordination service spawn: {e}"));
        let controller = WieraController::launch(data_mesh.clone(), controller_config)
            .unwrap_or_else(|e| panic!("controller launch: {e}"));
        controller
            .register_canned_policies()
            .unwrap_or_else(|e| panic!("canned policies: {e}"));

        let coord_access = Arc::new(CoordAccess {
            mesh: coord_mesh.clone(),
            service: coord.node.clone(),
            config: coord_config,
        });
        let mut servers = HashMap::new();
        for &region in regions {
            let server = TieraServer::launch(
                data_mesh.clone(),
                region,
                controller.node.clone(),
                Some(coord_access.clone()),
            )
            .unwrap_or_else(|e| panic!("tiera server launch in {region}: {e}"));
            servers.insert(region, server);
        }
        Cluster {
            fabric,
            clock,
            data_mesh,
            coord_mesh,
            coord,
            controller,
            servers,
        }
    }

    /// In-process handle to a replica (white-box observability).
    pub fn replica(&self, name: &str) -> Option<Arc<ReplicaNode>> {
        for server in self.servers.values() {
            if let Some(r) = server.replica(name) {
                return Some(r);
            }
        }
        None
    }

    /// All replica handles of a deployment, looked up via the controller.
    pub fn deployment_replicas(&self, deployment_id: &str) -> Vec<Arc<ReplicaNode>> {
        let Some(nodes) = self.controller.get_instances(deployment_id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for node in nodes {
            for server in self.servers.values() {
                for name in server.replica_names() {
                    if let Some(r) = server.replica(&name) {
                        if r.node == node {
                            out.push(r.clone());
                        }
                    }
                }
            }
        }
        out
    }

    pub fn shutdown(&self) {
        for server in self.servers.values() {
            server.stop();
        }
        self.controller.stop();
        self.coord.stop();
        self.data_mesh.shutdown();
        self.coord_mesh.shutdown();
    }

    /// Register a policy combining one of the canned consistency bodies
    /// (or any custom body) with an explicit region list — experiments
    /// often need the paper's policy shape over a different set of sites.
    pub fn register_policy_over(
        &self,
        id: &str,
        regions: &[(&str, bool)],
        body: &str,
    ) -> Result<(), String> {
        let mut src = format!("Wiera {}() {{\n", id.replace('-', "_"));
        for (i, (region, primary)) in regions.iter().enumerate() {
            let primary_attr = if *primary { ", primary:True" } else { "" };
            src.push_str(&format!(
                "  Region{n} = {{name:LowLatencyInstance, region:{region}{primary_attr},\n    \
                 tier1 = {{name:LocalMemory, size=5G}},\n    \
                 tier2 = {{name:LocalDisk, size=5G}} }}\n",
                n = i + 1,
            ));
        }
        src.push_str(body);
        src.push_str("\n}\n");
        self.controller.register_policy(id, &src)
    }
}

/// Consistency-protocol bodies in the policy language, for use with
/// [`Cluster::register_policy_over`].
pub mod bodies {
    /// Fig. 3(a) without the region list.
    pub const MULTI_PRIMARIES: &str = "
  event(insert.into) : response {
      lock(what:insert.key)
      store(what:insert.object, to:local_instance)
      copy(what:insert.object, to:all_regions)
      release(what:insert.key)
  }";

    /// Fig. 4 without the region list.
    pub const EVENTUAL: &str = "
  event(insert.into) : response {
      store(what:insert.object, to:local_instance)
      queue(what:insert.object, to:all_regions)
  }";

    /// Fig. 3(b) without the region list (synchronous propagation).
    pub const PRIMARY_BACKUP_SYNC: &str = "
  event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
         copy(what:insert.object, to:all_regions)
      else
         forward(what:insert.object, to:primary_instance)
  }";

    /// Fig. 3(b) with `queue` propagation (the §5.2 configuration).
    pub const PRIMARY_BACKUP_ASYNC: &str = "
  event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
         queue(what:insert.object, to:all_regions)
      else
         forward(what:insert.object, to:primary_instance)
  }";
}
