//! The Wiera controller process: WUI + Global Policy Manager + Tiera Server
//! Manager (paper Fig. 2), co-located with the coordination service in
//! US-East exactly as the evaluation deploys it.

use crate::deployment::{DeploymentConfig, WieraDeployment};
use crate::msg::{ChangeRequest, DataMsg, FailCode, ReplicaSpec};
use crate::resolve_region;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wiera_net::{Delivery, Mesh, NodeId, Region};
use wiera_policy::{compile, parse, CompiledPolicy, ConsistencyModel};
use wiera_sim::lockreg::{TrackedMutex, TrackedRwLock};
use wiera_sim::{MetricsRegistry, SimDuration, SimInstant, Tracer};

const CTRL_TIMEOUT: SimDuration = SimDuration::from_secs(120);

/// Controller tunables.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Where the Wiera process runs (the paper: US-East).
    pub region: Region,
    /// TSM heartbeat period.
    pub heartbeat: SimDuration,
    /// A server missing heartbeats for this long is dead.
    pub server_timeout: SimDuration,
    /// Period of the replica-repair scan (§4.4). `None` disables it.
    pub repair_interval: Option<SimDuration>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            region: Region::UsEast,
            heartbeat: SimDuration::from_secs(5),
            server_timeout: SimDuration::from_secs(15),
            repair_interval: None,
        }
    }
}

struct ServerInfo {
    node: NodeId,
    last_seen: SimInstant,
    alive: bool,
}

struct DeploymentEntry {
    deployment: Arc<WieraDeployment>,
    config: DeploymentConfig,
}

/// The running controller.
pub struct WieraController {
    pub node: NodeId,
    mesh: Arc<Mesh<DataMsg>>,
    config: ControllerConfig,
    /// GPM: registered policies by id.
    policies: TrackedRwLock<HashMap<String, CompiledPolicy>>,
    /// TSM: known Tiera servers by region.
    servers: TrackedMutex<HashMap<Region, ServerInfo>>,
    deployments: TrackedRwLock<HashMap<String, DeploymentEntry>>,
    stop: Arc<AtomicBool>,
}

impl WieraController {
    /// Start the controller: register on the mesh, start the handler and
    /// the TSM heartbeat/repair threads. Thread-spawn failures are returned
    /// instead of panicking so embedders can surface them.
    pub fn launch(mesh: Arc<Mesh<DataMsg>>, config: ControllerConfig) -> Result<Arc<Self>, String> {
        let node = NodeId::new(config.region, "wiera");
        let inbox = mesh.register(node.clone());
        let stop = Arc::new(AtomicBool::new(false));
        let ctrl = Arc::new(WieraController {
            node,
            mesh,
            config,
            policies: TrackedRwLock::new("ctrl.policies", HashMap::new()),
            servers: TrackedMutex::new("ctrl.servers", HashMap::new()),
            deployments: TrackedRwLock::new("ctrl.deployments", HashMap::new()),
            stop: stop.clone(),
        });

        {
            let c = ctrl.clone();
            std::thread::Builder::new()
                .name("wiera-controller".into())
                .spawn(move || {
                    while !c.stop.load(Ordering::Acquire) {
                        match inbox.recv_timeout(std::time::Duration::from_millis(50)) {
                            Ok(d) => c.handle(d),
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        }
                    }
                })
                .map_err(|e| format!("cannot spawn controller thread: {e}"))?;
        }
        {
            // TSM heartbeat thread: "periodically sends a ping message to
            // check on their health" (§4.1).
            let c = ctrl.clone();
            std::thread::Builder::new()
                .name("wiera-tsm-heartbeat".into())
                .spawn(move || {
                    while !c.stop.load(Ordering::Acquire) {
                        c.mesh.clock.sleep(c.config.heartbeat);
                        if c.stop.load(Ordering::Acquire) {
                            return;
                        }
                        c.heartbeat_servers();
                    }
                })
                .map_err(|e| format!("cannot spawn TSM heartbeat thread: {e}"))?;
        }
        if let Some(interval) = ctrl.config.repair_interval {
            let c = ctrl.clone();
            std::thread::Builder::new()
                .name("wiera-repair".into())
                .spawn(move || {
                    while !c.stop.load(Ordering::Acquire) {
                        c.mesh.clock.sleep(interval);
                        if c.stop.load(Ordering::Acquire) {
                            return;
                        }
                        c.repair_deployments();
                    }
                })
                .map_err(|e| format!("cannot spawn repair thread: {e}"))?;
        }
        Ok(ctrl)
    }

    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.mesh.unregister(&self.node);
    }

    // ---- GPM ---------------------------------------------------------------

    /// Register a policy by id from source text (GPM "creates a new policy
    /// with a policy id sent from the application").
    pub fn register_policy(&self, id: &str, source: &str) -> Result<(), String> {
        let spec = parse(source).map_err(|e| e.to_string())?;
        let compiled = compile(&spec).map_err(|e| e.to_string())?;
        self.policies.write().insert(id.to_string(), compiled);
        Ok(())
    }

    /// Register every canned paper policy under its id. The canned corpus
    /// is lint-gated in CI, so a rejection here means a build skew between
    /// wiera-policy and this crate — reported, not panicked.
    pub fn register_canned_policies(&self) -> Result<(), String> {
        for (id, _, src) in wiera_policy::canned::ALL {
            self.register_policy(id, src)
                .map_err(|e| format!("canned policy '{id}' rejected: {e}"))?;
        }
        Ok(())
    }

    pub fn policy(&self, id: &str) -> Option<CompiledPolicy> {
        self.policies.read().get(id).cloned()
    }

    // ---- TSM ---------------------------------------------------------------

    pub fn known_servers(&self) -> Vec<(Region, bool)> {
        self.servers
            .lock()
            .values()
            .map(|s| (s.node.region, s.alive))
            .collect()
    }

    fn server_for(&self, region: Region) -> Option<NodeId> {
        self.servers
            .lock()
            .get(&region)
            .filter(|s| s.alive)
            .map(|s| s.node.clone())
    }

    fn alive_spare_server(&self, used: &[Region]) -> Option<NodeId> {
        // Deterministic choice: lowest region index among live servers not
        // already hosting (or having hosted) a replica of the deployment.
        self.servers
            .lock()
            .values()
            .filter(|s| s.alive && !used.contains(&s.node.region))
            .min_by_key(|s| s.node.region.index())
            .map(|s| s.node.clone())
    }

    fn heartbeat_servers(&self) {
        let targets: Vec<NodeId> = self
            .servers
            .lock()
            .values()
            .map(|s| s.node.clone())
            .collect();
        for t in targets {
            let ok = self
                .mesh
                .rpc(
                    &self.node,
                    &t,
                    DataMsg::Ping,
                    64,
                    SimDuration::from_secs(10),
                )
                .is_ok_and(|r| matches!(r.msg, DataMsg::Pong));
            let now = self.mesh.clock.now();
            let mut servers = self.servers.lock();
            if let Some(info) = servers.get_mut(&t.region) {
                if ok {
                    info.last_seen = now;
                    info.alive = true;
                } else if now.elapsed_since(info.last_seen) > self.config.server_timeout {
                    info.alive = false;
                }
            }
        }
    }

    // ---- WUI (Table 1) -----------------------------------------------------

    /// `startInstances(wiera_instance_id, policy)`: launch Tiera instances
    /// in every region the policy names, wire them together, and return the
    /// deployment handle.
    pub fn start_instances(
        self: &Arc<Self>,
        instance_id: &str,
        policy_id: &str,
        config: DeploymentConfig,
    ) -> Result<Arc<WieraDeployment>, String> {
        let policy = self
            .policy(policy_id)
            .ok_or_else(|| format!("unknown policy '{policy_id}'"))?;
        if self.deployments.read().contains_key(instance_id) {
            return Err(format!("instance id '{instance_id}' already running"));
        }
        let consistency = WieraDeployment::policy_consistency(&policy);
        let needs_coord = matches!(consistency, ConsistencyModel::MultiPrimaries)
            || config.monitors.latency.is_some();

        let mut replicas: Vec<NodeId> = Vec::new();
        let mut primary: Option<NodeId> = None;
        let mut template: Option<ReplicaSpec> = None;

        for region_layout in &policy.regions {
            let region = resolve_region(&region_layout.region_name)
                .ok_or_else(|| format!("unknown region '{}'", region_layout.region_name))?;
            let server = self
                .server_for(region)
                .ok_or_else(|| format!("no live Tiera server in {region}"))?;
            let spec = ReplicaSpec {
                deployment: instance_id.to_string(),
                name: region_layout.label.clone(),
                consistency,
                flush_ms: config.flush_ms,
                tiers: region_layout.instance.tiers.clone(),
                rules: policy.rules.clone(),
                max_versions: config.max_versions,
                monitors: config.monitors.clone(),
                needs_coord,
                shard_group: config.shard_group,
                service_time_ms: config.service_time_ms,
                overload: config.overload,
            };
            if template.is_none() {
                template = Some(spec.clone());
            }
            let msg = DataMsg::SpawnReplica { spec };
            let bytes = msg.wire_bytes();
            let reply = self
                .mesh
                .rpc(&self.node, &server, msg, bytes, CTRL_TIMEOUT)
                .map_err(|e| format!("spawn rpc: {e}"))?;
            match reply.msg {
                DataMsg::Spawned { node } => {
                    if region_layout.primary {
                        primary = Some(node.clone());
                    }
                    replicas.push(node);
                }
                DataMsg::Fail { why, .. } => return Err(format!("spawn failed: {why}")),
                other => return Err(format!("bad spawn reply {other:?}")),
            }
        }
        if replicas.is_empty() {
            return Err("policy declares no regions".into());
        }
        // Primary-backup without an explicit primary: first region.
        if primary.is_none() && matches!(consistency, ConsistencyModel::PrimaryBackup { .. }) {
            primary = replicas.first().cloned();
        }

        let deployment = WieraDeployment::new(
            instance_id.to_string(),
            self.mesh.clone(),
            self.node.clone(),
            replicas,
            primary,
            consistency,
            match template {
                Some(t) => t,
                None => return Err("policy declares no regions".into()),
            },
        );
        // §4.1 step 6: propagate membership to all instances.
        deployment.push_membership();
        self.deployments.write().insert(
            instance_id.to_string(),
            DeploymentEntry {
                deployment: deployment.clone(),
                config,
            },
        );
        Ok(deployment)
    }

    /// `stopInstances(wiera_instance_id)`.
    pub fn stop_instances(&self, instance_id: &str) -> Result<(), String> {
        let entry = self
            .deployments
            .write()
            .remove(instance_id)
            .ok_or_else(|| format!("unknown instance id '{instance_id}'"))?;
        entry.deployment.stop_all();
        Ok(())
    }

    /// `getInstances(wiera_instance_id)`: the instance list, which §4.1
    /// step 8 says applications use to pick the closest one.
    pub fn get_instances(&self, instance_id: &str) -> Option<Vec<NodeId>> {
        self.deployments
            .read()
            .get(instance_id)
            .map(|e| e.deployment.replicas())
    }

    pub fn deployment(&self, instance_id: &str) -> Option<Arc<WieraDeployment>> {
        self.deployments
            .read()
            .get(instance_id)
            .map(|e| e.deployment.clone())
    }

    // ---- message handling ----------------------------------------------------

    fn handle(self: &Arc<Self>, d: Delivery<DataMsg>) {
        match d.msg {
            DataMsg::ServerHello { region } => {
                let now = self.mesh.clock.now();
                self.servers.lock().insert(
                    region,
                    ServerInfo {
                        node: d.from.clone(),
                        last_seen: now,
                        alive: true,
                    },
                );
                if let Some(slot) = d.reply {
                    slot.reply(DataMsg::Ok, SimDuration::from_micros(300), 64);
                }
            }
            DataMsg::RequestChange { deployment, change } => {
                // Monitor escalation: apply on a worker so the controller
                // keeps serving heartbeats during the (blocking) switch. The
                // reply slot lives in a shared cell so a failed spawn can
                // still answer the RPC with a Fail instead of timing out.
                let c = self.clone();
                let slot_cell = Arc::new(Mutex::new(d.reply));
                let worker_cell = slot_cell.clone();
                let spawned = std::thread::Builder::new()
                    .name("wiera-change".into())
                    .spawn(move || {
                        let applied = c.apply_change(&deployment, change);
                        if let Some(slot) = worker_cell.lock().take() {
                            let msg = if applied {
                                DataMsg::Ok
                            } else {
                                DataMsg::Fail {
                                    code: FailCode::Internal,
                                    why: "change not applied".into(),
                                }
                            };
                            let bytes = msg.wire_bytes();
                            slot.reply(msg, SimDuration::from_millis(1), bytes);
                        }
                    });
                if let Err(e) = spawned {
                    MetricsRegistry::global().inc("controller_worker_spawn_errors", &[]);
                    if let Some(slot) = slot_cell.lock().take() {
                        let msg = DataMsg::Fail {
                            code: FailCode::Internal,
                            why: format!("cannot spawn change worker: {e}"),
                        };
                        let bytes = msg.wire_bytes();
                        slot.reply(msg, SimDuration::from_millis(1), bytes);
                    }
                }
            }
            DataMsg::Ping => {
                if let Some(slot) = d.reply {
                    slot.reply(DataMsg::Pong, SimDuration::from_micros(100), 64);
                }
            }
            other => {
                if let Some(slot) = d.reply {
                    let msg = DataMsg::Fail {
                        code: FailCode::Internal,
                        why: format!("controller got {other:?}"),
                    };
                    let bytes = msg.wire_bytes();
                    slot.reply(msg, SimDuration::ZERO, bytes);
                }
            }
        }
    }

    fn apply_change(&self, deployment_id: &str, change: ChangeRequest) -> bool {
        let Some(dep) = self.deployment(deployment_id) else {
            return false;
        };
        match change {
            ChangeRequest::Consistency(to) => {
                if dep.consistency() == to {
                    return false;
                }
                MetricsRegistry::global()
                    .inc("controller_change_requests", &[("kind", "consistency")]);
                dep.change_consistency(to);
                true
            }
            ChangeRequest::Primary(node) => {
                if dep.primary().as_ref() == Some(&node) {
                    return false;
                }
                MetricsRegistry::global().inc("controller_change_requests", &[("kind", "primary")]);
                Tracer::global().point(
                    self.mesh.clock.now(),
                    "wiera",
                    "change_primary",
                    Some(format!("{deployment_id} -> {}", node.name)),
                );
                dep.change_primary(node);
                true
            }
        }
    }

    // ---- repair (§4.4) -------------------------------------------------------

    fn repair_deployments(self: &Arc<Self>) {
        let deployments: Vec<(Arc<WieraDeployment>, DeploymentConfig)> = self
            .deployments
            .read()
            .values()
            .map(|e| (e.deployment.clone(), e.config.clone()))
            .collect();
        for (dep, cfg) in deployments {
            let Some(min) = cfg.min_replicas else {
                continue;
            };
            let replicas = dep.replicas();
            let mut alive = Vec::new();
            let mut dead = Vec::new();
            for r in &replicas {
                let ok = self
                    .mesh
                    .rpc(&self.node, r, DataMsg::Ping, 64, SimDuration::from_secs(10))
                    .is_ok_and(|r| matches!(r.msg, DataMsg::Pong));
                if ok {
                    alive.push(r.clone());
                } else {
                    dead.push(r.clone());
                }
            }
            if alive.len() >= min || dead.is_empty() {
                continue;
            }
            let Some(donor) = alive.first().cloned() else {
                continue;
            };
            // Avoid both the surviving replicas' regions and the crashed
            // ones (the dead instance's region may be the failure domain).
            let used: Vec<Region> = replicas.iter().map(|r| r.region).collect();
            let Some(spare) = self.alive_spare_server(&used) else {
                continue;
            };

            // Spawn a fresh replica on the spare server.
            let mut spec = dep.spec_template.clone();
            spec.name = format!("repair-{}", dep.epoch());
            let msg = DataMsg::SpawnReplica { spec };
            let bytes = msg.wire_bytes();
            let Ok(reply) = self.mesh.rpc(&self.node, &spare, msg, bytes, CTRL_TIMEOUT) else {
                continue;
            };
            let DataMsg::Spawned { node: fresh } = reply.msg else {
                continue;
            };

            // Clone state from a live donor into the fresh replica.
            if let Ok(sync) =
                self.mesh
                    .rpc(&self.node, &donor, DataMsg::SyncRequest, 64, CTRL_TIMEOUT)
            {
                if let DataMsg::SyncReply { objects } = sync.msg {
                    let msg = DataMsg::LoadState { objects };
                    let bytes = msg.wire_bytes();
                    let _ = self.mesh.rpc(&self.node, &fresh, msg, bytes, CTRL_TIMEOUT);
                }
            }
            for d in dead {
                dep.replace_replica(&d, fresh.clone());
            }
        }
    }
}
