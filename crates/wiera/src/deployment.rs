//! A launched Wiera instance: the Tiera Instance Manager's view of one
//! deployment spanning several replicas.
//!
//! The deployment executes the global control operations: installing peer
//! lists (§4.1 step 6), run-time consistency switches (§3.3.2) and primary
//! migration (Fig. 5(b)) — all over the wire, since the controller never
//! touches the data path.

use crate::client::WieraClient;
use crate::msg::{DataMsg, DetectorSpec, LatencySpec, MonitorSpec, ReplicaSpec, RequestsSpec};
use crate::replica::{app_rpc, AppError, OpView};
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wiera_net::{Mesh, NodeId, Region};
use wiera_policy::{CompiledPolicy, ConsistencyModel};
use wiera_sim::lockreg::{TrackedMutex, TrackedRwLock};
use wiera_sim::SimDuration;

const CTRL_TIMEOUT: SimDuration = SimDuration::from_secs(120);

/// Options governing how a policy becomes a running deployment.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Queue distribution period (ms) for asynchronous propagation.
    pub flush_ms: f64,
    /// Monitor threads to run on each replica.
    pub monitors: MonitorSpec,
    pub max_versions: Option<usize>,
    /// Keep at least this many live replicas (§4.4 repair). `None` disables
    /// automatic repair.
    pub min_replicas: Option<usize>,
    /// Fleet shard group this deployment serves, if it is one group of a
    /// sharded fleet ([`crate::fleet::WieraFleet`] sets this per group).
    pub shard_group: Option<u32>,
    /// Modeled per-op service time at each replica, ms. See
    /// [`ReplicaSpec::service_time_ms`].
    pub service_time_ms: Option<f64>,
    /// CoDel-style load shedding over each replica's admission queue. See
    /// [`ReplicaSpec::overload`]; `None` (the default) never sheds.
    pub overload: Option<crate::msg::OverloadSpec>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            flush_ms: 500.0,
            monitors: MonitorSpec::default(),
            max_versions: None,
            min_replicas: None,
            shard_group: None,
            service_time_ms: None,
            overload: None,
        }
    }
}

impl DeploymentConfig {
    /// The paper's Fig. 5(a) dynamic-consistency monitor: 800 ms / 30 s.
    pub fn with_dynamic_consistency(mut self, threshold_ms: f64, period_ms: f64) -> Self {
        self.monitors.latency = Some(LatencySpec {
            threshold_ms,
            period_ms,
            check_every_ms: (period_ms / 10.0).max(500.0),
            weak: ConsistencyModel::Eventual,
            strong: ConsistencyModel::MultiPrimaries,
        });
        self
    }

    /// The paper's Fig. 5(b) change-primary monitor.
    pub fn with_change_primary(mut self, window_ms: f64, check_every_ms: f64) -> Self {
        self.monitors.requests = Some(RequestsSpec {
            window_ms,
            check_every_ms,
        });
        self
    }

    /// Failure detection + automatic failover (§4.4): each backup watches
    /// the primary's coord lease and probes it through the fabric; after
    /// `suspect_after_ms` of combined silence the backups race the election
    /// lock and the winner takes over at a bumped epoch.
    pub fn with_failure_detection(mut self, check_every_ms: f64, suspect_after_ms: f64) -> Self {
        self.monitors.detector = Some(DetectorSpec {
            check_every_ms,
            suspect_after_ms,
        });
        self
    }
}

/// Handle to a running deployment.
pub struct WieraDeployment {
    pub id: String,
    mesh: Arc<Mesh<DataMsg>>,
    /// The controller's address, used as the from-node of control RPCs.
    from: NodeId,
    replicas: TrackedRwLock<Vec<NodeId>>,
    primary: TrackedRwLock<Option<NodeId>>,
    consistency: TrackedRwLock<ConsistencyModel>,
    epoch: AtomicU64,
    /// Per-origin client handles for `put_from`/`get_from`, so both paths
    /// share the client layer's closest-first failover policy. Refreshed on
    /// membership changes.
    clients: TrackedMutex<HashMap<NodeId, Arc<WieraClient>>>,
    /// The spec each replica was spawned with (for repair re-spawns).
    pub(crate) spec_template: ReplicaSpec,
}

impl WieraDeployment {
    pub(crate) fn new(
        id: String,
        mesh: Arc<Mesh<DataMsg>>,
        from: NodeId,
        replicas: Vec<NodeId>,
        primary: Option<NodeId>,
        consistency: ConsistencyModel,
        spec_template: ReplicaSpec,
    ) -> Arc<Self> {
        Arc::new(WieraDeployment {
            id,
            mesh,
            from,
            replicas: TrackedRwLock::new("dep.replicas", replicas),
            primary: TrackedRwLock::new("dep.primary", primary),
            consistency: TrackedRwLock::new("dep.consistency", consistency),
            epoch: AtomicU64::new(1),
            clients: TrackedMutex::new("dep.clients", HashMap::new()),
            spec_template,
        })
    }

    pub fn replicas(&self) -> Vec<NodeId> {
        self.replicas.read().clone()
    }

    pub fn primary(&self) -> Option<NodeId> {
        self.primary.read().clone()
    }

    pub fn consistency(&self) -> ConsistencyModel {
        *self.consistency.read()
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The replica in (or closest to) `region`, by base RTT.
    pub fn replica_in(&self, region: Region) -> Option<NodeId> {
        let reps = self.replicas.read();
        reps.iter()
            .min_by(|a, b| {
                let ra = self.mesh.fabric.base_rtt_ms(region, a.region);
                let rb = self.mesh.fabric.base_rtt_ms(region, b.region);
                ra.total_cmp(&rb)
            })
            .cloned()
    }

    fn broadcast_control(&self, make: impl Fn(u64) -> DataMsg + Send + Sync) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let reps = self.replicas();
        std::thread::scope(|s| {
            for rep in &reps {
                let msg = make(epoch);
                let from = self.from.clone();
                let mesh = &self.mesh;
                s.spawn(move || {
                    let bytes = msg.wire_bytes();
                    let _ = mesh.rpc(&from, rep, msg, bytes, CTRL_TIMEOUT);
                });
            }
        });
        epoch
    }

    /// Install the current membership on every replica, and refresh any
    /// cached per-origin clients so they fail over across the new list.
    pub fn push_membership(&self) {
        let reps = self.replicas();
        let primary = self.primary();
        self.broadcast_control(|epoch| DataMsg::SetPeers {
            peers: reps.clone(),
            primary: primary.clone(),
            epoch,
        });
        for client in self.clients.lock().values() {
            client.update_replicas(reps.clone());
        }
    }

    /// Switch the whole deployment's consistency model (§3.3.2): every
    /// replica drains, blocks, swaps, unblocks.
    pub fn change_consistency(&self, to: ConsistencyModel) {
        if *self.consistency.read() == to {
            return;
        }
        self.broadcast_control(|epoch| DataMsg::ChangeConsistency { to, epoch });
        *self.consistency.write() = to;
    }

    /// Move the primary (Fig. 5(b)).
    pub fn change_primary(&self, new_primary: NodeId) {
        if self.primary().as_ref() == Some(&new_primary) {
            return;
        }
        let np = new_primary.clone();
        self.broadcast_control(|epoch| DataMsg::ChangePrimary {
            new_primary: np.clone(),
            epoch,
        });
        *self.primary.write() = Some(new_primary);
    }

    /// Replace a dead replica in the membership (repair, §4.4).
    pub(crate) fn replace_replica(&self, dead: &NodeId, fresh: NodeId) {
        {
            let mut reps = self.replicas.write();
            reps.retain(|r| r != dead);
            reps.push(fresh.clone());
        }
        {
            let mut p = self.primary.write();
            if p.as_ref() == Some(dead) {
                *p = Some(fresh);
            }
        }
        self.push_membership();
    }

    /// Application operations through the deployment, addressed to a chosen
    /// replica (the client layer adds closest-first routing + failover).
    pub fn op(&self, from: &NodeId, to: &NodeId, msg: DataMsg) -> Result<OpView, AppError> {
        app_rpc(&self.mesh, from, to, msg)
    }

    /// The cached client acting on behalf of `from`: closest-first routing
    /// plus failover, identical to what an external application would get.
    fn client_for(&self, from: &NodeId) -> Arc<WieraClient> {
        let mut clients = self.clients.lock();
        clients
            .entry(from.clone())
            .or_insert_with(|| {
                WieraClient::builder(self.mesh.clone(), from.region, from.name.to_string())
                    .replicas(self.replicas())
                    .build()
            })
            .clone()
    }

    /// Convenience: put via the replica closest to `from`.
    pub fn put_from(&self, from: &NodeId, key: &str, value: Bytes) -> Result<OpView, AppError> {
        self.client_for(from).put(key, value)
    }

    /// Convenience: get via the replica closest to `from`.
    pub fn get_from(&self, from: &NodeId, key: &str) -> Result<OpView, AppError> {
        self.client_for(from).get(key)
    }

    /// Ask each replica to stop. Two passes: first every replica flushes its
    /// pending eventual-mode queue (while all its peers are still alive to
    /// receive the batches), then every replica stops. A single
    /// flush-as-you-stop pass would make the last replica flush into
    /// already-stopped peers and silently drop queued updates.
    pub fn stop_all(&self) {
        for rep in self.replicas() {
            let _ = self
                .mesh
                .rpc(&self.from, &rep, DataMsg::FlushQueue, 64, CTRL_TIMEOUT);
        }
        for rep in self.replicas() {
            let _ = self
                .mesh
                .rpc(&self.from, &rep, DataMsg::Stop, 64, CTRL_TIMEOUT);
        }
    }

    /// Compiled-policy helper: the consistency the policy's insert rule
    /// encodes, defaulting to eventual.
    pub fn policy_consistency(policy: &CompiledPolicy) -> ConsistencyModel {
        policy.consistency.unwrap_or(ConsistencyModel::Eventual)
    }
}
