//! Data-placement advisor — the paper's future work, §3.1: "Based on this
//! aggregated information, a data placement manager could generate a
//! dynamic global policy automatically. In this paper we focus on defining
//! different policies, and such automated policy generation is left as
//! future work."
//!
//! This module implements that generation step as a small optimizer:
//!
//! * **Inputs** — what the paper's network and workload monitors aggregate:
//!   per-region request rates (puts/gets), typical object size, the live
//!   RTT matrix from the fabric, and the tier price book.
//! * **Search** — enumerate candidate configurations: primary region ×
//!   replica set (subsets of the regions hosting servers, always covering
//!   the primary) × consistency model.
//! * **Objective** — a weighted sum of expected get latency, expected put
//!   latency, and monthly cost (storage + inter-DC update egress), with
//!   weights expressing the application's desired metric (§3.3.3).
//! * **Output** — a [`PlacementAdvice`] carrying the chosen configuration,
//!   its estimated metrics, and a ready-to-register policy generated with
//!   [`wiera_policy::builder::PolicyBuilder`].

use wiera_net::{Fabric, Region};
use wiera_policy::builder::PolicyBuilder;
use wiera_policy::{ConsistencyModel, PolicySpec};
use wiera_tiers::{CostSpec, TierKind};

/// Aggregated observations for one region (what the workload monitor sees).
#[derive(Debug, Clone, Copy)]
pub struct RegionLoad {
    pub region: Region,
    /// Application puts per second originating here.
    pub puts_per_sec: f64,
    /// Application gets per second originating here.
    pub gets_per_sec: f64,
}

/// What the application wants optimized (the §3.3.3 "desired metrics").
#[derive(Debug, Clone, Copy)]
pub struct MetricWeights {
    /// Dollar-per-millisecond weight on mean get latency.
    pub get_latency: f64,
    /// Dollar-per-millisecond weight on mean put latency.
    pub put_latency: f64,
    /// Weight on monthly dollars (1.0 = count cost at face value).
    pub cost: f64,
    /// Require at least this many replicas (fault tolerance floor).
    pub min_replicas: usize,
    /// Require strong consistency (e.g. the paper's banking example).
    pub require_strong: bool,
}

impl Default for MetricWeights {
    fn default() -> Self {
        MetricWeights {
            get_latency: 1.0,
            put_latency: 0.5,
            cost: 1.0,
            min_replicas: 1,
            require_strong: false,
        }
    }
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct PlacementAdvice {
    pub primary: Region,
    pub replicas: Vec<Region>,
    pub consistency: ConsistencyModel,
    pub est_get_ms: f64,
    pub est_put_ms: f64,
    pub est_monthly_cost: f64,
    pub score: f64,
}

impl PlacementAdvice {
    /// Generate the policy this advice describes, in the paper's notation
    /// (via the shared builder, so it compiles and pretty-prints).
    pub fn to_policy(&self, name: &str, memory_size: &str, disk_size: &str) -> PolicySpec {
        let mut b = PolicyBuilder::wiera(name);
        for (i, &region) in self.replicas.iter().enumerate() {
            b = b.region(
                &format!("Region{}", i + 1),
                region.name(),
                region == self.primary,
                &[
                    ("tier1", "Memcached", memory_size),
                    ("tier2", "EBS-SSD", disk_size),
                ],
            );
        }
        match self.consistency {
            ConsistencyModel::MultiPrimaries => b.multi_primaries(),
            ConsistencyModel::PrimaryBackup { sync } => b.primary_backup(sync),
            ConsistencyModel::Eventual => b.eventual(),
        }
        .build()
    }
}

/// Parameters of the estimation model.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Candidate regions (those with Tiera servers available).
    pub candidate_regions: Vec<Region>,
    /// Dataset size held per replica, GB (for storage cost).
    pub dataset_gb: f64,
    /// Typical object size, bytes (for update egress cost).
    pub object_bytes: f64,
    /// Tier the dataset lives on (for pricing).
    pub tier: TierKind,
    /// Where the lock coordinator lives (multi-primaries puts pay this RTT).
    pub coordinator: Region,
}

/// Expected one-way data-path latency components, from live fabric RTTs.
fn rtt(fabric: &Fabric, a: Region, b: Region) -> f64 {
    fabric.effective_rtt(a, b).as_millis_f64()
}

/// Mean get latency: every region reads from its nearest replica.
fn est_get_ms(fabric: &Fabric, loads: &[RegionLoad], replicas: &[Region]) -> f64 {
    let total: f64 = loads.iter().map(|l| l.gets_per_sec).sum();
    if total <= 0.0 {
        return 0.0;
    }
    loads
        .iter()
        .map(|l| {
            let nearest = replicas
                .iter()
                .map(|&r| rtt(fabric, l.region, r))
                .fold(f64::INFINITY, f64::min);
            l.gets_per_sec * (nearest + 1.0) // +1ms local tier access
        })
        .sum::<f64>()
        / total
}

/// Mean put latency under a consistency model.
fn est_put_ms(
    fabric: &Fabric,
    loads: &[RegionLoad],
    replicas: &[Region],
    primary: Region,
    consistency: ConsistencyModel,
    coordinator: Region,
) -> f64 {
    let total: f64 = loads.iter().map(|l| l.puts_per_sec).sum();
    if total <= 0.0 {
        return 0.0;
    }
    loads
        .iter()
        .map(|l| {
            let per_put = match consistency {
                ConsistencyModel::MultiPrimaries => {
                    // Lock RTT to the coordinator + slowest replica RTT from
                    // the writer's nearest replica.
                    let entry = replicas
                        .iter()
                        .map(|&r| rtt(fabric, l.region, r))
                        .fold(f64::INFINITY, f64::min);
                    let nearest = replicas
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            rtt(fabric, l.region, a).total_cmp(&rtt(fabric, l.region, b))
                        })
                        .unwrap_or(primary);
                    let lock = rtt(fabric, nearest, coordinator);
                    let bcast = replicas
                        .iter()
                        .map(|&r| rtt(fabric, nearest, r))
                        .fold(0.0f64, f64::max);
                    entry + lock + bcast + 2.0
                }
                ConsistencyModel::PrimaryBackup { sync } => {
                    let fwd = rtt(fabric, l.region, primary);
                    let bcast = if sync {
                        replicas
                            .iter()
                            .map(|&r| rtt(fabric, primary, r))
                            .fold(0.0f64, f64::max)
                    } else {
                        0.0
                    };
                    fwd + bcast + 2.0
                }
                ConsistencyModel::Eventual => {
                    // Local write at the nearest replica.
                    replicas
                        .iter()
                        .map(|&r| rtt(fabric, l.region, r))
                        .fold(f64::INFINITY, f64::min)
                        + 2.0
                }
            };
            l.puts_per_sec * per_put
        })
        .sum::<f64>()
        / total
}

/// Monthly cost: per-replica storage + inter-DC replication egress.
fn est_cost(cfg: &AdvisorConfig, loads: &[RegionLoad], replicas: &[Region]) -> f64 {
    let prices = CostSpec::of(cfg.tier);
    let storage = prices.monthly_storage(cfg.dataset_gb) * replicas.len() as f64;
    let puts_per_sec: f64 = loads.iter().map(|l| l.puts_per_sec).sum();
    // Every put ships the object to every other replica once.
    let egress_gb_month = puts_per_sec
        * cfg.object_bytes
        * (replicas.len().saturating_sub(1)) as f64
        * 2_628_000.0 // seconds per month
        / 1e9;
    storage + egress_gb_month * prices.egress_inter_dc_gb
}

/// Enumerate configurations and return the best advice (and, optionally,
/// the ranked alternatives for inspection).
pub fn advise(
    fabric: &Fabric,
    loads: &[RegionLoad],
    weights: &MetricWeights,
    cfg: &AdvisorConfig,
) -> Option<PlacementAdvice> {
    let mut best: Option<PlacementAdvice> = None;
    let n = cfg.candidate_regions.len();
    if n == 0 || n > 16 {
        return None;
    }
    let consistencies: &[ConsistencyModel] = if weights.require_strong {
        &[
            ConsistencyModel::MultiPrimaries,
            ConsistencyModel::PrimaryBackup { sync: true },
        ]
    } else {
        &[
            ConsistencyModel::MultiPrimaries,
            ConsistencyModel::PrimaryBackup { sync: true },
            ConsistencyModel::PrimaryBackup { sync: false },
            ConsistencyModel::Eventual,
        ]
    };
    // All non-empty subsets of candidate regions.
    for mask in 1u32..(1 << n) {
        let replicas: Vec<Region> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| cfg.candidate_regions[i])
            .collect();
        if replicas.len() < weights.min_replicas {
            continue;
        }
        for &primary in &replicas {
            for &consistency in consistencies {
                // Non-primary protocols don't distinguish primaries; skip
                // duplicate configurations.
                if !matches!(consistency, ConsistencyModel::PrimaryBackup { .. })
                    && primary != replicas[0]
                {
                    continue;
                }
                let get_ms = est_get_ms(fabric, loads, &replicas);
                let put_ms = est_put_ms(
                    fabric,
                    loads,
                    &replicas,
                    primary,
                    consistency,
                    cfg.coordinator,
                );
                let cost = est_cost(cfg, loads, &replicas);
                let score = weights.get_latency * get_ms
                    + weights.put_latency * put_ms
                    + weights.cost * cost;
                if best.as_ref().map(|b| score < b.score).unwrap_or(true) {
                    best = Some(PlacementAdvice {
                        primary,
                        replicas: replicas.clone(),
                        consistency,
                        est_get_ms: get_ms,
                        est_put_ms: put_ms,
                        est_monthly_cost: cost,
                        score,
                    });
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_net::Fabric;

    fn fabric() -> Fabric {
        Fabric::multicloud(1).without_jitter()
    }

    fn loads(asia: f64, eu: f64, us: f64) -> Vec<RegionLoad> {
        vec![
            RegionLoad {
                region: Region::AsiaEast,
                puts_per_sec: asia * 0.05,
                gets_per_sec: asia,
            },
            RegionLoad {
                region: Region::EuWest,
                puts_per_sec: eu * 0.05,
                gets_per_sec: eu,
            },
            RegionLoad {
                region: Region::UsWest,
                puts_per_sec: us * 0.05,
                gets_per_sec: us,
            },
        ]
    }

    fn base_cfg() -> AdvisorConfig {
        AdvisorConfig {
            candidate_regions: vec![Region::AsiaEast, Region::EuWest, Region::UsWest],
            dataset_gb: 10.0,
            object_bytes: 1024.0,
            tier: TierKind::EbsSsd,
            coordinator: Region::UsEast,
        }
    }

    #[test]
    fn traffic_concentration_pulls_the_primary() {
        let f = fabric();
        // Everything happens in Asia: the advisor must put the primary (or
        // sole replica) there.
        let advice = advise(
            &f,
            &loads(100.0, 1.0, 1.0),
            &MetricWeights {
                require_strong: true,
                ..Default::default()
            },
            &base_cfg(),
        )
        .unwrap();
        assert_eq!(advice.primary, Region::AsiaEast, "{advice:?}");
    }

    #[test]
    fn latency_weight_buys_more_replicas() {
        let f = fabric();
        let spread = loads(50.0, 50.0, 50.0);
        let cheap = advise(
            &f,
            &spread,
            &MetricWeights {
                get_latency: 0.01,
                put_latency: 0.01,
                cost: 10.0,
                ..Default::default()
            },
            &base_cfg(),
        )
        .unwrap();
        let fast = advise(
            &f,
            &spread,
            &MetricWeights {
                get_latency: 10.0,
                put_latency: 1.0,
                cost: 0.01,
                ..Default::default()
            },
            &base_cfg(),
        )
        .unwrap();
        assert!(
            cheap.replicas.len() < fast.replicas.len(),
            "{cheap:?} vs {fast:?}"
        );
        assert_eq!(
            fast.replicas.len(),
            3,
            "latency-weighted: replica everywhere"
        );
        assert_eq!(cheap.replicas.len(), 1, "cost-weighted: single replica");
        assert!(fast.est_get_ms < cheap.est_get_ms);
        assert!(fast.est_monthly_cost > cheap.est_monthly_cost);
    }

    #[test]
    fn strong_requirement_excludes_eventual() {
        let f = fabric();
        let advice = advise(
            &f,
            &loads(10.0, 10.0, 10.0),
            &MetricWeights {
                require_strong: true,
                min_replicas: 2,
                ..Default::default()
            },
            &base_cfg(),
        )
        .unwrap();
        assert!(!matches!(advice.consistency, ConsistencyModel::Eventual));
        assert!(advice.replicas.len() >= 2);
    }

    #[test]
    fn min_replicas_floor_is_respected() {
        let f = fabric();
        let advice = advise(
            &f,
            &loads(10.0, 1.0, 1.0),
            &MetricWeights {
                cost: 100.0,
                min_replicas: 3,
                ..Default::default()
            },
            &base_cfg(),
        )
        .unwrap();
        assert_eq!(
            advice.replicas.len(),
            3,
            "cost pressure cannot go below the floor"
        );
    }

    #[test]
    fn advice_round_trips_into_a_deployable_policy() {
        let f = fabric();
        let advice = advise(
            &f,
            &loads(10.0, 80.0, 10.0),
            &MetricWeights {
                require_strong: true,
                min_replicas: 2,
                ..Default::default()
            },
            &base_cfg(),
        )
        .unwrap();
        let policy = advice.to_policy("AdvisedPolicy", "1G", "10G");
        let compiled = wiera_policy::compile(&policy).unwrap();
        assert_eq!(compiled.consistency, Some(advice.consistency));
        assert_eq!(compiled.regions.len(), advice.replicas.len());
        // And the generated DSL text parses.
        let printed = policy.to_string();
        assert_eq!(wiera_policy::parse(&printed).unwrap(), policy);
    }

    #[test]
    fn live_rtts_shift_the_advice() {
        // Degrade the Asia links: the advisor (reading effective RTTs, like
        // the network monitor) moves the primary toward the healthy regions
        // even though Asia has slightly more traffic.
        let f = fabric();
        let weights = MetricWeights {
            require_strong: true,
            min_replicas: 1,
            ..Default::default()
        };
        // Asia dominates the traffic, so it wins placement while healthy.
        let l = loads(80.0, 10.0, 10.0);
        let before = advise(&f, &l, &weights, &base_cfg()).unwrap();
        assert_eq!(before.primary, Region::AsiaEast);
        f.inject_node_delay(Region::AsiaEast, wiera_sim::SimDuration::from_millis(500));
        let after = advise(&f, &l, &weights, &base_cfg()).unwrap();
        assert_ne!(after.primary, Region::AsiaEast, "{after:?}");
    }
}
