#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Wiera — flexible multi-tiered geo-distributed cloud storage instances.
//!
//! This crate is the paper's primary contribution: the global layer that
//! manages data placement, replication, and consistency *across* Tiera
//! instances running in geo-distributed data centers, with first-class
//! support for run-time dynamics.
//!
//! Architecture (paper Fig. 2):
//!
//! * [`controller`] — the Wiera process: the **WUI** application API
//!   (`startInstances` / `stopInstances` / `getInstances`, Table 1), the
//!   **Global Policy Manager** registering policies by id, and the **Tiera
//!   Server Manager** tracking per-region Tiera servers by heartbeat.
//! * [`server`] — a Tiera server per region, able to spawn instance replicas
//!   on request.
//! * [`replica`] — a Tiera instance wrapped in a mesh endpoint, running the
//!   consistency protocols of §3.3.1: multi-primaries (global lock +
//!   synchronous broadcast), primary-backup (forwarding, sync or async
//!   propagation), and eventual (queued updates, last-write-wins).
//! * [`deployment`] — the Tiera Instance Manager: one launched Wiera
//!   instance spanning several replicas, supporting run-time consistency
//!   switching (drain + block + swap, §3.3.2) and primary migration.
//! * [`client`] — the application-side handle: routes to the closest
//!   replica, fails over to the next-closest on failure (§4.4).
//! * [`monitor`] — the dynamism machinery (§3.2.3/§4.3): latency
//!   monitoring (switches consistency, Fig. 5(a)/Fig. 7), request
//!   monitoring (moves the primary, Fig. 5(b)/Fig. 8), and the network
//!   monitor that estimates strong-consistency feasibility while running
//!   eventual.
//!
//! Wiera itself stays off the data path: all object bytes flow directly
//! between clients and instances, and between instances — the controller
//! only manages policies and membership, exactly as §4 describes.

pub mod advisor;
pub mod client;
pub mod controller;
pub mod deployment;
pub mod detector;
pub mod errors;
pub mod fleet;
pub mod monitor;
pub mod msg;
pub mod replica;
pub mod server;
pub mod testkit;

pub use client::{WieraClient, WieraClientBuilder};
pub use controller::{ControllerConfig, WieraController};
pub use deployment::{DeploymentConfig, WieraDeployment};
pub use errors::WieraError;
pub use fleet::{FleetConfig, FleetView, WieraFleet};
pub use msg::{DataMsg, OverloadSpec};
pub use replica::{OverloadConfig, ReplicaNode};
pub use server::TieraServer;

/// Map a policy-language region name to a fabric site.
pub fn resolve_region(name: &str) -> Option<wiera_net::Region> {
    use wiera_net::Region::*;
    Some(match name.to_ascii_lowercase().as_str() {
        "us-east" | "useast" | "us-east-1" => UsEast,
        "us-west" | "uswest" | "us-west-1" => UsWest,
        "us-west-2" | "us-west-n" => UsWest2,
        "eu-west" | "euwest" | "europe-west" => EuWest,
        "asia-east" | "asiaeast" | "asia-east-1" => AsiaEast,
        "azure-us-east" | "azureuseast" => AzureUsEast,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_net::Region;

    #[test]
    fn region_names_resolve() {
        assert_eq!(resolve_region("US-West"), Some(Region::UsWest));
        assert_eq!(resolve_region("us-east"), Some(Region::UsEast));
        assert_eq!(resolve_region("US-West-2"), Some(Region::UsWest2));
        assert_eq!(resolve_region("Asia-East"), Some(Region::AsiaEast));
        assert_eq!(resolve_region("Azure-US-East"), Some(Region::AzureUsEast));
        assert_eq!(resolve_region("mars-north"), None);
    }
}
