//! The one public error type for everything above the wire.
//!
//! Historically three types overlapped: `AppError` (client/replica ops),
//! the workload driver's `KvError`, and the wire-level [`FailCode`].
//! Client code ended up pattern-matching all three to answer one question
//! — *should I retry this?* They are now unified: [`WieraError`] is the
//! single public error enum, `AppError` and the driver's `KvError` are
//! aliases of it, and [`FailCode`] survives only as the wire tag, kept
//! compatible via `From` impls. The [`WieraError::retryable`] predicate
//! is the routing-layer contract: a retryable error means "re-resolve and
//! try again" (transport failure, fenced epoch, stale shard map), a
//! non-retryable one is a final answer.

use crate::msg::FailCode;
use wiera_net::NetError;

/// Application-level operation failure: a transport error (candidate for
/// client failover, §4.4) or a structured semantic error from the replica.
#[derive(Debug, Clone)]
pub enum WieraError {
    Net(NetError),
    Remote { code: FailCode, why: String },
}

impl WieraError {
    pub fn remote(code: FailCode, why: impl Into<String>) -> WieraError {
        WieraError::Remote {
            code,
            why: why.into(),
        }
    }

    pub fn blocked(why: impl Into<String>) -> WieraError {
        WieraError::remote(FailCode::Blocked, why)
    }

    pub fn internal(why: impl Into<String>) -> WieraError {
        WieraError::remote(FailCode::Internal, why)
    }

    pub fn not_found(why: impl Into<String>) -> WieraError {
        WieraError::remote(FailCode::NotFound, why)
    }

    /// Catch-all constructor for callers without a structured code (the
    /// old `KvError::other`).
    pub fn other(why: impl Into<String>) -> WieraError {
        WieraError::internal(why)
    }

    /// The structured failure code, if this is a remote semantic error.
    pub fn code(&self) -> Option<FailCode> {
        match self {
            WieraError::Net(_) => None,
            WieraError::Remote { code, .. } => Some(*code),
        }
    }

    pub fn is_not_found(&self) -> bool {
        matches!(
            self.code(),
            Some(FailCode::NotFound | FailCode::VersionMissing)
        )
    }

    /// Whether retrying the operation can succeed without operator
    /// intervention: transport failures (another replica may answer), a
    /// fenced epoch (leadership moved — re-resolve the primary), a stale
    /// shard map (ownership moved — refresh and re-route), or a shed
    /// request (another replica may have admission headroom). Semantic
    /// errors (`NotFound`, `Blocked`, …) are final answers, and so is
    /// `DeadlineExceeded` — the budget is spent, only the caller can
    /// grant a new one.
    ///
    /// Every code is matched explicitly: a new [`FailCode`] variant must
    /// decide its retry semantics here, not inherit them from a wildcard.
    pub fn retryable(&self) -> bool {
        match self {
            WieraError::Net(_) => true,
            WieraError::Remote { code, .. } => match code {
                FailCode::StaleEpoch | FailCode::WrongShard | FailCode::Overloaded => true,
                FailCode::NotFound
                | FailCode::VersionMissing
                | FailCode::Blocked
                | FailCode::Internal
                | FailCode::DeadlineExceeded => false,
            },
        }
    }
}

impl std::fmt::Display for WieraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WieraError::Net(e) => write!(f, "network: {e}"),
            WieraError::Remote { code, why } => write!(f, "{code}: {why}"),
        }
    }
}

impl std::error::Error for WieraError {}

impl From<NetError> for WieraError {
    fn from(e: NetError) -> WieraError {
        WieraError::Net(e)
    }
}

/// Wire compatibility: a bare [`FailCode`] lifts into the unified error.
impl From<FailCode> for WieraError {
    fn from(code: FailCode) -> WieraError {
        WieraError::remote(code, String::new())
    }
}

/// Workload drivers historically bubbled errors as strings.
impl From<WieraError> for String {
    fn from(e: WieraError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_is_exactly_transport_fencing_routing_and_shedding() {
        // Every FailCode variant appears here: a new code without an
        // explicit expectation fails this enumeration.
        let expectations = [
            (FailCode::NotFound, false),
            (FailCode::VersionMissing, false),
            (FailCode::Blocked, false),
            (FailCode::Internal, false),
            (FailCode::StaleEpoch, true),
            (FailCode::WrongShard, true),
            (FailCode::Overloaded, true),
            (FailCode::DeadlineExceeded, false),
        ];
        for (code, want) in expectations {
            assert_eq!(
                WieraError::remote(code, "x").retryable(),
                want,
                "retryable({code}) should be {want}"
            );
        }
    }

    #[test]
    fn wire_code_lifts_and_stringifies() {
        let e: WieraError = FailCode::WrongShard.into();
        assert_eq!(e.code(), Some(FailCode::WrongShard));
        assert!(e.retryable());
        let s: String = WieraError::not_found("user42").into();
        assert_eq!(s, "not-found: user42");
    }

    #[test]
    fn not_found_covers_missing_versions() {
        assert!(WieraError::remote(FailCode::VersionMissing, "v3").is_not_found());
        assert!(WieraError::not_found("k").is_not_found());
        assert!(!WieraError::blocked("x").is_not_found());
    }
}
