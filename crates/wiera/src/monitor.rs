//! The dynamism machinery: dedicated monitor threads per instance (§4.3).
//!
//! * [`LatencyMonitor`] — watches the replica's put-latency window. Under
//!   the strong model, a sustained threshold violation (e.g. >800 ms for
//!   >30 s, Fig. 5(a)) asks the controller to switch the deployment to the
//!   > weak model. Under the weak model, it plays the paper's *network
//!   > monitor*: it estimates what a strong put would cost right now (lock
//!   > round trip + slowest replica round trip) from live RTT probes, and asks
//!   > to switch back once that estimate has been healthy for the same period.
//!   > Transient blips shorter than the period never trigger either way —
//!   > exactly how Fig. 7 ignores its delay (c).
//! * [`RequestsMonitor`] — primary-side: compares puts forwarded by each
//!   other instance against puts received directly from applications over a
//!   sliding window; when a forwarder dominates, asks the controller to move
//!   the primary there (Fig. 5(b), the Tuba-style reconfiguration of §5.2).

use crate::msg::{ChangeRequest, DataMsg, LatencySpec, RequestsSpec};
use crate::replica::ReplicaNode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wiera_net::{NodeId, Region};
use wiera_policy::ConsistencyModel;
use wiera_sim::{SimDuration, SimInstant};

/// Handle to a running monitor thread.
pub struct MonitorHandle {
    stop: Arc<AtomicBool>,
    /// Change requests sent to the controller (observability).
    pub triggers: Arc<AtomicU64>,
}

impl MonitorHandle {
    pub(crate) fn new(stop: Arc<AtomicBool>, triggers: Arc<AtomicU64>) -> MonitorHandle {
        MonitorHandle { stop, triggers }
    }

    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub fn trigger_count(&self) -> u64 {
        self.triggers.load(Ordering::Relaxed)
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The latency-monitoring thread (LatencyMonitoring events, Fig. 5(a)).
pub struct LatencyMonitor;

impl LatencyMonitor {
    pub fn start(
        replica: Arc<ReplicaNode>,
        spec: LatencySpec,
        controller: NodeId,
        deployment: String,
        mesh: Arc<wiera_net::Mesh<DataMsg>>,
        coord_region: Region,
    ) -> Result<MonitorHandle, String> {
        let stop = Arc::new(AtomicBool::new(false));
        let triggers = Arc::new(AtomicU64::new(0));
        let stop2 = stop.clone();
        let triggers2 = triggers.clone();
        std::thread::Builder::new()
            .name(format!("latmon-{}", replica.node))
            .spawn(move || {
                let clock = mesh.clock.clone();
                let check = SimDuration::from_millis_f64(spec.check_every_ms);
                let period = SimDuration::from_millis_f64(spec.period_ms);
                // When the current condition (violation while strong /
                // healthy while weak) started holding.
                let mut since: Option<SimInstant> = None;
                let mut last_model = replica.consistency();
                let mut last_check = clock.now();
                loop {
                    clock.sleep(check);
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    let now = clock.now();
                    let model = replica.consistency();
                    if model != last_model {
                        since = None; // switch happened; restart observation
                        last_model = model;
                    }
                    let (holding, target) = if model == spec.strong {
                        // Fold in samples since the previous check: a
                        // violating put starts (or extends) the violation; a
                        // healthy put ends it. This is sampling-rate
                        // independent — sparse workloads just take longer to
                        // span the period.
                        for (t, ms) in replica.put_latencies_since(last_check) {
                            if ms > spec.threshold_ms {
                                since.get_or_insert(t);
                            } else {
                                since = None;
                            }
                        }
                        (since.is_some(), spec.weak)
                    } else if model == spec.weak {
                        // Estimate a strong put's cost from live RTTs: lock
                        // round trip to the coordinator + slowest peer RTT.
                        let fabric = &mesh.fabric;
                        let lock_rtt = fabric.effective_rtt(replica.node.region, coord_region);
                        let worst_peer = replica
                            .peers()
                            .iter()
                            .map(|p| fabric.effective_rtt(replica.node.region, p.region))
                            .max()
                            .unwrap_or(SimDuration::ZERO);
                        let estimate =
                            (lock_rtt + worst_peer + SimDuration::from_millis(5)).as_millis_f64();
                        (estimate <= spec.threshold_ms, spec.strong)
                    } else {
                        since = None;
                        last_check = now;
                        continue;
                    };
                    last_check = now;

                    if holding {
                        let start = *since.get_or_insert(now);
                        if now.elapsed_since(start) > period {
                            let msg = DataMsg::RequestChange {
                                deployment: deployment.clone(),
                                change: ChangeRequest::Consistency(target),
                            };
                            let bytes = msg.wire_bytes();
                            let _ = mesh.rpc(
                                &replica.node,
                                &controller,
                                msg,
                                bytes,
                                SimDuration::from_secs(60),
                            );
                            triggers2.fetch_add(1, Ordering::Relaxed);
                            since = None;
                        }
                    } else {
                        since = None;
                    }
                }
            })
            .map_err(|e| format!("cannot spawn latency monitor: {e}"))?;
        Ok(MonitorHandle { stop, triggers })
    }
}

/// The requests-monitoring thread (RequestsMonitoring events, Fig. 5(b)).
pub struct RequestsMonitor;

impl RequestsMonitor {
    pub fn start(
        replica: Arc<ReplicaNode>,
        spec: RequestsSpec,
        controller: NodeId,
        deployment: String,
        mesh: Arc<wiera_net::Mesh<DataMsg>>,
    ) -> Result<MonitorHandle, String> {
        let stop = Arc::new(AtomicBool::new(false));
        let triggers = Arc::new(AtomicU64::new(0));
        let stop2 = stop.clone();
        let triggers2 = triggers.clone();
        std::thread::Builder::new()
            .name(format!("reqmon-{}", replica.node))
            .spawn(move || {
                let clock = mesh.clock.clone();
                let check = SimDuration::from_millis_f64(spec.check_every_ms);
                let window = SimDuration::from_millis_f64(spec.window_ms);
                loop {
                    clock.sleep(check);
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    // Only the current primary arbitrates (§4.3: "the
                    // dedicated thread in the primary instance").
                    if !replica.is_primary() {
                        continue;
                    }
                    if !matches!(
                        replica.consistency(),
                        ConsistencyModel::PrimaryBackup { .. }
                    ) {
                        continue;
                    }
                    let now = clock.now();
                    let since = now - window;
                    let direct = replica.direct_puts_since(since);
                    let forwarded = replica.forwarded_puts_since(since);
                    if let Some((winner, count)) = forwarded.into_iter().max_by_key(|(_, c)| *c) {
                        if count >= direct.max(1) {
                            let msg = DataMsg::RequestChange {
                                deployment: deployment.clone(),
                                change: ChangeRequest::Primary(winner),
                            };
                            let bytes = msg.wire_bytes();
                            let _ = mesh.rpc(
                                &replica.node,
                                &controller,
                                msg,
                                bytes,
                                SimDuration::from_secs(60),
                            );
                            triggers2.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
            .map_err(|e| format!("cannot spawn requests monitor: {e}"))?;
        Ok(MonitorHandle { stop, triggers })
    }
}
