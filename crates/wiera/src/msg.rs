//! Wire protocol of the Wiera system (the Thrift IDL stand-in).
//!
//! One message enum covers the three RPC surfaces the paper describes:
//! application ↔ instance (PUT/GET and the Table 2 versioning API),
//! instance ↔ instance (replication, forwarding, state sync), and
//! controller ↔ instance (consistency switches, primary changes, health).

use bytes::Bytes;
use wiera_net::NodeId;
use wiera_policy::ConsistencyModel;
use wiera_sim::SimInstant;

/// Everything that travels between Wiera nodes.
#[derive(Debug, Clone)]
pub enum DataMsg {
    // ---- application ↔ instance (Table 2 API) ----
    Put {
        key: String,
        value: Bytes,
    },
    Get {
        key: String,
    },
    GetVersion {
        key: String,
        version: u64,
    },
    GetVersionList {
        key: String,
    },
    Update {
        key: String,
        version: u64,
        value: Bytes,
    },
    Remove {
        key: String,
    },
    RemoveVersion {
        key: String,
        version: u64,
    },

    /// Successful write: the version written and where it landed.
    PutAck {
        version: u64,
    },
    /// Successful read.
    GetReply {
        value: Bytes,
        version: u64,
        modified: SimInstant,
    },
    VersionList {
        versions: Vec<u64>,
    },
    Removed,
    /// Request-level failure.
    Fail {
        why: String,
    },

    // ---- instance ↔ instance ----
    /// Propagate one version (synchronous `copy` or queued update).
    Replicate {
        key: String,
        version: u64,
        modified: SimInstant,
        value: Bytes,
    },
    /// Last-write-wins outcome at the receiver (§4.2).
    ReplicateAck {
        applied: bool,
    },
    /// A non-primary forwarding an application put to the primary.
    ForwardPut {
        key: String,
        value: Bytes,
        origin: NodeId,
    },
    /// Full-state transfer for replica repair (§4.4).
    SyncRequest,
    SyncReply {
        objects: Vec<SyncObject>,
    },

    // ---- controller ↔ instance ----
    /// Two-phase consistency switch (§3.3.2): drain queues, block new
    /// requests, adopt the model, unblock. `epoch` guards against stale
    /// control messages.
    ChangeConsistency {
        to: ConsistencyModel,
        epoch: u64,
    },
    /// Re-point every replica at a new primary (Fig. 5(b)).
    ChangePrimary {
        new_primary: NodeId,
        epoch: u64,
    },
    /// Install the peer list (TIM step 6 of §4.1).
    SetPeers {
        peers: Vec<NodeId>,
        primary: Option<NodeId>,
        epoch: u64,
    },
    /// Liveness probe (TSM heartbeat / network monitor ping).
    Ping,
    Pong,
    /// Graceful stop.
    Stop,
    Ok,

    // ---- Tiera server ↔ controller (TSM protocol, §4.1) ----
    /// A Tiera server announcing itself to the TSM ("whenever a Tiera
    /// server launches, it connects to the TSM first").
    ServerHello {
        region: wiera_net::Region,
    },
    /// TSM asking a server to spawn an instance replica (step 3 of §4.1).
    SpawnReplica {
        spec: ReplicaSpec,
    },
    /// The server's answer: the new replica's address (step 5).
    Spawned {
        node: NodeId,
    },
    StopReplica {
        node: NodeId,
    },
    /// Bulk state install on a freshly repaired replica (§4.4).
    LoadState {
        objects: Vec<SyncObject>,
    },

    // ---- instance → controller (monitor escalation, §4.3) ----
    /// A monitor thread asking Wiera to change the deployment's policy
    /// (the `change_policy()` response).
    RequestChange {
        deployment: String,
        change: ChangeRequest,
    },
}

/// What a monitor asks the controller to change.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeRequest {
    Consistency(ConsistencyModel),
    Primary(NodeId),
}

/// Everything a Tiera server needs to spawn a replica.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    pub deployment: String,
    /// Instance name, unique within the deployment (e.g. the region label).
    pub name: String,
    pub consistency: ConsistencyModel,
    /// Queue distribution period, ms.
    pub flush_ms: f64,
    pub tiers: Vec<wiera_policy::TierLayout>,
    pub rules: Vec<wiera_policy::Rule>,
    pub max_versions: Option<usize>,
    /// Monitor configuration (latency/requests), if dynamism is enabled.
    pub monitors: MonitorSpec,
    /// Whether the replica should take the multi-primaries lock path.
    pub needs_coord: bool,
}

/// Which monitor threads a replica should run (§3.2.3 / §4.3).
#[derive(Debug, Clone, Default)]
pub struct MonitorSpec {
    /// LatencyMonitoring: switch consistency on (threshold, period).
    pub latency: Option<LatencySpec>,
    /// RequestsMonitoring: move the primary toward forwarding hot spots.
    pub requests: Option<RequestsSpec>,
}

#[derive(Debug, Clone)]
pub struct LatencySpec {
    /// Put-latency threshold in ms (the paper's 800 ms).
    pub threshold_ms: f64,
    /// Sustained-violation period in ms (the paper's 30 s).
    pub period_ms: f64,
    /// How often the dedicated thread evaluates, ms.
    pub check_every_ms: f64,
    /// The weak model to fall back to.
    pub weak: ConsistencyModel,
    /// The strong model to restore.
    pub strong: ConsistencyModel,
}

#[derive(Debug, Clone)]
pub struct RequestsSpec {
    /// History window compared (the paper checks "the last 30 seconds").
    pub window_ms: f64,
    /// Evaluation period (the paper's 15 s).
    pub check_every_ms: f64,
}

/// One object version in a state-sync transfer.
#[derive(Debug, Clone)]
pub struct SyncObject {
    pub key: String,
    pub version: u64,
    pub modified: SimInstant,
    pub value: Bytes,
}

impl DataMsg {
    /// Approximate wire size for network modeling: header plus payload.
    pub fn wire_bytes(&self) -> u64 {
        const HDR: u64 = 64;
        match self {
            DataMsg::Put { key, value } => HDR + key.len() as u64 + value.len() as u64,
            DataMsg::Update { key, value, .. } => HDR + key.len() as u64 + value.len() as u64,
            DataMsg::Replicate { key, value, .. } => HDR + key.len() as u64 + value.len() as u64,
            DataMsg::ForwardPut { key, value, .. } => HDR + key.len() as u64 + value.len() as u64,
            DataMsg::GetReply { value, .. } => HDR + value.len() as u64,
            DataMsg::SyncReply { objects } => {
                HDR + objects
                    .iter()
                    .map(|o| o.key.len() as u64 + o.value.len() as u64 + 32)
                    .sum::<u64>()
            }
            DataMsg::Get { key } | DataMsg::Remove { key } | DataMsg::GetVersionList { key } => {
                HDR + key.len() as u64
            }
            DataMsg::GetVersion { key, .. } | DataMsg::RemoveVersion { key, .. } => {
                HDR + key.len() as u64
            }
            _ => HDR,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_tracks_payload() {
        let small = DataMsg::Put {
            key: "k".into(),
            value: Bytes::from_static(b"x"),
        };
        let big = DataMsg::Put {
            key: "k".into(),
            value: Bytes::from(vec![0u8; 4096]),
        };
        assert!(big.wire_bytes() > small.wire_bytes() + 4000);
        assert_eq!(DataMsg::Ping.wire_bytes(), 64);
    }

    #[test]
    fn sync_reply_counts_all_objects() {
        let objects = vec![
            SyncObject {
                key: "a".into(),
                version: 1,
                modified: SimInstant::EPOCH,
                value: Bytes::from(vec![0u8; 100]),
            },
            SyncObject {
                key: "b".into(),
                version: 2,
                modified: SimInstant::EPOCH,
                value: Bytes::from(vec![0u8; 200]),
            },
        ];
        let m = DataMsg::SyncReply { objects };
        assert!(m.wire_bytes() > 300);
    }
}
