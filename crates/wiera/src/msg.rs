//! Wire protocol of the Wiera system (the Thrift IDL stand-in).
//!
//! One message enum covers the three RPC surfaces the paper describes:
//! application ↔ instance (PUT/GET and the Table 2 versioning API),
//! instance ↔ instance (replication, forwarding, state sync), and
//! controller ↔ instance (consistency switches, primary changes, health).

use bytes::Bytes;
use std::sync::Arc;
use wiera_net::NodeId;
use wiera_policy::ConsistencyModel;
use wiera_sim::SimInstant;

/// Everything that travels between Wiera nodes.
#[derive(Debug, Clone)]
pub enum DataMsg {
    // ---- application ↔ instance (Table 2 API) ----
    /// Op-budget envelope around an application request. Carries the
    /// absolute deadline (on the shared modeled clock, so every hop can
    /// drop work that can no longer be answered in time) and whether the
    /// caller accepts a possibly-stale degraded answer under overload.
    /// Replicas unwrap it before dispatching the inner op.
    WithBudget {
        /// Absolute deadline, µs since [`SimInstant::EPOCH`]. `None`
        /// means unbounded (legacy behavior).
        deadline_us: Option<u64>,
        /// Under overload an eventual-policy Get may be answered from
        /// local state without queueing; the reply is marked `degraded`.
        allow_degraded: bool,
        inner: Box<DataMsg>,
    },
    Put {
        key: String,
        value: Bytes,
    },
    Get {
        key: String,
    },
    GetVersion {
        key: String,
        version: u64,
    },
    GetVersionList {
        key: String,
    },
    Update {
        key: String,
        version: u64,
        value: Bytes,
    },
    Remove {
        key: String,
    },
    RemoveVersion {
        key: String,
        version: u64,
    },
    /// Bulk write: many puts in one request. The whole batch pays a single
    /// wire header; per-item outcomes come back in [`DataMsg::MultiReply`]
    /// in request order.
    MultiPut {
        items: Vec<PutItem>,
    },
    /// Bulk read; per-item outcomes come back in [`DataMsg::MultiReply`].
    MultiGet {
        keys: Vec<String>,
    },
    /// Per-item results for a `MultiPut`/`MultiGet`, in request order.
    MultiReply {
        results: Vec<ItemResult>,
    },

    /// Successful write: the version written and where it landed.
    PutAck {
        version: u64,
    },
    /// Successful read. `degraded` is the explicit staleness marker: the
    /// value was served from local state under overload (eventual policy
    /// only, and only when the request allowed it) and may lag the newest
    /// acknowledged write.
    GetReply {
        value: Bytes,
        version: u64,
        modified: SimInstant,
        degraded: bool,
    },
    VersionList {
        versions: Vec<u64>,
    },
    Removed,
    /// Request-level failure, with a machine-checkable kind so callers
    /// branch on `code` instead of substring-matching `why`.
    Fail {
        code: FailCode,
        why: String,
    },

    // ---- instance ↔ instance ----
    /// Propagate one version (synchronous `copy` or queued update). `epoch`
    /// fences a deposed primary: receivers at a higher epoch refuse it.
    Replicate {
        key: String,
        version: u64,
        modified: SimInstant,
        value: Bytes,
        epoch: u64,
    },
    /// Coalesced replication: every pending update for one peer in a single
    /// message (one wire header for the batch). The receiver applies
    /// last-write-wins per item. Epoch-fenced like [`DataMsg::Replicate`].
    /// `items` is an `Arc` slice so the fan-out to N backups shares one
    /// immutable batch instead of deep-cloning the item vector per send.
    ReplicateBatch {
        items: Arc<[SyncObject]>,
        epoch: u64,
    },
    /// Last-write-wins outcome at the receiver (§4.2). For a batch,
    /// `applied` is true when at least one item won its LWW race.
    ReplicateAck {
        applied: bool,
    },
    /// A non-primary forwarding an application put to the primary.
    /// Epoch-fenced: a primary at a higher epoch refuses stale forwards.
    ForwardPut {
        key: String,
        value: Bytes,
        origin: NodeId,
        epoch: u64,
    },
    /// Full-state transfer for replica repair (§4.4).
    SyncRequest,
    SyncReply {
        objects: Vec<SyncObject>,
    },
    /// Anti-entropy (§4.4): a rejoining replica asks a peer for its per-key
    /// latest version + content digest, to diff against local state without
    /// shipping the values.
    DigestRequest,
    DigestReply {
        entries: Vec<KeyDigest>,
        epoch: u64,
        /// The replier's view of the primary, so a deposed primary that
        /// rejoins adopts the post-failover leadership along with the epoch
        /// (epoch and primary always travel together).
        primary: Option<NodeId>,
    },
    /// Fetch the full objects the digest diff flagged as missing or stale.
    /// Answered with [`DataMsg::SyncReply`].
    FetchObjects {
        keys: Vec<String>,
    },

    // ---- controller ↔ instance ----
    /// Two-phase consistency switch (§3.3.2): drain queues, block new
    /// requests, adopt the model, unblock. `epoch` guards against stale
    /// control messages.
    ChangeConsistency {
        to: ConsistencyModel,
        epoch: u64,
    },
    /// Re-point every replica at a new primary (Fig. 5(b)).
    ChangePrimary {
        new_primary: NodeId,
        epoch: u64,
    },
    /// Install the peer list (TIM step 6 of §4.1).
    SetPeers {
        peers: Vec<NodeId>,
        primary: Option<NodeId>,
        epoch: u64,
    },
    /// Install a replica's slice of the fleet shard map: the shards its
    /// group owns under `map_version`, plus the ring parameters so the
    /// replica rebuilds the identical ring locally ([`ShardMap`] hashing
    /// is pinned). Versioned like epochs: a receiver at a higher map
    /// version refuses the install (`WrongShard`), so a stale fleet
    /// manager can never regress ownership.
    SetShards {
        shards: Vec<u32>,
        num_shards: u32,
        vnodes: u32,
        map_version: u64,
    },
    /// Retire a shard after a completed move handoff: delete every local
    /// object of `shard`. Guarded by `map_version` — refused unless the
    /// replica has already adopted a map at or above that version that no
    /// longer assigns it the shard.
    DropShard {
        shard: u32,
        map_version: u64,
    },
    /// Liveness probe (TSM heartbeat / network monitor ping).
    Ping,
    Pong,
    /// Synchronously drain the eventual-mode replication queue (planned
    /// shutdown: flush before stop so queued updates are never dropped).
    FlushQueue,
    /// Graceful stop.
    Stop,
    Ok,

    // ---- Tiera server ↔ controller (TSM protocol, §4.1) ----
    /// A Tiera server announcing itself to the TSM ("whenever a Tiera
    /// server launches, it connects to the TSM first").
    ServerHello {
        region: wiera_net::Region,
    },
    /// TSM asking a server to spawn an instance replica (step 3 of §4.1).
    SpawnReplica {
        spec: ReplicaSpec,
    },
    /// The server's answer: the new replica's address (step 5).
    Spawned {
        node: NodeId,
    },
    StopReplica {
        node: NodeId,
    },
    /// Bulk state install on a freshly repaired replica (§4.4).
    LoadState {
        objects: Vec<SyncObject>,
    },

    // ---- instance → controller (monitor escalation, §4.3) ----
    /// A monitor thread asking Wiera to change the deployment's policy
    /// (the `change_policy()` response).
    RequestChange {
        deployment: String,
        change: ChangeRequest,
    },
}

/// What a monitor asks the controller to change.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeRequest {
    Consistency(ConsistencyModel),
    Primary(NodeId),
}

/// Everything a Tiera server needs to spawn a replica.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    pub deployment: String,
    /// Instance name, unique within the deployment (e.g. the region label).
    pub name: String,
    pub consistency: ConsistencyModel,
    /// Queue distribution period, ms.
    pub flush_ms: f64,
    pub tiers: Vec<wiera_policy::TierLayout>,
    pub rules: Vec<wiera_policy::Rule>,
    pub max_versions: Option<usize>,
    /// Monitor configuration (latency/requests), if dynamism is enabled.
    pub monitors: MonitorSpec,
    /// Whether the replica should take the multi-primaries lock path.
    pub needs_coord: bool,
    /// The fleet shard group this replica belongs to, if the deployment is
    /// one group of a sharded fleet. Failover and suspect events carry this
    /// id so per-group primaries are never conflated with a global one.
    pub shard_group: Option<u32>,
    /// Modeled per-op service time at this replica, ms. `None` (the
    /// default) keeps the pre-fleet behavior: ops cost only their wire and
    /// storage time. Benchmarks set it to model a saturable server, so
    /// aggregate throughput scales with the number of groups instead of
    /// with client count alone.
    pub service_time_ms: Option<f64>,
    /// CoDel-style load shedding over the admission queue. `None` (the
    /// default) never sheds; only meaningful with `service_time_ms` set.
    pub overload: Option<OverloadSpec>,
}

/// Wire form of the replica's shedding policy (see the replica's
/// `OverloadConfig` for semantics: shed client ops once the admission
/// backlog has stayed above `target_delay_ms` for `interval_ms`).
#[derive(Debug, Clone, Copy)]
pub struct OverloadSpec {
    pub target_delay_ms: f64,
    pub interval_ms: f64,
}

/// Which monitor threads a replica should run (§3.2.3 / §4.3).
#[derive(Debug, Clone, Default)]
pub struct MonitorSpec {
    /// LatencyMonitoring: switch consistency on (threshold, period).
    pub latency: Option<LatencySpec>,
    /// RequestsMonitoring: move the primary toward forwarding hot spots.
    pub requests: Option<RequestsSpec>,
    /// Failure detection (§4.4): watch the primary's coord lease and
    /// heartbeat silence; elect a replacement when it goes suspect.
    pub detector: Option<DetectorSpec>,
}

#[derive(Debug, Clone)]
pub struct LatencySpec {
    /// Put-latency threshold in ms (the paper's 800 ms).
    pub threshold_ms: f64,
    /// Sustained-violation period in ms (the paper's 30 s).
    pub period_ms: f64,
    /// How often the dedicated thread evaluates, ms.
    pub check_every_ms: f64,
    /// The weak model to fall back to.
    pub weak: ConsistencyModel,
    /// The strong model to restore.
    pub strong: ConsistencyModel,
}

#[derive(Debug, Clone)]
pub struct RequestsSpec {
    /// History window compared (the paper checks "the last 30 seconds").
    pub window_ms: f64,
    /// Evaluation period (the paper's 15 s).
    pub check_every_ms: f64,
}

/// Failure-detector configuration (§4.4). The worst-case sim-time window
/// from crash to a declared suspect is `coord session timeout + sweep
/// interval` (lease expiry) plus one `check_every_ms` detector tick; the
/// `suspect_after_ms` silence floor guards against declaring a node dead on
/// one dropped probe.
#[derive(Debug, Clone)]
pub struct DetectorSpec {
    /// How often the detector thread probes, ms.
    pub check_every_ms: f64,
    /// Minimum heartbeat/probe silence before a lease-less node is declared
    /// suspect, ms.
    pub suspect_after_ms: f64,
}

/// One object version in a state-sync transfer.
#[derive(Debug, Clone)]
pub struct SyncObject {
    pub key: String,
    pub version: u64,
    pub modified: SimInstant,
    pub value: Bytes,
}

/// One key's latest version + FNV content digest in a [`DataMsg::DigestReply`]
/// — the anti-entropy summary a rejoining replica diffs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyDigest {
    pub key: String,
    pub version: u64,
    pub modified: SimInstant,
    pub digest: u64,
}

/// Failure kinds a replica can report. Coarse on purpose: clients branch
/// on these, humans read `why`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailCode {
    /// The object does not exist.
    NotFound,
    /// The object exists but the requested version does not.
    VersionMissing,
    /// The request cannot be served right now (no primary configured,
    /// coordination lock unavailable, consistency switch in flight).
    Blocked,
    /// Anything else: engine errors, protocol violations, bad requests.
    Internal,
    /// The sender's deployment epoch is older than the receiver's: a deposed
    /// primary (or a stale controller broadcast) was fenced off (§4.4).
    StaleEpoch,
    /// The key's shard is not owned by this replica's group under the
    /// current shard map — the client routed on a stale map (or the shard
    /// is mid-move and nobody serves it yet). Retryable: refresh the map
    /// and re-route.
    WrongShard,
    /// The replica shed the request before queueing it: its admission
    /// controller judged the backlog unserviceable within an acceptable
    /// delay. Retryable — another replica (or a later attempt) may have
    /// headroom.
    Overloaded,
    /// The request's deadline expired before the work completed; partial
    /// work was dropped. Not retryable: the budget is spent, and a fresh
    /// attempt needs a fresh deadline from the caller.
    DeadlineExceeded,
}

impl std::fmt::Display for FailCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailCode::NotFound => "not-found",
            FailCode::VersionMissing => "version-missing",
            FailCode::Blocked => "blocked",
            FailCode::Internal => "internal",
            FailCode::StaleEpoch => "stale-epoch",
            FailCode::WrongShard => "wrong-shard",
            FailCode::Overloaded => "overloaded",
            FailCode::DeadlineExceeded => "deadline-exceeded",
        };
        f.write_str(s)
    }
}

/// One write in a [`DataMsg::MultiPut`].
#[derive(Debug, Clone)]
pub struct PutItem {
    pub key: String,
    pub value: Bytes,
}

/// One outcome in a [`DataMsg::MultiReply`], mirroring the single-op
/// replies item by item.
#[derive(Debug, Clone)]
pub enum ItemResult {
    /// The item's write succeeded (cf. [`DataMsg::PutAck`]).
    Put { version: u64 },
    /// The item's read succeeded (cf. [`DataMsg::GetReply`]).
    Value {
        value: Bytes,
        version: u64,
        modified: SimInstant,
    },
    /// The item failed; the rest of the batch is unaffected.
    Err { code: FailCode, why: String },
}

impl ItemResult {
    /// Payload bytes this item contributes to its batch reply (no
    /// per-item header beyond a small fixed tag).
    fn wire_bytes(&self) -> u64 {
        match self {
            ItemResult::Put { .. } => 8,
            ItemResult::Value { value, .. } => 16 + value.len() as u64,
            ItemResult::Err { why, .. } => 8 + why.len() as u64,
        }
    }
}

impl DataMsg {
    /// Approximate wire size for network modeling: header plus payload.
    ///
    /// Batched messages pay the 64-byte header **once per batch** plus a
    /// small fixed per-item tag — this amortization is the wire-level half
    /// of the bulk-operation win (the other half is fewer round trips).
    pub fn wire_bytes(&self) -> u64 {
        const HDR: u64 = 64;
        /// Per-item framing inside a batch (length prefixes + tag).
        const ITEM: u64 = 8;
        match self {
            // The envelope adds a deadline + flags word on top of the
            // inner request's cost.
            DataMsg::WithBudget { inner, .. } => 16 + inner.wire_bytes(),
            DataMsg::Put { key, value } => HDR + key.len() as u64 + value.len() as u64,
            DataMsg::Update { key, value, .. } => HDR + key.len() as u64 + value.len() as u64,
            DataMsg::Replicate { key, value, .. } => HDR + key.len() as u64 + value.len() as u64,
            DataMsg::ForwardPut { key, value, .. } => HDR + key.len() as u64 + value.len() as u64,
            DataMsg::GetReply { value, .. } => HDR + value.len() as u64,
            DataMsg::SyncReply { objects } => {
                HDR + objects
                    .iter()
                    .map(|o| o.key.len() as u64 + o.value.len() as u64 + 32)
                    .sum::<u64>()
            }
            DataMsg::ReplicateBatch { items, .. } => {
                HDR + items
                    .iter()
                    .map(|o| o.key.len() as u64 + o.value.len() as u64 + 32)
                    .sum::<u64>()
            }
            DataMsg::DigestReply { entries, .. } => {
                HDR + entries.iter().map(|e| e.key.len() as u64 + 24).sum::<u64>()
            }
            DataMsg::FetchObjects { keys } => {
                HDR + keys.iter().map(|k| k.len() as u64 + ITEM).sum::<u64>()
            }
            DataMsg::MultiPut { items } => {
                HDR + items
                    .iter()
                    .map(|i| i.key.len() as u64 + i.value.len() as u64 + ITEM)
                    .sum::<u64>()
            }
            DataMsg::MultiGet { keys } => {
                HDR + keys.iter().map(|k| k.len() as u64 + ITEM).sum::<u64>()
            }
            DataMsg::SetShards { shards, .. } => HDR + shards.len() as u64 * 4 + 16,
            DataMsg::MultiReply { results } => {
                HDR + results.iter().map(|r| r.wire_bytes()).sum::<u64>()
            }
            DataMsg::Get { key } | DataMsg::Remove { key } | DataMsg::GetVersionList { key } => {
                HDR + key.len() as u64
            }
            DataMsg::GetVersion { key, .. } | DataMsg::RemoveVersion { key, .. } => {
                HDR + key.len() as u64
            }
            _ => HDR,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_tracks_payload() {
        let small = DataMsg::Put {
            key: "k".into(),
            value: Bytes::from_static(b"x"),
        };
        let big = DataMsg::Put {
            key: "k".into(),
            value: Bytes::from(vec![0u8; 4096]),
        };
        assert!(big.wire_bytes() > small.wire_bytes() + 4000);
        assert_eq!(DataMsg::Ping.wire_bytes(), 64);
    }

    #[test]
    fn sync_reply_counts_all_objects() {
        let objects = vec![
            SyncObject {
                key: "a".into(),
                version: 1,
                modified: SimInstant::EPOCH,
                value: Bytes::from(vec![0u8; 100]),
            },
            SyncObject {
                key: "b".into(),
                version: 2,
                modified: SimInstant::EPOCH,
                value: Bytes::from(vec![0u8; 200]),
            },
        ];
        let m = DataMsg::SyncReply { objects };
        assert!(m.wire_bytes() > 300);
    }

    #[test]
    fn batched_puts_amortize_the_header() {
        let items: Vec<PutItem> = (0..64)
            .map(|i| PutItem {
                key: format!("user{i:08}"),
                value: Bytes::from(vec![0u8; 32]),
            })
            .collect();
        let singles: u64 = items
            .iter()
            .map(|i| {
                DataMsg::Put {
                    key: i.key.clone(),
                    value: i.value.clone(),
                }
                .wire_bytes()
                    + DataMsg::PutAck { version: 1 }.wire_bytes()
            })
            .sum();
        let batch = DataMsg::MultiPut { items }.wire_bytes()
            + DataMsg::MultiReply {
                results: (0..64).map(|_| ItemResult::Put { version: 1 }).collect(),
            }
            .wire_bytes();
        assert!(
            batch * 2 <= singles,
            "batch {batch} should cost at most half of per-op {singles}"
        );
    }

    #[test]
    fn batched_gets_amortize_the_header() {
        let keys: Vec<String> = (0..64).map(|i| format!("user{i:08}")).collect();
        let singles: u64 = keys
            .iter()
            .map(|k| {
                DataMsg::Get { key: k.clone() }.wire_bytes()
                    + DataMsg::GetReply {
                        value: Bytes::from(vec![0u8; 32]),
                        version: 1,
                        modified: SimInstant::EPOCH,
                        degraded: false,
                    }
                    .wire_bytes()
            })
            .sum();
        let batch = DataMsg::MultiGet { keys }.wire_bytes()
            + DataMsg::MultiReply {
                results: (0..64)
                    .map(|_| ItemResult::Value {
                        value: Bytes::from(vec![0u8; 32]),
                        version: 1,
                        modified: SimInstant::EPOCH,
                    })
                    .collect(),
            }
            .wire_bytes();
        assert!(
            batch * 2 <= singles,
            "batch {batch} should cost at most half of per-op {singles}"
        );
    }

    #[test]
    fn replicate_batch_amortizes_the_header() {
        let items: Vec<SyncObject> = (0..8)
            .map(|i| SyncObject {
                key: format!("k{i}"),
                version: i,
                modified: SimInstant::EPOCH,
                value: Bytes::from(vec![0u8; 16]),
            })
            .collect();
        let singles: u64 = items
            .iter()
            .map(|o| {
                DataMsg::Replicate {
                    key: o.key.clone(),
                    version: o.version,
                    modified: o.modified,
                    value: o.value.clone(),
                    epoch: 1,
                }
                .wire_bytes()
            })
            .sum();
        let batch = DataMsg::ReplicateBatch {
            items: items.into(),
            epoch: 1,
        }
        .wire_bytes();
        assert!(batch < singles, "batch {batch} vs singles {singles}");
    }
}
