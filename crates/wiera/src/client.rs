//! The application-side client handle.
//!
//! §4.1 step 8: "the application can connect to the closest instance
//! (placed at the head of the list) and send requests as in Tiera", and
//! §4.4: "if the application observes that the closest instance is down
//! then it tries to send requests to the second closest instance, and so
//! on". Applications stay *unmodified*: this is the only integration point.
//!
//! Every method funnels through one failover loop with one retry/timeout
//! policy: transport failures advance to the next-closest replica, semantic
//! (`Fail`) replies are final. The batch calls (`put_batch`/`get_batch`)
//! ship one amortized-header message per batch and report per-item results,
//! so a partial failure inside a batch never hides the items that succeeded.

use crate::msg::{DataMsg, FailCode, PutItem};
use crate::replica::{view_of_item, view_of_reply, AppError, OpView, DATA_TIMEOUT};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
use wiera_net::{Mesh, NetError, NodeId, Region, RpcReply};
use wiera_sim::{derive_seed, MetricsRegistry, SimDuration, SimRng};

/// Retry behavior for the client failover loop (§4.4): candidates are swept
/// closest-first; between sweeps the client backs off exponentially with
/// seeded jitter (so a thundering herd of recovering clients decorrelates
/// deterministically), up to a total attempt cap.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Backoff before the second sweep, ms (sim time). Doubles per sweep.
    pub base_backoff_ms: f64,
    /// Backoff growth cap, ms.
    pub max_backoff_ms: f64,
    /// Total RPC attempts across all candidates and sweeps.
    pub max_attempts: u32,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff_ms: 20.0,
            max_backoff_ms: 2000.0,
            max_attempts: 9,
            seed: 7,
        }
    }
}

/// An application's connection to a Wiera deployment.
pub struct WieraClient {
    mesh: Arc<Mesh<DataMsg>>,
    /// The application's own address (its region determines routing).
    pub me: NodeId,
    /// Candidate replicas, closest first.
    replicas: RwLock<Vec<NodeId>>,
    policy: RetryPolicy,
    /// Jitter source, derived from the policy seed and the client name.
    rng: Mutex<SimRng>,
}

impl WieraClient {
    /// Connect from `region`, ordering `replicas` closest-first by base RTT.
    pub fn connect(
        mesh: Arc<Mesh<DataMsg>>,
        region: Region,
        name: impl Into<String>,
        replicas: Vec<NodeId>,
    ) -> Arc<Self> {
        Self::connect_with_policy(mesh, region, name, replicas, RetryPolicy::default())
    }

    /// [`Self::connect`] with an explicit retry policy (chaos campaigns pin
    /// the seed; latency-sensitive apps shrink the attempt cap).
    pub fn connect_with_policy(
        mesh: Arc<Mesh<DataMsg>>,
        region: Region,
        name: impl Into<String>,
        mut replicas: Vec<NodeId>,
        policy: RetryPolicy,
    ) -> Arc<Self> {
        replicas.sort_by(|a, b| {
            let ra = mesh.fabric.base_rtt_ms(region, a.region);
            let rb = mesh.fabric.base_rtt_ms(region, b.region);
            ra.total_cmp(&rb)
        });
        let me = NodeId::new(region, name.into());
        let rng = SimRng::new(derive_seed(policy.seed, me.name.as_ref()));
        Arc::new(WieraClient {
            mesh,
            me,
            replicas: RwLock::new(replicas),
            policy,
            rng: Mutex::new(rng),
        })
    }

    /// Refresh the candidate list (e.g. after `getInstances`).
    pub fn update_replicas(&self, mut replicas: Vec<NodeId>) {
        replicas.sort_by(|a, b| {
            let ra = self.mesh.fabric.base_rtt_ms(self.me.region, a.region);
            let rb = self.mesh.fabric.base_rtt_ms(self.me.region, b.region);
            ra.total_cmp(&rb)
        });
        *self.replicas.write() = replicas;
    }

    pub fn closest(&self) -> Option<NodeId> {
        self.replicas.read().first().cloned()
    }

    /// Issue an operation with closest-first failover: transport failures
    /// and stale-epoch refusals advance to the next-closest replica; any
    /// other semantic (`Fail`) reply is final — it came from a live replica
    /// that understood the request, so retrying elsewhere can only mask the
    /// answer. After a full sweep of the candidate list the client backs off
    /// (exponential + seeded jitter, sim-time) and sweeps again until the
    /// attempt cap. Every client method routes through here, so they all
    /// share one retry/timeout/failover policy.
    fn with_failover<T>(
        &self,
        make: impl Fn() -> DataMsg,
        parse: impl Fn(RpcReply<DataMsg>, &NodeId) -> Result<T, AppError>,
    ) -> Result<T, AppError> {
        let mut attempts: u32 = 0;
        let mut sweep: u32 = 0;
        let mut last: Option<AppError> = None;
        loop {
            // Re-read each sweep: a failover may have refreshed the list.
            let candidates = self.replicas.read().clone();
            if candidates.is_empty() {
                return Err(AppError::blocked("no replicas configured"));
            }
            for target in &candidates {
                if attempts >= self.policy.max_attempts {
                    return Err(last.unwrap_or_else(|| AppError::blocked("all replicas failed")));
                }
                attempts += 1;
                let msg = make();
                let bytes = msg.wire_bytes();
                match self.mesh.rpc(&self.me, target, msg, bytes, DATA_TIMEOUT) {
                    // A fenced (deposed-epoch) refusal means the deployment
                    // just failed over: retry, the next candidate (or the
                    // next sweep) will be current.
                    Ok(RpcReply {
                        msg:
                            DataMsg::Fail {
                                code: FailCode::StaleEpoch,
                                why,
                            },
                        ..
                    }) => {
                        self.note_retry("stale-epoch");
                        last = Some(AppError::Remote {
                            code: FailCode::StaleEpoch,
                            why,
                        });
                    }
                    Ok(reply) => return parse(reply, target),
                    Err(e) => {
                        self.note_retry(match &e {
                            NetError::Timeout(_) => "timeout",
                            _ => "unreachable",
                        });
                        last = Some(AppError::Net(e));
                    }
                }
            }
            if attempts >= self.policy.max_attempts {
                return Err(last.unwrap_or_else(|| AppError::blocked("all replicas failed")));
            }
            // Whole list down (or fenced): back off before the next sweep.
            let exp = self.policy.base_backoff_ms * f64::powi(2.0, sweep as i32);
            let capped = exp.min(self.policy.max_backoff_ms);
            let jitter = self.rng.lock().gen_range_f64(0.0, capped);
            self.mesh
                .clock
                .sleep(SimDuration::from_millis_f64(capped + jitter));
            sweep += 1;
        }
    }

    fn note_retry(&self, reason: &str) {
        MetricsRegistry::global().inc("client_retries", &[("reason", reason)]);
    }

    /// The common case: one request, one `OpView`-shaped answer.
    fn op(&self, make: impl Fn() -> DataMsg) -> Result<OpView, AppError> {
        self.with_failover(make, |reply, target| {
            let latency = reply.total();
            view_of_reply(reply.msg, latency, target)
        })
    }

    pub fn put(&self, key: &str, value: Bytes) -> Result<OpView, AppError> {
        self.op(|| DataMsg::Put {
            key: key.to_string(),
            value: value.clone(),
        })
    }

    pub fn get(&self, key: &str) -> Result<OpView, AppError> {
        self.op(|| DataMsg::Get {
            key: key.to_string(),
        })
    }

    pub fn get_version(&self, key: &str, version: u64) -> Result<OpView, AppError> {
        self.op(|| DataMsg::GetVersion {
            key: key.to_string(),
            version,
        })
    }

    pub fn get_version_list(&self, key: &str) -> Result<Vec<u64>, AppError> {
        self.with_failover(
            || DataMsg::GetVersionList {
                key: key.to_string(),
            },
            |reply, _| match reply.msg {
                DataMsg::VersionList { versions } => Ok(versions),
                DataMsg::Fail { code, why } => Err(AppError::Remote { code, why }),
                other => Err(AppError::internal(format!("bad reply {other:?}"))),
            },
        )
    }

    pub fn update(&self, key: &str, version: u64, value: Bytes) -> Result<OpView, AppError> {
        self.op(|| DataMsg::Update {
            key: key.to_string(),
            version,
            value: value.clone(),
        })
    }

    pub fn remove(&self, key: &str) -> Result<OpView, AppError> {
        self.op(|| DataMsg::Remove {
            key: key.to_string(),
        })
    }

    pub fn remove_version(&self, key: &str, version: u64) -> Result<OpView, AppError> {
        self.op(|| DataMsg::RemoveVersion {
            key: key.to_string(),
            version,
        })
    }

    /// Write a batch of keys in one request (one wire header for the whole
    /// batch). The outer `Result` is transport-level — a replica that cannot
    /// be reached fails the whole batch over to the next candidate. The
    /// inner per-item results carry semantic failures individually, so a
    /// partial failure reports exactly which items lost.
    pub fn put_batch(
        &self,
        items: &[(String, Bytes)],
    ) -> Result<Vec<Result<OpView, AppError>>, AppError> {
        let payload: Vec<PutItem> = items
            .iter()
            .map(|(key, value)| PutItem {
                key: key.clone(),
                value: value.clone(),
            })
            .collect();
        self.with_failover(
            || DataMsg::MultiPut {
                items: payload.clone(),
            },
            batch_views,
        )
    }

    /// Read a batch of keys in one request; same failover and per-item
    /// semantics as [`Self::put_batch`].
    pub fn get_batch(&self, keys: &[String]) -> Result<Vec<Result<OpView, AppError>>, AppError> {
        self.with_failover(
            || DataMsg::MultiGet {
                keys: keys.to_vec(),
            },
            batch_views,
        )
    }
}

fn batch_views(
    reply: RpcReply<DataMsg>,
    target: &NodeId,
) -> Result<Vec<Result<OpView, AppError>>, AppError> {
    let latency = reply.total();
    match reply.msg {
        DataMsg::MultiReply { results } => Ok(results
            .into_iter()
            .map(|item| view_of_item(item, latency, target))
            .collect()),
        DataMsg::Fail { code, why } => Err(AppError::Remote { code, why }),
        other => Err(AppError::internal(format!("bad batch reply {other:?}"))),
    }
}
