//! The application-side client handle.
//!
//! §4.1 step 8: "the application can connect to the closest instance
//! (placed at the head of the list) and send requests as in Tiera", and
//! §4.4: "if the application observes that the closest instance is down
//! then it tries to send requests to the second closest instance, and so
//! on". Applications stay *unmodified*: this is the only integration point.

use crate::msg::DataMsg;
use crate::replica::{app_rpc, AppError, OpView};
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::Arc;
use wiera_net::{Mesh, NodeId, Region};

/// An application's connection to a Wiera deployment.
pub struct WieraClient {
    mesh: Arc<Mesh<DataMsg>>,
    /// The application's own address (its region determines routing).
    pub me: NodeId,
    /// Candidate replicas, closest first.
    replicas: RwLock<Vec<NodeId>>,
}

impl WieraClient {
    /// Connect from `region`, ordering `replicas` closest-first by base RTT.
    pub fn connect(
        mesh: Arc<Mesh<DataMsg>>,
        region: Region,
        name: impl Into<String>,
        mut replicas: Vec<NodeId>,
    ) -> Arc<Self> {
        replicas.sort_by(|a, b| {
            let ra = mesh.fabric.base_rtt_ms(region, a.region);
            let rb = mesh.fabric.base_rtt_ms(region, b.region);
            ra.total_cmp(&rb)
        });
        Arc::new(WieraClient {
            mesh,
            me: NodeId::new(region, name.into()),
            replicas: RwLock::new(replicas),
        })
    }

    /// Refresh the candidate list (e.g. after `getInstances`).
    pub fn update_replicas(&self, mut replicas: Vec<NodeId>) {
        replicas.sort_by(|a, b| {
            let ra = self.mesh.fabric.base_rtt_ms(self.me.region, a.region);
            let rb = self.mesh.fabric.base_rtt_ms(self.me.region, b.region);
            ra.total_cmp(&rb)
        });
        *self.replicas.write() = replicas;
    }

    pub fn closest(&self) -> Option<NodeId> {
        self.replicas.read().first().cloned()
    }

    /// Issue an operation with closest-first failover: transport failures
    /// move to the next-closest replica; semantic errors are final.
    fn with_failover(&self, make: impl Fn() -> DataMsg) -> Result<OpView, AppError> {
        let candidates = self.replicas.read().clone();
        if candidates.is_empty() {
            return Err(AppError::Remote("no replicas configured".into()));
        }
        let mut last: Option<AppError> = None;
        for target in &candidates {
            match app_rpc(&self.mesh, &self.me, target, make()) {
                Ok(view) => return Ok(view),
                Err(AppError::Net(e)) => last = Some(AppError::Net(e)),
                Err(fatal @ AppError::Remote(_)) => return Err(fatal),
            }
        }
        Err(last.unwrap_or_else(|| AppError::Remote("all replicas failed".into())))
    }

    pub fn put(&self, key: &str, value: Bytes) -> Result<OpView, AppError> {
        self.with_failover(|| DataMsg::Put {
            key: key.to_string(),
            value: value.clone(),
        })
    }

    pub fn get(&self, key: &str) -> Result<OpView, AppError> {
        self.with_failover(|| DataMsg::Get {
            key: key.to_string(),
        })
    }

    pub fn get_version(&self, key: &str, version: u64) -> Result<OpView, AppError> {
        self.with_failover(|| DataMsg::GetVersion {
            key: key.to_string(),
            version,
        })
    }

    pub fn get_version_list(&self, key: &str) -> Result<Vec<u64>, AppError> {
        // The list itself comes back through the OpView translation; ask the
        // closest replica directly for the full vector.
        let candidates = self.replicas.read().clone();
        let mut last: Option<AppError> = None;
        for target in &candidates {
            let msg = DataMsg::GetVersionList {
                key: key.to_string(),
            };
            let bytes = msg.wire_bytes();
            match self.mesh.rpc(
                &self.me,
                target,
                msg,
                bytes,
                wiera_sim::SimDuration::from_secs(120),
            ) {
                Ok(r) => match r.msg {
                    DataMsg::VersionList { versions } => return Ok(versions),
                    DataMsg::Fail { why } => return Err(AppError::Remote(why)),
                    other => return Err(AppError::Remote(format!("bad reply {other:?}"))),
                },
                Err(e) => last = Some(AppError::Net(e)),
            }
        }
        Err(last.unwrap_or_else(|| AppError::Remote("no replicas configured".into())))
    }

    pub fn update(&self, key: &str, version: u64, value: Bytes) -> Result<OpView, AppError> {
        self.with_failover(|| DataMsg::Update {
            key: key.to_string(),
            version,
            value: value.clone(),
        })
    }

    pub fn remove(&self, key: &str) -> Result<OpView, AppError> {
        self.with_failover(|| DataMsg::Remove {
            key: key.to_string(),
        })
    }

    pub fn remove_version(&self, key: &str, version: u64) -> Result<OpView, AppError> {
        self.with_failover(|| DataMsg::RemoveVersion {
            key: key.to_string(),
            version,
        })
    }
}
