//! The application-side client handle.
//!
//! §4.1 step 8: "the application can connect to the closest instance
//! (placed at the head of the list) and send requests as in Tiera", and
//! §4.4: "if the application observes that the closest instance is down
//! then it tries to send requests to the second closest instance, and so
//! on". Applications stay *unmodified*: this is the only integration point.
//!
//! Every method funnels through one failover loop with one retry/timeout
//! policy: transport failures advance to the next-closest replica, semantic
//! (`Fail`) replies are final. The batch calls (`put_batch`/`get_batch`)
//! ship one amortized-header message per batch and report per-item results,
//! so a partial failure inside a batch never hides the items that succeeded.

use crate::msg::{DataMsg, PutItem};
use crate::replica::{view_of_item, view_of_reply, AppError, OpView, DATA_TIMEOUT};
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::Arc;
use wiera_net::{Mesh, NodeId, Region, RpcReply};

/// An application's connection to a Wiera deployment.
pub struct WieraClient {
    mesh: Arc<Mesh<DataMsg>>,
    /// The application's own address (its region determines routing).
    pub me: NodeId,
    /// Candidate replicas, closest first.
    replicas: RwLock<Vec<NodeId>>,
}

impl WieraClient {
    /// Connect from `region`, ordering `replicas` closest-first by base RTT.
    pub fn connect(
        mesh: Arc<Mesh<DataMsg>>,
        region: Region,
        name: impl Into<String>,
        mut replicas: Vec<NodeId>,
    ) -> Arc<Self> {
        replicas.sort_by(|a, b| {
            let ra = mesh.fabric.base_rtt_ms(region, a.region);
            let rb = mesh.fabric.base_rtt_ms(region, b.region);
            ra.total_cmp(&rb)
        });
        Arc::new(WieraClient {
            mesh,
            me: NodeId::new(region, name.into()),
            replicas: RwLock::new(replicas),
        })
    }

    /// Refresh the candidate list (e.g. after `getInstances`).
    pub fn update_replicas(&self, mut replicas: Vec<NodeId>) {
        replicas.sort_by(|a, b| {
            let ra = self.mesh.fabric.base_rtt_ms(self.me.region, a.region);
            let rb = self.mesh.fabric.base_rtt_ms(self.me.region, b.region);
            ra.total_cmp(&rb)
        });
        *self.replicas.write() = replicas;
    }

    pub fn closest(&self) -> Option<NodeId> {
        self.replicas.read().first().cloned()
    }

    /// Issue an operation with closest-first failover: transport failures
    /// move to the next-closest replica; whatever `parse` returns — success
    /// or a semantic error — is final. Every client method routes through
    /// here, so they all share one retry/timeout/failover policy.
    fn with_failover<T>(
        &self,
        make: impl Fn() -> DataMsg,
        parse: impl Fn(RpcReply<DataMsg>, &NodeId) -> Result<T, AppError>,
    ) -> Result<T, AppError> {
        let candidates = self.replicas.read().clone();
        if candidates.is_empty() {
            return Err(AppError::blocked("no replicas configured"));
        }
        let mut last: Option<AppError> = None;
        for target in &candidates {
            let msg = make();
            let bytes = msg.wire_bytes();
            match self.mesh.rpc(&self.me, target, msg, bytes, DATA_TIMEOUT) {
                Ok(reply) => return parse(reply, target),
                Err(e) => last = Some(AppError::Net(e)),
            }
        }
        Err(last.unwrap_or_else(|| AppError::blocked("all replicas failed")))
    }

    /// The common case: one request, one `OpView`-shaped answer.
    fn op(&self, make: impl Fn() -> DataMsg) -> Result<OpView, AppError> {
        self.with_failover(make, |reply, target| {
            let latency = reply.total();
            view_of_reply(reply.msg, latency, target)
        })
    }

    pub fn put(&self, key: &str, value: Bytes) -> Result<OpView, AppError> {
        self.op(|| DataMsg::Put {
            key: key.to_string(),
            value: value.clone(),
        })
    }

    pub fn get(&self, key: &str) -> Result<OpView, AppError> {
        self.op(|| DataMsg::Get {
            key: key.to_string(),
        })
    }

    pub fn get_version(&self, key: &str, version: u64) -> Result<OpView, AppError> {
        self.op(|| DataMsg::GetVersion {
            key: key.to_string(),
            version,
        })
    }

    pub fn get_version_list(&self, key: &str) -> Result<Vec<u64>, AppError> {
        self.with_failover(
            || DataMsg::GetVersionList {
                key: key.to_string(),
            },
            |reply, _| match reply.msg {
                DataMsg::VersionList { versions } => Ok(versions),
                DataMsg::Fail { code, why } => Err(AppError::Remote { code, why }),
                other => Err(AppError::internal(format!("bad reply {other:?}"))),
            },
        )
    }

    pub fn update(&self, key: &str, version: u64, value: Bytes) -> Result<OpView, AppError> {
        self.op(|| DataMsg::Update {
            key: key.to_string(),
            version,
            value: value.clone(),
        })
    }

    pub fn remove(&self, key: &str) -> Result<OpView, AppError> {
        self.op(|| DataMsg::Remove {
            key: key.to_string(),
        })
    }

    pub fn remove_version(&self, key: &str, version: u64) -> Result<OpView, AppError> {
        self.op(|| DataMsg::RemoveVersion {
            key: key.to_string(),
            version,
        })
    }

    /// Write a batch of keys in one request (one wire header for the whole
    /// batch). The outer `Result` is transport-level — a replica that cannot
    /// be reached fails the whole batch over to the next candidate. The
    /// inner per-item results carry semantic failures individually, so a
    /// partial failure reports exactly which items lost.
    pub fn put_batch(
        &self,
        items: &[(String, Bytes)],
    ) -> Result<Vec<Result<OpView, AppError>>, AppError> {
        let payload: Vec<PutItem> = items
            .iter()
            .map(|(key, value)| PutItem {
                key: key.clone(),
                value: value.clone(),
            })
            .collect();
        self.with_failover(
            || DataMsg::MultiPut {
                items: payload.clone(),
            },
            batch_views,
        )
    }

    /// Read a batch of keys in one request; same failover and per-item
    /// semantics as [`Self::put_batch`].
    pub fn get_batch(&self, keys: &[String]) -> Result<Vec<Result<OpView, AppError>>, AppError> {
        self.with_failover(
            || DataMsg::MultiGet {
                keys: keys.to_vec(),
            },
            batch_views,
        )
    }
}

fn batch_views(
    reply: RpcReply<DataMsg>,
    target: &NodeId,
) -> Result<Vec<Result<OpView, AppError>>, AppError> {
    let latency = reply.total();
    match reply.msg {
        DataMsg::MultiReply { results } => Ok(results
            .into_iter()
            .map(|item| view_of_item(item, latency, target))
            .collect()),
        DataMsg::Fail { code, why } => Err(AppError::Remote { code, why }),
        other => Err(AppError::internal(format!("bad batch reply {other:?}"))),
    }
}
