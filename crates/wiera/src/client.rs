//! The application-side client handle.
//!
//! §4.1 step 8: "the application can connect to the closest instance
//! (placed at the head of the list) and send requests as in Tiera", and
//! §4.4: "if the application observes that the closest instance is down
//! then it tries to send requests to the second closest instance, and so
//! on". Applications stay *unmodified*: this is the only integration point.
//!
//! Clients are built with [`WieraClient::builder`] and always route
//! through a [`FleetView`] — a versioned shard map plus the replica list
//! of every group. A single-deployment client is just the degenerate
//! one-shard, one-group view, so legacy and fleet routing share one code
//! path. Single-key operations hash the key, pick the owning group, and
//! sweep that group's replicas closest-first; the batch calls
//! (`put_batch`/`get_batch`) split the batch per owning group, fan the
//! sub-batches out concurrently, and report per-item results. A
//! `WrongShard` refusal means the map went stale under us (a shard move):
//! the client re-reads the view and re-routes rather than failing.

use crate::fleet::FleetView;
use crate::msg::{DataMsg, FailCode, PutItem};
use crate::replica::{view_of_item, view_of_reply, AppError, OpView, DATA_TIMEOUT};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use wiera_net::{Mesh, NetError, NodeId, Region, RpcReply};
use wiera_sim::{
    derive_seed, Admit, BreakerConfig, CircuitBreaker, MetricsRegistry, SimDuration, SimInstant,
    SimRng,
};

/// How many recent get latencies feed the hedged-read trigger.
const HEDGE_WINDOW: usize = 128;
/// Samples required before the p95 trigger is trusted; below this the
/// hedge fires after [`HEDGE_DEFAULT_DELAY`].
const HEDGE_MIN_SAMPLES: usize = 8;
/// Cold-start hedge delay, before enough latency samples exist.
const HEDGE_DEFAULT_DELAY: SimDuration = SimDuration::from_millis(30);

/// Client-side resilience policy. Everything here defaults to *off*, so a
/// plain-built client behaves exactly like the pre-overload code: no
/// budget envelopes on the wire, no breaker gating, no hedging.
#[derive(Debug, Clone, Default)]
struct Resilience {
    /// Per-operation budget; each op computes an absolute deadline at
    /// start, carries it in a [`DataMsg::WithBudget`] envelope, and stops
    /// retrying (and backing off) once it is spent.
    deadline: Option<SimDuration>,
    /// Consent to possibly-stale degraded reads under replica overload.
    allow_degraded: bool,
    /// Per-replica circuit breakers in the failover loop.
    breakers: bool,
    /// Latency-percentile-triggered hedged gets.
    hedged_reads: bool,
}

/// Retry behavior for the client failover loop (§4.4): candidates are swept
/// closest-first; between sweeps the client backs off exponentially with
/// seeded jitter (so a thundering herd of recovering clients decorrelates
/// deterministically), up to a total attempt cap.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Backoff before the second sweep, ms (sim time). Doubles per sweep.
    pub base_backoff_ms: f64,
    /// Backoff growth cap, ms.
    pub max_backoff_ms: f64,
    /// Total RPC attempts across all candidates and sweeps.
    pub max_attempts: u32,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_backoff_ms: 20.0,
            max_backoff_ms: 2000.0,
            max_attempts: 9,
            seed: 7,
        }
    }
}

/// Builder for [`WieraClient`]: routing source (a shared fleet view or a
/// plain replica list), retry/backoff policy, and the shard-map refresh
/// pause after a `WrongShard` redirect.
pub struct WieraClientBuilder {
    mesh: Arc<Mesh<DataMsg>>,
    region: Region,
    name: String,
    policy: RetryPolicy,
    refresh_backoff_ms: f64,
    fleet: Option<Arc<FleetView>>,
    replicas: Vec<NodeId>,
    resilience: Resilience,
}

impl WieraClientBuilder {
    /// Route through a shared fleet view (shard map + per-group replica
    /// lists). The view is live: a shard move installed into it re-routes
    /// this client on its next operation.
    pub fn fleet(mut self, view: Arc<FleetView>) -> Self {
        self.fleet = Some(view);
        self
    }

    /// Route to one replica group directly (the pre-fleet mode). Internally
    /// this still builds a one-shard [`FleetView`], so every operation takes
    /// the same shard-routing path.
    pub fn replicas(mut self, replicas: Vec<NodeId>) -> Self {
        self.replicas = replicas;
        self
    }

    /// Replace the whole retry policy.
    pub fn policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Cap total RPC attempts per operation.
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.policy.max_attempts = attempts;
        self
    }

    /// Sweep backoff: initial and cap, ms (sim time).
    pub fn backoff(mut self, base_ms: f64, max_ms: f64) -> Self {
        self.policy.base_backoff_ms = base_ms;
        self.policy.max_backoff_ms = max_ms;
        self
    }

    /// Seed for the jitter RNG (chaos campaigns pin it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.policy.seed = seed;
        self
    }

    /// How long to pause before re-resolving after a `WrongShard` refusal,
    /// ms (sim time). During a shard-move handoff the old owner already
    /// refuses and the new one does not serve yet; this is the poll period
    /// of the redirect loop.
    pub fn map_refresh_backoff_ms(mut self, ms: f64) -> Self {
        self.refresh_backoff_ms = ms;
        self
    }

    /// Give every operation a budget of `ms` (sim time). The absolute
    /// deadline travels with the request, so replicas and tiers drop work
    /// that can no longer be answered in time, and the retry loop stops
    /// sweeping (and backing off) once the budget is spent. Off by default.
    pub fn deadline_ms(mut self, ms: f64) -> Self {
        self.resilience.deadline = Some(SimDuration::from_millis_f64(ms));
        self
    }

    /// Consent to degraded reads: under overload an eventual-policy replica
    /// may answer a get from local state instead of shedding it. The reply
    /// (and [`OpView::degraded`]) carries an explicit staleness marker.
    /// Off by default.
    pub fn allow_degraded(mut self, yes: bool) -> Self {
        self.resilience.allow_degraded = yes;
        self
    }

    /// Run a circuit breaker per replica: repeated transport failures or
    /// shed (`Overloaded`) replies open the breaker, and the failover loop
    /// then skips that replica until a cooldown probe succeeds. Off by
    /// default.
    pub fn breakers(mut self, on: bool) -> Self {
        self.resilience.breakers = on;
        self
    }

    /// Hedge slow gets: when the closest replica has not answered within
    /// the client's observed p95 get latency, a second request races to the
    /// next-closest replica and the first answer wins. Off by default.
    pub fn hedged_reads(mut self, on: bool) -> Self {
        self.resilience.hedged_reads = on;
        self
    }

    pub fn build(self) -> Arc<WieraClient> {
        let fleet = self
            .fleet
            .unwrap_or_else(|| FleetView::single_group(self.replicas));
        let me = NodeId::new(self.region, self.name);
        let rng = SimRng::new(derive_seed(self.policy.seed, me.name.as_ref()));
        Arc::new(WieraClient {
            mesh: self.mesh,
            me,
            fleet,
            policy: self.policy,
            refresh_backoff: SimDuration::from_millis_f64(self.refresh_backoff_ms),
            rng: Mutex::new(rng),
            resilience: self.resilience,
            breakers: Mutex::new(HashMap::new()),
            get_window: Mutex::new(VecDeque::new()),
        })
    }
}

/// An application's connection to a Wiera deployment or fleet.
pub struct WieraClient {
    mesh: Arc<Mesh<DataMsg>>,
    /// The application's own address (its region determines routing).
    pub me: NodeId,
    /// Shard map + group membership this client routes through.
    fleet: Arc<FleetView>,
    policy: RetryPolicy,
    refresh_backoff: SimDuration,
    /// Jitter source, derived from the policy seed and the client name.
    rng: Mutex<SimRng>,
    /// Overload-resilience policy (all off unless the builder enabled it).
    resilience: Resilience,
    /// One breaker per replica this client has talked to (lazily created).
    breakers: Mutex<HashMap<NodeId, Arc<CircuitBreaker>>>,
    /// Recent get latencies (ms), the hedged-read p95 trigger source.
    get_window: Mutex<VecDeque<f64>>,
}

impl WieraClient {
    /// Start building a client that connects from `region` as `name`.
    pub fn builder(
        mesh: Arc<Mesh<DataMsg>>,
        region: Region,
        name: impl Into<String>,
    ) -> WieraClientBuilder {
        WieraClientBuilder {
            mesh,
            region,
            name: name.into(),
            policy: RetryPolicy::default(),
            refresh_backoff_ms: 50.0,
            fleet: None,
            replicas: Vec::new(),
            resilience: Resilience::default(),
        }
    }

    /// Connect from `region` to one replica group.
    #[deprecated(
        since = "0.7.0",
        note = "use WieraClient::builder(..).replicas(..).build(); \
                direct replica addressing is a one-group shard map"
    )]
    pub fn connect(
        mesh: Arc<Mesh<DataMsg>>,
        region: Region,
        name: impl Into<String>,
        replicas: Vec<NodeId>,
    ) -> Arc<Self> {
        Self::builder(mesh, region, name).replicas(replicas).build()
    }

    /// [`Self::builder`] shorthand with an explicit retry policy.
    #[deprecated(
        since = "0.7.0",
        note = "use WieraClient::builder(..).replicas(..).policy(..).build()"
    )]
    pub fn connect_with_policy(
        mesh: Arc<Mesh<DataMsg>>,
        region: Region,
        name: impl Into<String>,
        replicas: Vec<NodeId>,
        policy: RetryPolicy,
    ) -> Arc<Self> {
        Self::builder(mesh, region, name)
            .replicas(replicas)
            .policy(policy)
            .build()
    }

    /// The fleet view this client routes through.
    pub fn fleet(&self) -> Arc<FleetView> {
        self.fleet.clone()
    }

    /// Refresh the candidate list (e.g. after `getInstances`). Legacy
    /// single-group API: replaces group 0 of the client's view.
    pub fn update_replicas(&self, replicas: Vec<NodeId>) {
        self.fleet.set_group(0, replicas);
    }

    /// The closest replica across the whole fleet, by base RTT.
    pub fn closest(&self) -> Option<NodeId> {
        let mut all = self.fleet.all_replicas();
        self.sort_by_rtt(&mut all);
        all.into_iter().next()
    }

    fn sort_by_rtt(&self, replicas: &mut [NodeId]) {
        replicas.sort_by(|a, b| {
            let ra = self.mesh.fabric.base_rtt_ms(self.me.region, a.region);
            let rb = self.mesh.fabric.base_rtt_ms(self.me.region, b.region);
            ra.total_cmp(&rb)
        });
    }

    /// The replicas of the group that owns `key` under the current map,
    /// closest first.
    fn candidates_for(&self, key: &str) -> Vec<NodeId> {
        let group = self.fleet.map().group_of(key);
        let mut reps = self.fleet.group_replicas(group);
        self.sort_by_rtt(&mut reps);
        reps
    }

    /// Sorted replicas of an explicit group (batch fan-out path).
    fn candidates_of_group(&self, group: u32) -> Vec<NodeId> {
        let mut reps = self.fleet.group_replicas(group);
        self.sort_by_rtt(&mut reps);
        reps
    }

    /// The breaker guarding `node`, created on first contact.
    fn breaker_for(&self, node: &NodeId) -> Arc<CircuitBreaker> {
        self.breakers
            .lock()
            .entry(node.clone())
            .or_insert_with(|| {
                Arc::new(CircuitBreaker::new(
                    format!("client:{}", node.name),
                    BreakerConfig::default(),
                ))
            })
            .clone()
    }

    /// This op's absolute deadline, if the client carries a budget.
    fn op_deadline(&self) -> Option<SimInstant> {
        self.resilience
            .deadline
            .map(|d| self.mesh.clock.now() + d)
    }

    /// Wrap a request in the budget envelope when the client has one (or
    /// consents to degraded reads). A client with neither sends the bare
    /// message — bit-identical wire traffic to the pre-overload code.
    fn wrap_budget(&self, deadline: Option<SimInstant>, msg: DataMsg) -> DataMsg {
        if deadline.is_none() && !self.resilience.allow_degraded {
            return msg;
        }
        DataMsg::WithBudget {
            deadline_us: deadline.map(|t| t.elapsed_since(SimInstant::EPOCH).as_micros()),
            allow_degraded: self.resilience.allow_degraded,
            inner: Box::new(msg),
        }
    }

    fn budget_spent(why: &str) -> AppError {
        AppError::Remote {
            code: FailCode::DeadlineExceeded,
            why: why.into(),
        }
    }

    /// Issue an operation with closest-first failover over the candidates
    /// `resolve` yields (re-resolved each sweep — a failover or shard move
    /// may have refreshed the list): transport failures, stale-epoch
    /// refusals and shed (`Overloaded`) replies advance to the next-closest
    /// replica; a `WrongShard` refusal returns immediately (every replica of
    /// the group shares the same ownership view, so the *caller* must
    /// re-route on a fresh map); any other semantic (`Fail`) reply is final
    /// — it came from a live replica that understood the request, so
    /// retrying elsewhere can only mask the answer. After a full sweep of
    /// the candidate list the client backs off (exponential + seeded jitter,
    /// sim-time) and sweeps again until the attempt cap — or until the op's
    /// budget is spent, when a deadline is configured. With breakers
    /// enabled, candidates whose breaker refuses admission are skipped
    /// without touching them, and every call that does go out settles its
    /// breaker (success for any reply except a shed, failure for transport
    /// errors and sheds). Every client method routes through here, so they
    /// all share one retry/timeout/failover policy.
    fn with_failover<T>(
        &self,
        deadline: Option<SimInstant>,
        resolve: impl Fn() -> Vec<NodeId>,
        make: impl Fn() -> DataMsg,
        parse: impl Fn(RpcReply<DataMsg>, &NodeId) -> Result<T, AppError>,
    ) -> Result<T, AppError> {
        let mut attempts: u32 = 0;
        let mut sweep: u32 = 0;
        let mut last: Option<AppError> = None;
        loop {
            let candidates = resolve();
            if candidates.is_empty() {
                return Err(AppError::blocked("no replicas configured"));
            }
            for target in &candidates {
                if attempts >= self.policy.max_attempts {
                    return Err(last.unwrap_or_else(|| AppError::blocked("all replicas failed")));
                }
                if deadline.is_some_and(|dl| self.mesh.clock.now() >= dl) {
                    return Err(last
                        .unwrap_or_else(|| Self::budget_spent("op budget spent mid-failover")));
                }
                // Breaker gating: an open breaker skips the replica without
                // touching it. `admit` may hand out a half-open probe slot,
                // so every admitted call below MUST settle the breaker.
                let breaker = if self.resilience.breakers {
                    let b = self.breaker_for(target);
                    match b.admit(self.mesh.clock.now()) {
                        Admit::No => {
                            self.note_retry("breaker-open");
                            continue;
                        }
                        Admit::Yes | Admit::Probe => Some(b),
                    }
                } else {
                    None
                };
                attempts += 1;
                let msg = self.wrap_budget(deadline, make());
                let bytes = msg.wire_bytes();
                let outcome = self.mesh.rpc(&self.me, target, msg, bytes, DATA_TIMEOUT);
                if let Some(b) = &breaker {
                    match &outcome {
                        // A shed reply is the overload signal the breaker
                        // exists for; any other reply proves liveness.
                        Ok(RpcReply {
                            msg:
                                DataMsg::Fail {
                                    code: FailCode::Overloaded,
                                    ..
                                },
                            ..
                        })
                        | Err(_) => b.record_failure(self.mesh.clock.now()),
                        Ok(reply) => b.record_success(self.mesh.clock.now(), reply.total()),
                    }
                }
                match outcome {
                    // A fenced (deposed-epoch) refusal means the deployment
                    // just failed over: retry, the next candidate (or the
                    // next sweep) will be current.
                    Ok(RpcReply {
                        msg:
                            DataMsg::Fail {
                                code: FailCode::StaleEpoch,
                                why,
                            },
                        ..
                    }) => {
                        self.note_retry("stale-epoch");
                        last = Some(AppError::Remote {
                            code: FailCode::StaleEpoch,
                            why,
                        });
                    }
                    // A shed: this replica refuses new client load but
                    // another may have headroom — advance.
                    Ok(RpcReply {
                        msg:
                            DataMsg::Fail {
                                code: FailCode::Overloaded,
                                why,
                            },
                        ..
                    }) => {
                        self.note_retry("overloaded");
                        last = Some(AppError::Remote {
                            code: FailCode::Overloaded,
                            why,
                        });
                    }
                    // The group does not own the key's shard (stale map or
                    // mid-move handoff): bubble up for re-routing.
                    Ok(RpcReply {
                        msg:
                            DataMsg::Fail {
                                code: FailCode::WrongShard,
                                why,
                            },
                        ..
                    }) => {
                        return Err(AppError::Remote {
                            code: FailCode::WrongShard,
                            why,
                        });
                    }
                    Ok(reply) => return parse(reply, target),
                    Err(e) => {
                        self.note_retry(match &e {
                            NetError::Timeout(_) => "timeout",
                            _ => "unreachable",
                        });
                        last = Some(AppError::Net(e));
                    }
                }
            }
            if attempts >= self.policy.max_attempts {
                return Err(last.unwrap_or_else(|| AppError::blocked("all replicas failed")));
            }
            // Whole list down (or fenced): back off before the next sweep —
            // but never sleep past the op's deadline.
            let exp = self.policy.base_backoff_ms * f64::powi(2.0, sweep as i32);
            let capped = exp.min(self.policy.max_backoff_ms);
            let jitter = self.rng.lock().gen_range_f64(0.0, capped);
            let mut pause = SimDuration::from_millis_f64(capped + jitter);
            if let Some(dl) = deadline {
                let now = self.mesh.clock.now();
                if now >= dl {
                    return Err(
                        last.unwrap_or_else(|| Self::budget_spent("op budget spent mid-failover"))
                    );
                }
                pause = pause.min(dl.elapsed_since(now));
            }
            self.mesh.clock.sleep(pause);
            sweep += 1;
        }
    }

    fn note_retry(&self, reason: &str) {
        MetricsRegistry::global().inc("client_retries", &[("reason", reason)]);
    }

    /// Route a single-key operation: hash the key to its owning group,
    /// sweep that group with failover, and on a `WrongShard` refusal pause
    /// briefly and re-resolve from the (live) view — the redirect loop of
    /// the fleet API. Redirects share the operation's attempt budget.
    fn routed<T>(
        &self,
        key: &str,
        make: impl Fn() -> DataMsg,
        parse: impl Fn(RpcReply<DataMsg>, &NodeId) -> Result<T, AppError>,
    ) -> Result<T, AppError> {
        let deadline = self.op_deadline();
        let mut redirects: u32 = 0;
        loop {
            let result = self.with_failover(deadline, || self.candidates_for(key), &make, &parse);
            match result {
                Err(e) if e.code() == Some(FailCode::WrongShard) => {
                    redirects += 1;
                    if redirects >= self.policy.max_attempts {
                        return Err(e);
                    }
                    if deadline.is_some_and(|dl| self.mesh.clock.now() >= dl) {
                        return Err(Self::budget_spent("op budget spent during re-routing"));
                    }
                    self.note_retry("wrong-shard");
                    self.mesh.clock.sleep(self.refresh_backoff);
                }
                other => return other,
            }
        }
    }

    /// The common case: one request, one `OpView`-shaped answer.
    fn op(&self, key: &str, make: impl Fn() -> DataMsg) -> Result<OpView, AppError> {
        self.routed(key, make, |reply, target| {
            let latency = reply.total();
            view_of_reply(reply.msg, latency, target)
        })
    }

    pub fn put(&self, key: &str, value: Bytes) -> Result<OpView, AppError> {
        self.op(key, || DataMsg::Put {
            key: key.to_string(),
            value: value.clone(),
        })
    }

    pub fn get(&self, key: &str) -> Result<OpView, AppError> {
        if self.resilience.hedged_reads {
            if let Some(raced) = self.hedged_get(key) {
                if let Ok(view) = &raced {
                    self.record_get_latency(view.latency);
                }
                return raced;
            }
        }
        let out = self.op(key, || DataMsg::Get {
            key: key.to_string(),
        });
        if let Ok(view) = &out {
            self.record_get_latency(view.latency);
        }
        out
    }

    fn record_get_latency(&self, latency: SimDuration) {
        let mut w = self.get_window.lock();
        w.push_back(latency.as_millis_f64());
        while w.len() > HEDGE_WINDOW {
            w.pop_front();
        }
    }

    /// When to fire the hedge: the p95 of this client's recent get
    /// latencies, or a fixed cold-start delay before enough samples exist.
    fn hedge_delay(&self) -> SimDuration {
        let w = self.get_window.lock();
        if w.len() < HEDGE_MIN_SAMPLES {
            return HEDGE_DEFAULT_DELAY;
        }
        let mut v: Vec<f64> = w.iter().copied().collect();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() as f64 * 0.95).ceil() as usize).clamp(1, v.len()) - 1;
        SimDuration::from_millis_f64(v[idx].max(1.0))
    }

    /// Race a get against the two closest replicas of the owning group: the
    /// primary attempt goes out immediately, the hedge follows after
    /// [`Self::hedge_delay`] unless the primary already answered, and the
    /// first well-formed reply wins. The legs are detached threads — the
    /// caller returns as soon as one leg is decisive, it never waits for
    /// the loser (a hedge that cannot abandon a slow primary bounds
    /// nothing). Transport failures on both legs return `None` so the
    /// caller falls back to the full failover sweep (which owns
    /// retry/backoff policy); a semantic reply from either leg is final.
    /// Hedges never consult breakers for admission (the race *is* the
    /// latency hedge) but each leg settles its outcome into them even when
    /// it loses, so a browned-out primary still accumulates evidence.
    fn hedged_get(&self, key: &str) -> Option<Result<OpView, AppError>> {
        let candidates = self.candidates_for(key);
        if candidates.len() < 2 {
            return None;
        }
        let deadline = self.op_deadline();
        let primary = candidates[0].clone();
        let hedge = candidates[1].clone();
        let delay = self.hedge_delay();
        let (tx, rx) = crossbeam::channel::unbounded();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        type Leg = Option<(Result<RpcReply<DataMsg>, NetError>, NodeId)>;
        let spawn_leg = |target: NodeId, fire_after: Option<SimDuration>| {
            let mesh = self.mesh.clone();
            let me = self.me.clone();
            let breaker = self.resilience.breakers.then(|| self.breaker_for(&target));
            let msg = self.wrap_budget(
                deadline,
                DataMsg::Get {
                    key: key.to_string(),
                },
            );
            let tx = tx.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                if let Some(wait) = fire_after {
                    mesh.clock.sleep(wait);
                    if done.load(std::sync::atomic::Ordering::Acquire) {
                        let leg: Leg = None;
                        let _ = tx.send(leg);
                        return;
                    }
                    MetricsRegistry::global().inc("client_hedges", &[("event", "fired")]);
                }
                let bytes = msg.wire_bytes();
                let out = mesh.rpc(&me, &target, msg, bytes, DATA_TIMEOUT);
                if let Some(b) = breaker {
                    match &out {
                        Ok(RpcReply {
                            msg:
                                DataMsg::Fail {
                                    code: FailCode::Overloaded,
                                    ..
                                },
                            ..
                        })
                        | Err(_) => b.record_failure(mesh.clock.now()),
                        Ok(reply) => b.record_success(mesh.clock.now(), reply.total()),
                    }
                }
                let leg: Leg = Some((out, target));
                let _ = tx.send(leg);
            });
        };
        spawn_leg(primary, None);
        spawn_leg(hedge.clone(), Some(delay));
        drop(tx);
        let mut legs = 0;
        while legs < 2 {
            let Ok(leg) = rx.recv() else { break };
            legs += 1;
            let Some((outcome, target)) = leg else {
                continue; // hedge skipped: the primary had answered
            };
            match outcome {
                Ok(reply) => {
                    let latency = reply.total();
                    match reply.msg {
                        // Retryable refusals are not answers: leave the
                        // race open for the other leg, and fall back to
                        // the failover sweep (which owns retry and
                        // re-routing policy) if both legs refuse.
                        DataMsg::Fail {
                            code:
                                FailCode::Overloaded | FailCode::StaleEpoch | FailCode::WrongShard,
                            ..
                        } => {}
                        msg => {
                            done.store(true, std::sync::atomic::Ordering::Release);
                            let won = if target == hedge {
                                "hedge-won"
                            } else {
                                "primary-won"
                            };
                            MetricsRegistry::global().inc("client_hedges", &[("event", won)]);
                            return Some(view_of_reply(msg, latency, &target));
                        }
                    }
                }
                // Transport failure: let the other leg (or the caller's
                // failover sweep) decide.
                Err(_) => {}
            }
        }
        None
    }

    pub fn get_version(&self, key: &str, version: u64) -> Result<OpView, AppError> {
        self.op(key, || DataMsg::GetVersion {
            key: key.to_string(),
            version,
        })
    }

    pub fn get_version_list(&self, key: &str) -> Result<Vec<u64>, AppError> {
        self.routed(
            key,
            || DataMsg::GetVersionList {
                key: key.to_string(),
            },
            |reply, _| match reply.msg {
                DataMsg::VersionList { versions } => Ok(versions),
                DataMsg::Fail { code, why } => Err(AppError::Remote { code, why }),
                other => Err(AppError::internal(format!("bad reply {other:?}"))),
            },
        )
    }

    pub fn update(&self, key: &str, version: u64, value: Bytes) -> Result<OpView, AppError> {
        self.op(key, || DataMsg::Update {
            key: key.to_string(),
            version,
            value: value.clone(),
        })
    }

    pub fn remove(&self, key: &str) -> Result<OpView, AppError> {
        self.op(key, || DataMsg::Remove {
            key: key.to_string(),
        })
    }

    pub fn remove_version(&self, key: &str, version: u64) -> Result<OpView, AppError> {
        self.op(key, || DataMsg::RemoveVersion {
            key: key.to_string(),
            version,
        })
    }

    /// Write a batch of keys in one request per owning group (one wire
    /// header per sub-batch). The batch is split by shard ownership, the
    /// sub-batches fan out concurrently, and per-item results are returned
    /// in input order, so a partial failure never hides the items that
    /// succeeded. A group whose sub-batch is refused `WrongShard` is
    /// re-split on the refreshed map and retried; a group that stays
    /// unreachable fails only its own items.
    pub fn put_batch(
        &self,
        items: &[(String, Bytes)],
    ) -> Result<Vec<Result<OpView, AppError>>, AppError> {
        let payload: Vec<PutItem> = items
            .iter()
            .map(|(key, value)| PutItem {
                key: key.clone(),
                value: value.clone(),
            })
            .collect();
        self.fan_out(
            &items.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            |idxs| DataMsg::MultiPut {
                items: idxs.iter().map(|&i| payload[i].clone()).collect(),
            },
        )
    }

    /// Read a batch of keys; same splitting, fan-out, and per-item
    /// semantics as [`Self::put_batch`].
    pub fn get_batch(&self, keys: &[String]) -> Result<Vec<Result<OpView, AppError>>, AppError> {
        self.fan_out(
            &keys.iter().map(String::as_str).collect::<Vec<_>>(),
            |idxs| DataMsg::MultiGet {
                keys: idxs.iter().map(|&i| keys[i].clone()).collect(),
            },
        )
    }

    /// Split item indices by owning group under the current map, issue one
    /// group message per group concurrently, and stitch per-item results
    /// back in input order. Indices whose group answers `WrongShard` are
    /// re-split on the next round (the map moved under us); the redirect
    /// round count is capped by the retry policy's attempt budget.
    fn fan_out(
        &self,
        keys: &[&str],
        make_group_msg: impl Fn(&[usize]) -> DataMsg + Sync,
    ) -> Result<Vec<Result<OpView, AppError>>, AppError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let deadline = self.op_deadline();
        let mut results: Vec<Option<Result<OpView, AppError>>> =
            (0..keys.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..keys.len()).collect();
        let mut rounds: u32 = 0;
        let mut last_refusal: Option<AppError> = None;
        while !pending.is_empty() {
            let map = self.fleet.map();
            let mut by_group: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for &i in &pending {
                by_group.entry(map.group_of(keys[i])).or_default().push(i);
            }
            let make_ref = &make_group_msg;
            type GroupOutcome = (Vec<usize>, Result<Vec<Result<OpView, AppError>>, AppError>);
            let outcomes: Vec<GroupOutcome> = std::thread::scope(|s| {
                let handles: Vec<_> = by_group
                    .into_iter()
                    .map(|(group, idxs)| {
                        s.spawn(move || {
                            let result = self.with_failover(
                                deadline,
                                || self.candidates_of_group(group),
                                || make_ref(&idxs),
                                batch_views,
                            );
                            (idxs, result)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(outcome) => outcome,
                        Err(_) => (
                            Vec::new(),
                            Err(AppError::internal("batch fan-out worker panicked")),
                        ),
                    })
                    .collect()
            });
            let mut wrong: Vec<usize> = Vec::new();
            for (idxs, result) in outcomes {
                match result {
                    Ok(views) => {
                        for (i, view) in idxs.into_iter().zip(views) {
                            results[i] = Some(view);
                        }
                    }
                    Err(e) if e.code() == Some(FailCode::WrongShard) => {
                        last_refusal = Some(e);
                        wrong.extend(idxs);
                    }
                    Err(e) => {
                        for i in idxs {
                            results[i] = Some(Err(e.clone()));
                        }
                    }
                }
            }
            pending = wrong;
            if pending.is_empty() {
                break;
            }
            rounds += 1;
            if rounds >= self.policy.max_attempts {
                let e = last_refusal
                    .take()
                    .unwrap_or_else(|| AppError::blocked("shard map never settled"));
                for i in pending.drain(..) {
                    results[i] = Some(Err(e.clone()));
                }
                break;
            }
            self.note_retry("wrong-shard");
            self.mesh.clock.sleep(self.refresh_backoff);
        }
        Ok(results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Err(AppError::internal("batch item unreached"))))
            .collect())
    }
}

fn batch_views(
    reply: RpcReply<DataMsg>,
    target: &NodeId,
) -> Result<Vec<Result<OpView, AppError>>, AppError> {
    let latency = reply.total();
    match reply.msg {
        DataMsg::MultiReply { results } => Ok(results
            .into_iter()
            .map(|item| view_of_item(item, latency, target))
            .collect()),
        DataMsg::Fail { code, why } => Err(AppError::Remote { code, why }),
        other => Err(AppError::internal(format!("bad batch reply {other:?}"))),
    }
}
