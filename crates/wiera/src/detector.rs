//! Failure detection (§4.4): a dedicated thread per backup replica watching
//! the primary's coord lease and heartbeat silence through the fabric.
//!
//! Detection combines two signals, both of which must agree before a node
//! is declared suspect:
//!
//! * **lease expiry** — every replica holds an ephemeral lease znode in
//!   coord ([`crate::replica::lease_path`]); when a node crashes or its
//!   heartbeats stop, the coord sweeper expires the session and the lease
//!   vanishes within `session_timeout + sweep_interval` sim-time;
//! * **probe silence** — direct [`DataMsg::Ping`] probes through the mesh;
//!   a partitioned-but-alive node also goes silent here, while a node that
//!   merely lost its coord session (but still answers pings) is *not*
//!   deposed on lease expiry alone.
//!
//! Once a primary has had no lease *and* no successful probe for
//! `suspect_after_ms`, the detector hands over to
//! [`crate::replica::ReplicaNode::run_election`]: racing backups serialize
//! on a deployment-wide coord lock, the winner bumps the epoch and
//! broadcasts `ChangePrimary`, and epoch fencing keeps the deposed
//! primary's late writes out. The worst-case sim-time from crash to an
//! elected replacement is bounded by
//! `session_timeout + sweep_interval + suspect_after + check_every` plus
//! one election round trip.

use crate::monitor::MonitorHandle;
use crate::msg::{DataMsg, DetectorSpec};
use crate::replica::{lease_path, ReplicaNode};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wiera_net::NodeId;
use wiera_sim::{MetricsRegistry, SimDuration, SimInstant};

/// Probe timeout: short, so a dead primary doesn't stall the detector loop
/// (the mesh fails fast on unreachable peers anyway).
const PROBE_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// The failure-detection thread. One runs per replica; only backups act on
/// what it sees (the primary has no one to depose).
pub struct FailureDetector;

impl FailureDetector {
    pub fn start(replica: Arc<ReplicaNode>, spec: DetectorSpec) -> Result<MonitorHandle, String> {
        let stop = Arc::new(AtomicBool::new(false));
        let triggers = Arc::new(AtomicU64::new(0));
        let stop2 = stop.clone();
        let triggers2 = triggers.clone();
        std::thread::Builder::new()
            .name(format!("detector-{}", replica.node))
            .spawn(move || {
                let clock = replica.mesh().clock.clone();
                let check = SimDuration::from_millis_f64(spec.check_every_ms);
                let suspect_after = SimDuration::from_millis_f64(spec.suspect_after_ms);
                // Last time the watched primary showed a sign of life, and
                // who we were watching when we saw it.
                let mut last_seen: Option<(NodeId, SimInstant)> = None;
                loop {
                    clock.sleep(check);
                    if stop2.load(Ordering::Acquire) {
                        return;
                    }
                    if replica.is_stopped() {
                        // A crashed node must not keep probing; resume when
                        // (if) the node restarts.
                        last_seen = None;
                        continue;
                    }
                    let Some(primary) = replica.primary() else {
                        last_seen = None;
                        continue;
                    };
                    if primary == replica.node {
                        last_seen = None;
                        continue;
                    }
                    let now = clock.now();
                    // Primary changed since the last tick: restart the clock.
                    match &last_seen {
                        Some((watched, _)) if *watched == primary => {}
                        _ => last_seen = Some((primary.clone(), now)),
                    }
                    // Signal 1: the ephemeral lease znode. Coord errors
                    // (service unreachable from here) count as "alive" —
                    // losing our own coord link is not evidence about the
                    // primary.
                    let lease_ok = match replica.coord_client() {
                        Some(coord) => coord.exists(&lease_path(&primary)).unwrap_or(true),
                        None => true,
                    };
                    // Signal 2: a direct probe through the fabric.
                    let ping = DataMsg::Ping;
                    let bytes = ping.wire_bytes();
                    let ping_ok = replica
                        .mesh()
                        .rpc(&replica.node, &primary, ping, bytes, PROBE_TIMEOUT)
                        .is_ok_and(|r| matches!(r.msg, DataMsg::Pong));
                    if ping_ok || lease_ok {
                        if ping_ok {
                            last_seen = Some((primary.clone(), now));
                        }
                        continue;
                    }
                    let silent_since = last_seen.as_ref().map(|(_, t)| *t).unwrap_or(now);
                    if now.elapsed_since(silent_since) < suspect_after {
                        continue;
                    }
                    // No lease, no answer, long enough: declare suspect.
                    // The event is scoped to the replica's shard group: in a
                    // fleet there is one primary per group, and a suspect in
                    // group 3 says nothing about the other groups' leaders.
                    let region = replica.node.region.to_string();
                    let group = replica
                        .shard_group()
                        .map(|g| g.to_string())
                        .unwrap_or_else(|| "-".into());
                    MetricsRegistry::global().inc(
                        "wiera_suspects",
                        &[("region", region.as_str()), ("group", group.as_str())],
                    );
                    triggers2.fetch_add(1, Ordering::Relaxed);
                    replica.run_election(&primary);
                    // Whatever happened — we won, another backup won, or the
                    // election aborted — restart observation from scratch.
                    last_seen = None;
                }
            })
            .map_err(|e| format!("cannot spawn failure detector: {e}"))?;
        Ok(MonitorHandle::new(stop, triggers))
    }
}
