//! Fleet sharding: many replica groups behind one consistent-hash map.
//!
//! One Wiera deployment replicates every object to all of its replicas,
//! which caps aggregate throughput at a single group's write path. A
//! *fleet* launches many deployments (groups) and partitions the keyspace
//! over them with a [`ShardMap`]: keys hash onto a fixed ring, ring arcs
//! belong to shards, and each shard is owned by exactly one group. Three
//! parties share the map:
//!
//! * the **fleet manager** ([`WieraFleet`]) owns the authoritative copy
//!   and is the only writer — every ownership change goes through
//!   [`WieraFleet::move_shard`], which bumps the map version;
//! * every **replica** holds its group's slice (installed over the wire
//!   with `SetShards`) and refuses operations on keys it does not own
//!   (`WrongShard`), so a stale route is an error, never a silent
//!   misplacement;
//! * every **client** routes through a [`FleetView`], re-reading it on a
//!   `WrongShard` redirect.
//!
//! The move handoff is copy → flip → delta → install → verify → retire:
//! after the source group is flipped to the bumped map version it refuses
//! new writes for the shard, so every *acked* write is present in the
//! delta copy; the target refuses too until its own install, and clients
//! simply retry through the window. Only after the target passes a
//! digest verification does the source retire (delete) the shard.

use crate::controller::WieraController;
use crate::deployment::{DeploymentConfig, WieraDeployment};
use crate::msg::{DataMsg, KeyDigest, SyncObject};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use wiera_coord::ShardMap;
use wiera_net::{Mesh, NodeId};
use wiera_sim::{MetricsRegistry, SimDuration, Tracer};

const CTRL_TIMEOUT: SimDuration = SimDuration::from_secs(120);

/// How a fleet is laid out: the shard ring and the per-group deployment
/// template. Every group runs the same policy and deployment config — the
/// fleet scales by adding groups, not by specializing them.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Policy id (registered with the controller) every group runs.
    pub policy_id: String,
    /// Number of shards on the ring. Fixed for the fleet's lifetime;
    /// rebalancing moves shards, it never re-hashes keys.
    pub shards: u32,
    /// Virtual nodes per shard (smooths arc lengths).
    pub vnodes: u32,
    /// Initial number of replica groups.
    pub groups: u32,
    /// Deployment template; `shard_group` is overwritten per group.
    pub deployment: DeploymentConfig,
}

impl FleetConfig {
    pub fn new(policy_id: impl Into<String>) -> FleetConfig {
        FleetConfig {
            policy_id: policy_id.into(),
            shards: 64,
            vnodes: 8,
            groups: 1,
            deployment: DeploymentConfig::default(),
        }
    }

    pub fn with_groups(mut self, groups: u32) -> Self {
        self.groups = groups;
        self
    }

    pub fn with_shards(mut self, shards: u32, vnodes: u32) -> Self {
        self.shards = shards;
        self.vnodes = vnodes;
        self
    }

    pub fn with_deployment(mut self, deployment: DeploymentConfig) -> Self {
        self.deployment = deployment;
        self
    }
}

/// The client-facing routing state: the current shard map plus every
/// group's replica list. Shared behind an `Arc` between the fleet manager
/// (the writer) and all clients (readers) — installing a new map here is
/// what re-routes clients after a move.
pub struct FleetView {
    map: RwLock<Arc<ShardMap>>,
    groups: RwLock<Vec<Vec<NodeId>>>,
}

impl FleetView {
    pub fn new(map: ShardMap, groups: Vec<Vec<NodeId>>) -> Arc<FleetView> {
        Arc::new(FleetView {
            map: RwLock::new(Arc::new(map)),
            groups: RwLock::new(groups),
        })
    }

    /// The degenerate pre-fleet view: one group, one shard, every key
    /// routes to `replicas`. What the deprecated `WieraClient::connect`
    /// path builds.
    pub fn single_group(replicas: Vec<NodeId>) -> Arc<FleetView> {
        FleetView::new(ShardMap::single(), vec![replicas])
    }

    /// The current map (cheap: an `Arc` clone).
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.read().clone()
    }

    /// Install a newer map. Version-guarded like every other map holder:
    /// an older or equal version is ignored, so a racing stale writer can
    /// never regress routing. Returns whether the map was adopted.
    pub fn install(&self, map: ShardMap) -> bool {
        let mut slot = self.map.write();
        if map.version() <= slot.version() {
            return false;
        }
        *slot = Arc::new(map);
        true
    }

    /// Replace one group's replica list (membership change, repair).
    pub fn set_group(&self, group: u32, replicas: Vec<NodeId>) {
        let mut groups = self.groups.write();
        let idx = group as usize;
        if groups.len() <= idx {
            groups.resize_with(idx + 1, Vec::new);
        }
        groups[idx] = replicas;
    }

    pub fn group_replicas(&self, group: u32) -> Vec<NodeId> {
        self.groups
            .read()
            .get(group as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Every replica of every group (no particular order).
    pub fn all_replicas(&self) -> Vec<NodeId> {
        self.groups.read().iter().flatten().cloned().collect()
    }

    pub fn num_groups(&self) -> usize {
        self.groups.read().len()
    }
}

/// A running fleet: `groups` deployments launched through the controller,
/// the authoritative shard map, and the rebalancing protocol.
pub struct WieraFleet {
    pub id: String,
    controller: Arc<WieraController>,
    mesh: Arc<Mesh<DataMsg>>,
    /// The from-node of fleet control RPCs.
    from: NodeId,
    view: Arc<FleetView>,
    /// Group deployments, indexed by group id.
    deployments: RwLock<Vec<Arc<WieraDeployment>>>,
    config: FleetConfig,
}

fn group_id(fleet: &str, group: u32) -> String {
    // No '/' — the per-deployment election lock is keyed on the first
    // '/'-segment of replica names, so a slash here would collapse every
    // group's election onto one lock.
    format!("{fleet}-g{group}")
}

impl WieraFleet {
    /// Launch `config.groups` deployments of `config.policy_id` and
    /// install every group's initial shard slice.
    pub fn launch(
        controller: Arc<WieraController>,
        mesh: Arc<Mesh<DataMsg>>,
        id: &str,
        config: FleetConfig,
    ) -> Result<Arc<WieraFleet>, String> {
        let map = ShardMap::new(config.shards, config.vnodes, config.groups)?;
        let mut deployments = Vec::new();
        let mut groups = Vec::new();
        for g in 0..config.groups {
            let mut dep_cfg = config.deployment.clone();
            dep_cfg.shard_group = Some(g);
            let dep = controller.start_instances(&group_id(id, g), &config.policy_id, dep_cfg)?;
            groups.push(dep.replicas());
            deployments.push(dep);
        }
        let from = NodeId::new(controller.node.region, format!("{id}/fleet"));
        let fleet = Arc::new(WieraFleet {
            id: id.to_string(),
            controller,
            mesh,
            from,
            view: FleetView::new(map.clone(), groups),
            deployments: RwLock::new(deployments),
            config,
        });
        for g in 0..map.num_groups() {
            fleet.install_group_slice(&map, g, &fleet.view.group_replicas(g), true)?;
        }
        Ok(fleet)
    }

    /// The routing view to hand to clients (`WieraClient::builder(..)
    /// .fleet(..)`).
    pub fn view(&self) -> Arc<FleetView> {
        self.view.clone()
    }

    pub fn num_groups(&self) -> u32 {
        self.deployments.read().len() as u32
    }

    pub fn group(&self, group: u32) -> Option<Arc<WieraDeployment>> {
        self.deployments.read().get(group as usize).cloned()
    }

    /// Launch one more (empty) group: it owns no shards and refuses every
    /// key until [`WieraFleet::move_shard`] grants it one. Elastic
    /// scale-out is `add_group()` followed by a batch of moves.
    pub fn add_group(&self) -> Result<u32, String> {
        let g = self.num_groups();
        let mut dep_cfg = self.config.deployment.clone();
        dep_cfg.shard_group = Some(g);
        let dep = self.controller.start_instances(
            &group_id(&self.id, g),
            &self.config.policy_id,
            dep_cfg,
        )?;
        let reps = dep.replicas();
        self.deployments.write().push(dep);
        self.view.set_group(g, reps.clone());
        let map = self.view.map();
        self.install_group_slice(&map, g, &reps, true)?;
        Ok(g)
    }

    /// Move `shard` to `to_group` with the drained handoff: flush → copy →
    /// flip source → delta copy → install target → verify → re-route
    /// clients → retire source. Between the source flip and the target
    /// install nobody serves the shard — both sides refuse `WrongShard`
    /// and clients retry — which is exactly what makes the handoff safe:
    /// an *acked* write either predates the flip (and rides the delta
    /// copy) or postdates the target install (and lives there already).
    pub fn move_shard(&self, shard: u32, to_group: u32) -> Result<(), String> {
        let old = self.view.map();
        if shard >= old.num_shards() {
            return Err(format!(
                "shard {shard} out of range (fleet has {})",
                old.num_shards()
            ));
        }
        if to_group >= self.num_groups() {
            return Err(format!(
                "group {to_group} not launched (fleet has {} groups)",
                self.num_groups()
            ));
        }
        let src = old.group_of_shard(shard);
        if src == to_group {
            return Ok(());
        }
        MetricsRegistry::global().inc("wiera_shard_moves", &[("fleet", self.id.as_str())]);
        Tracer::global().point(
            self.mesh.clock.now(),
            "fleet",
            "move_shard",
            Some(format!("{} shard {shard}: g{src} -> g{to_group}", self.id)),
        );

        let src_reps = self.view.group_replicas(src);
        let dst_reps = self.view.group_replicas(to_group);
        let dst_primary = self
            .group(to_group)
            .and_then(|d| d.primary())
            .or_else(|| dst_reps.first().cloned())
            .ok_or_else(|| format!("target group {to_group} has no replicas"))?;

        // 1. Drain the source's async replication queues so the dump below
        //    sees every acked write. Best-effort per replica (a crashed
        //    backup has nothing queued that was acked anywhere).
        for r in &src_reps {
            let _ = self.rpc_ok(r, DataMsg::FlushQueue);
        }

        // 2. Bulk copy while the source still serves (long tail of data
        //    moves without blocking anyone).
        let objects = self.collect_shard(&old, shard, &src_reps);
        self.load_into(&dst_reps, &dst_primary, &objects)?;

        // 3. Flip the source to the bumped map: from here on the source
        //    group refuses the shard, so the delta below is final. Strict —
        //    a source replica that never flips could serve stale routes
        //    and later refuse the retire, so the move aborts instead.
        let new = old.assign(shard, to_group)?;
        self.install_group_slice(&new, src, &src_reps, true)?;

        // 4. Delta copy: writes acked between the bulk copy and the flip.
        let objects = self.collect_shard(&new, shard, &src_reps);
        self.load_into(&dst_reps, &dst_primary, &objects)?;

        // 5. The target takes ownership and starts serving. The target
        //    primary must ack; a crashed backup catches up via restart
        //    anti-entropy and a later `refresh_shard_views`.
        self.install_group_slice(&new, to_group, &dst_reps, false)?;

        // 6. Verify the handoff before anything is deleted: every key the
        //    source holds for the shard exists at the target at an
        //    equal-or-newer version (one straggler repair pull allowed).
        self.verify_handoff(&new, shard, &src_reps, &dst_primary, &dst_reps)?;

        // 7. Re-route clients.
        self.view.install(new.clone());

        // 8. Retire: the source group deletes the shard's objects. The
        //    replica double-checks (map version current, shard no longer
        //    owned) before deleting anything.
        for r in &src_reps {
            self.rpc_ok(
                r,
                DataMsg::DropShard {
                    shard,
                    map_version: new.version(),
                },
            )
            .map_err(|e| format!("retire on {r}: {e}"))?;
        }
        Ok(())
    }

    /// Re-push every group's current shard slice (same map version).
    /// Best-effort heal after chaos: a replica that restarted with a stale
    /// ownership view re-adopts the current one. Returns how many replicas
    /// acked.
    pub fn refresh_shard_views(&self) -> usize {
        let map = self.view.map();
        let mut acked = 0;
        for g in 0..self.num_groups() {
            for r in &self.view.group_replicas(g) {
                let msg = DataMsg::SetShards {
                    shards: map.shards_of_group(g),
                    num_shards: map.num_shards(),
                    vnodes: map.vnodes(),
                    map_version: map.version(),
                };
                if self.rpc_ok(r, msg).is_ok() {
                    acked += 1;
                }
            }
        }
        acked
    }

    /// Stop every group deployment.
    pub fn stop_all(&self) {
        let n = self.num_groups();
        for g in 0..n {
            let _ = self.controller.stop_instances(&group_id(&self.id, g));
        }
    }

    // ---- handoff internals -------------------------------------------------

    /// Send `group`'s slice of `map` to its replicas. `strict` demands an
    /// ack from every replica; otherwise the group's primary must ack and
    /// the rest are best-effort.
    fn install_group_slice(
        &self,
        map: &ShardMap,
        group: u32,
        replicas: &[NodeId],
        strict: bool,
    ) -> Result<(), String> {
        let primary = self.group(group).and_then(|d| d.primary());
        for r in replicas {
            let msg = DataMsg::SetShards {
                shards: map.shards_of_group(group),
                num_shards: map.num_shards(),
                vnodes: map.vnodes(),
                map_version: map.version(),
            };
            if let Err(e) = self.rpc_ok(r, msg) {
                let required = strict || primary.as_ref() == Some(r) || primary.is_none();
                if required {
                    return Err(format!("set_shards v{} on {r}: {e}", map.version()));
                }
                MetricsRegistry::global()
                    .inc("wiera_shard_view_skipped", &[("fleet", self.id.as_str())]);
            }
        }
        Ok(())
    }

    /// Merge every reachable source replica's state dump, keeping the
    /// newest copy per key (LWW by version, then modified), filtered to
    /// the shard being moved.
    fn collect_shard(&self, map: &ShardMap, shard: u32, sources: &[NodeId]) -> Vec<SyncObject> {
        let mut merged: HashMap<String, SyncObject> = HashMap::new();
        for r in sources {
            let Ok(reply) = self
                .mesh
                .rpc(&self.from, r, DataMsg::SyncRequest, 64, CTRL_TIMEOUT)
            else {
                continue;
            };
            let DataMsg::SyncReply { objects } = reply.msg else {
                continue;
            };
            for o in objects {
                if map.shard_of(&o.key) != shard {
                    continue;
                }
                match merged.get(&o.key) {
                    Some(have) if (have.version, have.modified) >= (o.version, o.modified) => {}
                    _ => {
                        merged.insert(o.key.clone(), o);
                    }
                }
            }
        }
        merged.into_values().collect()
    }

    /// Install objects on the target replicas. The target primary must
    /// succeed (it is the group's source of truth and the donor restarted
    /// backups sync from); others are best-effort.
    fn load_into(
        &self,
        replicas: &[NodeId],
        primary: &NodeId,
        objects: &[SyncObject],
    ) -> Result<(), String> {
        if objects.is_empty() {
            return Ok(());
        }
        for r in replicas {
            let msg = DataMsg::LoadState {
                objects: objects.to_vec(),
            };
            if let Err(e) = self.rpc_ok(r, msg) {
                if r == primary {
                    return Err(format!("load_state on target primary {r}: {e}"));
                }
                MetricsRegistry::global()
                    .inc("wiera_shard_copy_skipped", &[("fleet", self.id.as_str())]);
            }
        }
        Ok(())
    }

    /// Digest comparison of the moved shard: the target must hold every
    /// key the source holds, at an equal-or-newer version. One repair pull
    /// is attempted for stragglers; a second miss aborts the move before
    /// the retire, leaving the data intact on the source.
    fn verify_handoff(
        &self,
        map: &ShardMap,
        shard: u32,
        src_reps: &[NodeId],
        dst_primary: &NodeId,
        dst_reps: &[NodeId],
    ) -> Result<(), String> {
        let wanted = self.merged_digests(map, shard, src_reps);
        let missing = self.missing_at(dst_primary, &wanted)?;
        if missing.is_empty() {
            return Ok(());
        }
        // Straggler repair: pull the exact keys and push them again.
        let keys: Vec<String> = missing.clone();
        let mut objects: Vec<SyncObject> = Vec::new();
        for r in src_reps {
            let msg = DataMsg::FetchObjects { keys: keys.clone() };
            let bytes = msg.wire_bytes();
            let Ok(reply) = self.mesh.rpc(&self.from, r, msg, bytes, CTRL_TIMEOUT) else {
                continue;
            };
            if let DataMsg::SyncReply { objects: got } = reply.msg {
                for o in got {
                    match objects.iter_mut().find(|have| have.key == o.key) {
                        Some(have) if (have.version, have.modified) >= (o.version, o.modified) => {}
                        Some(have) => *have = o,
                        None => objects.push(o),
                    }
                }
            }
        }
        self.load_into(dst_reps, dst_primary, &objects)?;
        let still = self.missing_at(dst_primary, &wanted)?;
        if still.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "handoff verification failed for shard {shard}: {} keys missing at target \
                 (first: {:?})",
                still.len(),
                still.first()
            ))
        }
    }

    /// Per-key newest (version, modified) over the source replicas,
    /// filtered to the shard.
    fn merged_digests(
        &self,
        map: &ShardMap,
        shard: u32,
        sources: &[NodeId],
    ) -> HashMap<String, u64> {
        let mut wanted: HashMap<String, u64> = HashMap::new();
        for r in sources {
            let Ok(reply) = self
                .mesh
                .rpc(&self.from, r, DataMsg::DigestRequest, 64, CTRL_TIMEOUT)
            else {
                continue;
            };
            let DataMsg::DigestReply { entries, .. } = reply.msg else {
                continue;
            };
            for e in entries {
                if map.shard_of(&e.key) != shard {
                    continue;
                }
                let slot = wanted.entry(e.key).or_insert(e.version);
                *slot = (*slot).max(e.version);
            }
        }
        wanted
    }

    /// Keys of `wanted` the target does not hold at `version >= wanted`.
    fn missing_at(
        &self,
        target: &NodeId,
        wanted: &HashMap<String, u64>,
    ) -> Result<Vec<String>, String> {
        let reply = self
            .mesh
            .rpc(&self.from, target, DataMsg::DigestRequest, 64, CTRL_TIMEOUT)
            .map_err(|e| format!("digest from target {target}: {e}"))?;
        let DataMsg::DigestReply { entries, .. } = reply.msg else {
            return Err(format!("bad digest reply from target {target}"));
        };
        let have: HashMap<&str, &KeyDigest> = entries.iter().map(|e| (e.key.as_str(), e)).collect();
        Ok(wanted
            .iter()
            .filter(|(key, version)| have.get(key.as_str()).map(|e| e.version) < Some(**version))
            .map(|(key, _)| key.clone())
            .collect())
    }

    fn rpc_ok(&self, target: &NodeId, msg: DataMsg) -> Result<(), String> {
        let bytes = msg.wire_bytes();
        let reply = self
            .mesh
            .rpc(&self.from, target, msg, bytes, CTRL_TIMEOUT)
            .map_err(|e| e.to_string())?;
        match reply.msg {
            DataMsg::Ok => Ok(()),
            DataMsg::Fail { code, why } => Err(format!("{code}: {why}")),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }
}
