//! A replica: one Tiera instance wrapped in a mesh endpoint, executing the
//! deployment's consistency protocol.
//!
//! Threading model (mirrors §4's description of instances running servers):
//!
//! * a **handler thread** drains the inbox; replication and control messages
//!   are handled inline (they are local and fast), while application
//!   operations are spawned onto worker threads — so a put blocked on a
//!   cross-region broadcast never prevents this replica from applying a
//!   peer's incoming update (which would deadlock two multi-primaries
//!   writers);
//! * a **flusher thread** distributes queued updates every
//!   `flush_interval` (the paper: "applications can specify how frequently
//!   queued updates need to be distributed");
//! * a **gate** blocks application operations while a consistency switch is
//!   in progress (§3.3.2: new requests "blocked and queued until the change
//!   takes effect").

use crate::msg::{DataMsg, FailCode, ItemResult, KeyDigest, PutItem, SyncObject};
use bytes::Bytes;
use parking_lot::Condvar;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tiera::{BatchOp, InstanceConfig, TieraError, TieraInstance};
use wiera_coord::{CoordClient, ShardMap};
use wiera_net::{Delivery, Mesh, NodeId};
use wiera_policy::ConsistencyModel;
use wiera_sim::lockreg::{TrackedMutex, TrackedRwLock};
use wiera_sim::{MetricsRegistry, SimDuration, SimInstant, Tracer};

/// RPC timeout for data-path calls.
pub(crate) const DATA_TIMEOUT: SimDuration = SimDuration::from_secs(120);
/// How long the put-latency window is retained for monitors.
const WINDOW_RETENTION: SimDuration = SimDuration::from_secs(120);

/// Per-replica protocol state, swappable at run time.
struct ProtoState {
    consistency: ConsistencyModel,
    peers: Vec<NodeId>,
    primary: Option<NodeId>,
    epoch: u64,
}

/// Gate blocking application operations during a consistency switch.
struct Gate {
    closed: TrackedMutex<bool>,
    cond: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            closed: TrackedMutex::new("replica.gate", false),
            cond: Condvar::new(),
        }
    }

    fn close(&self) {
        *self.closed.lock() = true;
    }

    fn open(&self) {
        *self.closed.lock() = false;
        self.cond.notify_all();
    }

    fn wait_open(&self) {
        let mut closed = self.closed.lock();
        while *closed {
            self.cond.wait(closed.inner_mut());
        }
    }
}

/// Structured failure raised inside the replica's protocol paths, carried
/// to the wire as [`DataMsg::Fail`].
#[derive(Debug, Clone)]
struct OpFail {
    code: FailCode,
    why: String,
}

impl OpFail {
    fn new(code: FailCode, why: impl Into<String>) -> OpFail {
        OpFail {
            code,
            why: why.into(),
        }
    }

    fn blocked(why: impl Into<String>) -> OpFail {
        OpFail::new(FailCode::Blocked, why)
    }

    fn internal(why: impl Into<String>) -> OpFail {
        OpFail::new(FailCode::Internal, why)
    }
}

impl From<TieraError> for OpFail {
    fn from(e: TieraError) -> OpFail {
        OpFail::new(fail_code(&e), e.to_string())
    }
}

/// Map an engine error to its wire-level failure kind.
fn fail_code(e: &TieraError) -> FailCode {
    match e {
        TieraError::NotFound(_) => FailCode::NotFound,
        TieraError::VersionNotFound(..) => FailCode::VersionMissing,
        TieraError::DeadlineExceeded => FailCode::DeadlineExceeded,
        _ => FailCode::Internal,
    }
}

/// CoDel-style load-shedding configuration for a replica's admission queue.
///
/// The admission model ([`ReplicaConfig::service_time`]) gives each replica a
/// modeled single-server queue; its *sojourn delay* (how long a newly
/// admitted op would wait for its service slot) is the congestion signal.
/// Transient bursts ride through: shedding starts only once the delay has
/// stayed above `target_delay` continuously for `interval`, and stops the
/// moment the backlog dips back under target — the same standing-queue test
/// CoDel applies to packet sojourn times. Only client operations are shed;
/// replication, anti-entropy and control traffic is handled inline and is
/// never subject to admission, so a replica keeps converging even while it
/// refuses new client load.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Acceptable standing backlog in the admission queue.
    pub target_delay: SimDuration,
    /// How long the backlog must stay above `target_delay` before client
    /// ops are shed with [`FailCode::Overloaded`].
    pub interval: SimDuration,
}

/// Per-op budget carried by [`DataMsg::WithBudget`], unwrapped at dispatch.
#[derive(Debug, Clone, Copy, Default)]
struct OpBudget {
    /// Absolute deadline on the shared modeled clock.
    deadline: Option<SimInstant>,
    /// The caller accepts a possibly-stale degraded answer under overload.
    allow_degraded: bool,
}

/// Construction parameters for a replica.
pub struct ReplicaConfig {
    pub node: NodeId,
    pub instance: InstanceConfig,
    pub consistency: ConsistencyModel,
    /// Queue distribution period for asynchronous propagation.
    pub flush_interval: SimDuration,
    /// Coordination client for the multi-primaries global lock.
    pub coord: Option<Arc<CoordClient>>,
    /// Route application GETs to another node (§5.4's remote-memory reads).
    pub forward_gets_to: Option<NodeId>,
    /// The fleet shard group this replica belongs to (None outside fleets).
    pub shard_group: Option<u32>,
    /// Modeled per-op service time: ops queue behind a single modeled
    /// server, so a saturated replica caps out at `1/service_time` ops/sec
    /// regardless of client count. `None` (the default) disables the
    /// admission model entirely.
    pub service_time: Option<SimDuration>,
    /// CoDel-style shedding over the admission queue. `None` (the default)
    /// never sheds; only meaningful together with `service_time`.
    pub overload: Option<OverloadConfig>,
}

/// A replica's installed slice of the fleet shard map: the ring (rebuilt
/// locally from the pinned hash — only parameters travel) plus the shard
/// ids this replica's group owns at `version`.
struct ShardView {
    ring: ShardMap,
    owned: HashSet<u32>,
    version: u64,
}

/// Observable counters for cost accounting and monitors.
#[derive(Default)]
pub struct ReplicaStats {
    /// Bytes sent to peer instances (inter-DC egress).
    pub egress_bytes: AtomicU64,
    /// Replication messages that failed (peer unreachable).
    pub replication_failures: AtomicU64,
    /// Consistency switches executed.
    pub switches: AtomicU64,
}

/// The running replica.
pub struct ReplicaNode {
    pub node: NodeId,
    mesh: Arc<Mesh<DataMsg>>,
    inst: Arc<TieraInstance>,
    state: TrackedRwLock<ProtoState>,
    gate: Gate,
    /// Updates awaiting asynchronous distribution; the flusher coalesces
    /// the whole queue into one [`DataMsg::ReplicateBatch`] per peer.
    queue: TrackedMutex<VecDeque<SyncObject>>,
    /// Coordination client; swapped for a fresh session on restart (the
    /// crashed session's ephemeral lease is gone for good).
    coord: TrackedRwLock<Option<Arc<CoordClient>>>,
    flush_interval: SimDuration,
    forward_gets_to: TrackedRwLock<Option<NodeId>>,
    stop: Arc<AtomicBool>,
    /// Bumped on every restart; handler/flusher threads exit when their
    /// spawn-time generation no longer matches (so a restarted node never
    /// has two handler threads racing on one inbox).
    generation: AtomicU64,
    /// True while anti-entropy catch-up runs after a restart; reads are
    /// refused (clients fail over) until the node has converged.
    catching_up: AtomicBool,
    pub stats: ReplicaStats,
    /// Fleet shard ownership; `None` until a [`DataMsg::SetShards`] arrives
    /// (single-group deployments never install one and serve every key).
    shard_view: TrackedRwLock<Option<ShardView>>,
    /// The fleet shard group this replica belongs to, for failover events.
    shard_group: Option<u32>,
    /// Modeled single-server admission: when `service_time` is set, each
    /// application op claims the next free service slot and sleeps until
    /// its slot completes, so throughput saturates per replica.
    service_time: Option<SimDuration>,
    service_until: TrackedMutex<SimInstant>,
    /// Load-shedding policy over the admission queue, if enabled.
    overload: Option<OverloadConfig>,
    /// CoDel state: when the admission backlog first exceeded the target
    /// delay without dipping back under it (`None` = backlog acceptable).
    shed_above_since: TrackedMutex<Option<SimInstant>>,
    /// (time, put latency ms) samples for the latency monitor.
    put_window: TrackedMutex<VecDeque<(SimInstant, f64)>>,
    /// Puts received directly from applications (time-stamped).
    direct_puts: TrackedMutex<VecDeque<SimInstant>>,
    /// Puts forwarded to us, per origin replica (primary-side bookkeeping).
    forwarded_puts: TrackedMutex<HashMap<NodeId, VecDeque<SimInstant>>>,
}

impl ReplicaNode {
    /// Build the instance, register on the mesh, and start the handler and
    /// flusher threads. Errors (a policy-driven instance config the engine
    /// rejects, or thread-spawn failure) are returned instead of panicking
    /// so the deployment layer can report them over RPC.
    pub fn spawn(mesh: Arc<Mesh<DataMsg>>, config: ReplicaConfig) -> Result<Arc<Self>, String> {
        let inst = TieraInstance::build(config.instance, mesh.clock.clone())
            .map_err(|e| format!("replica instance config rejected: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let node = config.node.clone();
        let inbox = mesh.register(node.clone());

        let replica = Arc::new(ReplicaNode {
            node,
            mesh,
            inst,
            state: TrackedRwLock::new(
                "replica.state",
                ProtoState {
                    consistency: config.consistency,
                    peers: Vec::new(),
                    primary: None,
                    epoch: 0,
                },
            ),
            gate: Gate::new(),
            queue: TrackedMutex::new("replica.queue", VecDeque::new()),
            coord: TrackedRwLock::new("replica.coord", config.coord),
            flush_interval: config.flush_interval,
            forward_gets_to: TrackedRwLock::new("replica.forward_gets", config.forward_gets_to),
            stop: stop.clone(),
            generation: AtomicU64::new(0),
            catching_up: AtomicBool::new(false),
            stats: ReplicaStats::default(),
            shard_view: TrackedRwLock::new("replica.shards", None),
            shard_group: config.shard_group,
            service_time: config.service_time,
            service_until: TrackedMutex::new("replica.service_until", SimInstant::EPOCH),
            overload: config.overload,
            shed_above_since: TrackedMutex::new("replica.shed_above_since", None),
            put_window: TrackedMutex::new("replica.put_window", VecDeque::new()),
            direct_puts: TrackedMutex::new("replica.direct_puts", VecDeque::new()),
            forwarded_puts: TrackedMutex::new("replica.forwarded_puts", HashMap::new()),
        });
        replica.create_lease();
        replica.start_threads(inbox)?;
        Ok(replica)
    }

    /// Hold an ephemeral lease znode in coord (§4.4): the lease vanishes
    /// with the session, which is how the failure detector learns this
    /// replica died.
    fn create_lease(&self) {
        if let Some(coord) = self.coord_client() {
            let _ = coord.create_znode(&lease_path(&self.node), true);
        }
    }

    /// Start the handler and flusher threads for the current generation.
    /// Threads from an earlier generation (pre-crash) exit on their own when
    /// they observe the mismatch.
    fn start_threads(
        self: &Arc<Self>,
        inbox: crossbeam::channel::Receiver<Delivery<DataMsg>>,
    ) -> Result<(), String> {
        let gen = self.generation.load(Ordering::Acquire);
        // Handler thread.
        {
            let r = self.clone();
            std::thread::Builder::new()
                .name(format!("replica-{}", r.node))
                .spawn(move || {
                    while !r.stop.load(Ordering::Acquire)
                        && r.generation.load(Ordering::Acquire) == gen
                    {
                        match inbox.recv_timeout(std::time::Duration::from_millis(50)) {
                            Ok(d) => r.dispatch(d),
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        }
                    }
                })
                .map_err(|e| format!("cannot spawn replica handler thread: {e}"))?;
        }
        // Flusher thread.
        {
            let r = self.clone();
            std::thread::Builder::new()
                .name(format!("flusher-{}", r.node))
                .spawn(move || {
                    while !r.stop.load(Ordering::Acquire)
                        && r.generation.load(Ordering::Acquire) == gen
                    {
                        r.mesh.clock.sleep(r.flush_interval);
                        if r.stop.load(Ordering::Acquire)
                            || r.generation.load(Ordering::Acquire) != gen
                        {
                            return;
                        }
                        r.flush_queue_async();
                    }
                })
                .map_err(|e| format!("cannot spawn replica flusher thread: {e}"))?;
        }
        Ok(())
    }

    pub fn instance(&self) -> &Arc<TieraInstance> {
        &self.inst
    }

    pub fn consistency(&self) -> ConsistencyModel {
        self.state.read().consistency
    }

    pub fn is_primary(&self) -> bool {
        self.state.read().primary.as_ref() == Some(&self.node)
    }

    pub fn primary(&self) -> Option<NodeId> {
        self.state.read().primary.clone()
    }

    pub fn peers(&self) -> Vec<NodeId> {
        self.state.read().peers.clone()
    }

    pub fn epoch(&self) -> u64 {
        self.state.read().epoch
    }

    /// The fleet shard group this replica was spawned into, if any.
    pub fn shard_group(&self) -> Option<u32> {
        self.shard_group
    }

    /// The shard-map version this replica last adopted (None before the
    /// first [`DataMsg::SetShards`]).
    pub fn shard_map_version(&self) -> Option<u64> {
        self.shard_view.read().as_ref().map(|v| v.version)
    }

    /// The shard ids this replica currently serves, sorted. Empty when no
    /// shard view is installed (then every key is served).
    pub fn owned_shards(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .shard_view
            .read()
            .as_ref()
            .map(|v| v.owned.iter().copied().collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    pub fn queue_len(&self) -> usize {
        self.queue.lock().len()
    }

    pub fn set_forward_gets_to(&self, target: Option<NodeId>) {
        *self.forward_gets_to.write() = target;
    }

    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// True while anti-entropy catch-up is still running after a restart.
    pub fn is_catching_up(&self) -> bool {
        self.catching_up.load(Ordering::Acquire)
    }

    pub(crate) fn coord_client(&self) -> Option<Arc<CoordClient>> {
        self.coord.read().clone()
    }

    pub(crate) fn mesh(&self) -> &Arc<Mesh<DataMsg>> {
        &self.mesh
    }

    /// Planned shutdown: drain the eventual-mode queue first so already
    /// acknowledged writes reach their peers, then halt. (A planned stop
    /// dropping queued `ReplicateBatch`es was a data-loss bug.)
    pub fn stop(&self) {
        self.flush_coalesced();
        self.halt();
    }

    /// Take the node off the mesh and stop its threads without flushing.
    fn halt(&self) {
        self.stop.store(true, Ordering::Release);
        self.mesh.unregister(&self.node);
    }

    /// Unplanned crash (§4.4): the site drops off the mesh mid-flight,
    /// queued-but-unflushed updates are lost, volatile tiers lose their
    /// contents (durable tiers survive per the tier model), and coord
    /// heartbeats stop so the lease expires after the session timeout.
    pub fn crash(&self) {
        self.halt();
        self.queue.lock().clear();
        let wiped = self.inst.crash_volatile();
        if let Some(coord) = self.coord_client() {
            coord.pause_heartbeats();
        }
        let region = self.node.region.to_string();
        MetricsRegistry::global().inc("wiera_crashes", &[("region", region.as_str())]);
        let now = self.mesh.clock.now();
        Tracer::global()
            .span(now, "wiera", "crash")
            .region(region)
            .node(self.node.name.as_ref())
            .detail(format!("volatile_versions_lost={wiped}"))
            .finish(now);
    }

    /// Restart after [`Self::crash`]: re-register on the mesh, open a fresh
    /// coord session + lease, adopt the deployment's current epoch, and run
    /// anti-entropy catch-up against the primary before serving reads.
    pub fn restart(self: &Arc<Self>) -> Result<AntiEntropyReport, String> {
        if !self.stop.load(Ordering::Acquire) {
            return Err("restart: node is not stopped".into());
        }
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.catching_up.store(true, Ordering::Release);
        let inbox = self.mesh.register(self.node.clone());
        self.stop.store(false, Ordering::Release);
        self.start_threads(inbox)?;
        // Fresh coord session: the crashed session's ephemeral lease is gone
        // (or about to expire); a new one announces us as live again.
        let reconnected = match self.coord_client() {
            Some(old) => match old.reconnect() {
                Ok(fresh) => Some(fresh),
                Err(e) => return Err(format!("restart: coord reconnect failed: {e}")),
            },
            None => None,
        };
        if let Some(fresh) = reconnected {
            *self.coord.write() = Some(fresh);
            self.create_lease();
        }
        let report = self.anti_entropy();
        self.catching_up.store(false, Ordering::Release);
        let region = self.node.region.to_string();
        MetricsRegistry::global().inc("wiera_restarts", &[("region", region.as_str())]);
        Ok(report)
    }

    // ---- monitor-facing observability --------------------------------------

    /// Put-latency samples newer than `since`.
    pub fn put_latencies_since(&self, since: SimInstant) -> Vec<(SimInstant, f64)> {
        self.put_window
            .lock()
            .iter()
            .filter(|(t, _)| *t >= since)
            .copied()
            .collect()
    }

    /// Number of application puts this replica received directly since `since`.
    pub fn direct_puts_since(&self, since: SimInstant) -> usize {
        self.direct_puts
            .lock()
            .iter()
            .filter(|t| **t >= since)
            .count()
    }

    /// Forwarded put counts per origin since `since` (primary-side).
    pub fn forwarded_puts_since(&self, since: SimInstant) -> Vec<(NodeId, usize)> {
        self.forwarded_puts
            .lock()
            .iter()
            .map(|(n, ts)| (n.clone(), ts.iter().filter(|t| **t >= since).count()))
            .collect()
    }

    fn record_put_latency(&self, at: SimInstant, latency: SimDuration) {
        let mut w = self.put_window.lock();
        w.push_back((at, latency.as_millis_f64()));
        let cutoff = at - WINDOW_RETENTION;
        while w.front().map(|(t, _)| *t < cutoff).unwrap_or(false) {
            w.pop_front();
        }
    }

    // ---- message dispatch ---------------------------------------------------

    fn dispatch(self: &Arc<Self>, d: Delivery<DataMsg>) {
        let mut d = d;
        // Peel the budget envelope first so routing sees the inner op.
        let mut budget = OpBudget::default();
        if let DataMsg::WithBudget {
            deadline_us,
            allow_degraded,
            inner,
        } = d.msg
        {
            budget = OpBudget {
                deadline: deadline_us.map(|us| SimInstant::EPOCH + SimDuration::from_micros(us)),
                allow_degraded,
            };
            d.msg = *inner;
        }
        match &d.msg {
            // Application operations may block on WAN round trips: spawn.
            DataMsg::Put { .. }
            | DataMsg::Get { .. }
            | DataMsg::GetVersion { .. }
            | DataMsg::GetVersionList { .. }
            | DataMsg::Update { .. }
            | DataMsg::Remove { .. }
            | DataMsg::RemoveVersion { .. }
            | DataMsg::MultiPut { .. }
            | DataMsg::MultiGet { .. }
            | DataMsg::ForwardPut { .. } => {
                let r = self.clone();
                if let Err(e) = std::thread::Builder::new()
                    .name("replica-worker".into())
                    .spawn(move || r.handle_app_op(d, budget))
                {
                    // The delivery (and its reply slot) died with the
                    // closure; the caller observes an RPC failure rather
                    // than a replica crash.
                    let region = self.node.region.to_string();
                    MetricsRegistry::global()
                        .inc("wiera_worker_spawn_errors", &[("region", region.as_str())]);
                    eprintln!("replica {}: cannot spawn worker thread: {e}", self.node);
                }
            }
            // Replication and control are local and quick: handle inline.
            _ => self.handle_inline(d),
        }
    }

    fn handle_inline(self: &Arc<Self>, d: Delivery<DataMsg>) {
        let reply =
            |slot: Option<wiera_net::ReplySlot<DataMsg>>, msg: DataMsg, took: SimDuration| {
                if let Some(s) = slot {
                    let bytes = msg.wire_bytes();
                    s.reply(msg, took, bytes);
                }
            };
        match d.msg {
            DataMsg::Replicate {
                key,
                version,
                modified,
                value,
                epoch,
            } => {
                if epoch < self.epoch() {
                    self.note_fenced("replicate");
                    reply(
                        d.reply,
                        stale_epoch_fail(epoch, self.epoch()),
                        SimDuration::from_micros(100),
                    );
                    return;
                }
                let digest = value_digest(&value);
                let out = self.inst.apply_replicated(&key, version, modified, value);
                let (applied, took) = match out {
                    Ok(Some(o)) => (true, o.latency),
                    Ok(None) => (false, SimDuration::from_micros(200)),
                    Err(_) => (false, SimDuration::from_micros(200)),
                };
                if applied {
                    let now = self.mesh.clock.now();
                    self.record_history("replicate_apply", &key, version, digest, now, took);
                }
                reply(d.reply, DataMsg::ReplicateAck { applied }, took);
            }
            DataMsg::ReplicateBatch { items, epoch } => {
                if epoch < self.epoch() {
                    self.note_fenced("replicate_batch");
                    reply(
                        d.reply,
                        stale_epoch_fail(epoch, self.epoch()),
                        SimDuration::from_micros(100),
                    );
                    return;
                }
                // LWW per item (§4.2): one losing item does not block the
                // rest of the batch. `items` is the sender's shared batch —
                // iterate by reference, value clones are refcount bumps.
                let mut any = false;
                let mut took = SimDuration::ZERO;
                for o in items.iter() {
                    let digest = value_digest(&o.value);
                    if let Ok(Some(out)) =
                        self.inst
                            .apply_replicated(&o.key, o.version, o.modified, o.value.clone())
                    {
                        any = true;
                        took += out.latency;
                        let now = self.mesh.clock.now();
                        self.record_history(
                            "replicate_apply",
                            &o.key,
                            o.version,
                            digest,
                            now,
                            out.latency,
                        );
                    }
                }
                took = took.max(SimDuration::from_micros(200));
                reply(d.reply, DataMsg::ReplicateAck { applied: any }, took);
            }
            DataMsg::SetPeers {
                peers,
                primary,
                epoch,
            } => {
                let stale = {
                    let mut s = self.state.write();
                    if epoch >= s.epoch {
                        s.peers = peers.into_iter().filter(|p| *p != self.node).collect();
                        s.primary = primary;
                        s.epoch = epoch;
                        false
                    } else {
                        true
                    }
                };
                if stale {
                    self.note_fenced("set_peers");
                    reply(
                        d.reply,
                        stale_epoch_fail(epoch, self.epoch()),
                        SimDuration::from_micros(200),
                    );
                } else {
                    reply(d.reply, DataMsg::Ok, SimDuration::from_micros(200));
                }
            }
            DataMsg::ChangeConsistency { to, epoch } => {
                if epoch < self.epoch() {
                    self.note_fenced("change_consistency");
                    reply(
                        d.reply,
                        stale_epoch_fail(epoch, self.epoch()),
                        SimDuration::ZERO,
                    );
                } else {
                    let took = self.switch_consistency(to, epoch);
                    reply(d.reply, DataMsg::Ok, took);
                }
            }
            DataMsg::ChangePrimary { new_primary, epoch } => {
                let stale = {
                    let mut s = self.state.write();
                    if epoch >= s.epoch {
                        s.primary = Some(new_primary);
                        s.epoch = epoch;
                        false
                    } else {
                        true
                    }
                };
                if stale {
                    self.note_fenced("change_primary");
                    reply(
                        d.reply,
                        stale_epoch_fail(epoch, self.epoch()),
                        SimDuration::from_micros(200),
                    );
                } else {
                    reply(d.reply, DataMsg::Ok, SimDuration::from_micros(200));
                }
            }
            DataMsg::Ping => reply(d.reply, DataMsg::Pong, SimDuration::from_micros(100)),
            DataMsg::SyncRequest => {
                let objects = self.dump_state();
                reply(
                    d.reply,
                    DataMsg::SyncReply { objects },
                    SimDuration::from_millis(5),
                );
            }
            DataMsg::DigestRequest => {
                let entries = self.digest_table();
                let (epoch, primary) = {
                    let s = self.state.read();
                    (s.epoch, s.primary.clone())
                };
                reply(
                    d.reply,
                    DataMsg::DigestReply {
                        entries,
                        epoch,
                        primary,
                    },
                    SimDuration::from_millis(2),
                );
            }
            DataMsg::FetchObjects { keys } => {
                let want: HashSet<&str> = keys.iter().map(|k| k.as_str()).collect();
                let objects = self
                    .dump_state()
                    .into_iter()
                    .filter(|o| want.contains(o.key.as_str()))
                    .collect();
                reply(
                    d.reply,
                    DataMsg::SyncReply { objects },
                    SimDuration::from_millis(5),
                );
            }
            DataMsg::FlushQueue => {
                let took = self.flush_queue_sync();
                reply(d.reply, DataMsg::Ok, took);
            }
            DataMsg::LoadState { objects } => {
                let n = objects.len();
                self.load_state(objects);
                reply(d.reply, DataMsg::Ok, SimDuration::from_millis(n as u64));
            }
            DataMsg::SetShards {
                shards,
                num_shards,
                vnodes,
                map_version,
            } => match self.install_shards(shards, num_shards, vnodes, map_version) {
                Ok(()) => reply(d.reply, DataMsg::Ok, SimDuration::from_micros(300)),
                Err((code, why)) => {
                    self.note_fenced("set_shards");
                    reply(
                        d.reply,
                        DataMsg::Fail { code, why },
                        SimDuration::from_micros(200),
                    );
                }
            },
            DataMsg::DropShard { shard, map_version } => {
                match self.drop_shard(shard, map_version) {
                    Ok(n) => reply(
                        d.reply,
                        DataMsg::Ok,
                        SimDuration::from_millis(1 + n.min(50) as u64),
                    ),
                    Err((code, why)) => {
                        self.note_fenced("drop_shard");
                        reply(
                            d.reply,
                            DataMsg::Fail { code, why },
                            SimDuration::from_micros(200),
                        );
                    }
                }
            }
            DataMsg::Stop => {
                reply(d.reply, DataMsg::Ok, SimDuration::ZERO);
                self.stop();
            }
            other => {
                reply(
                    d.reply,
                    DataMsg::Fail {
                        code: FailCode::Internal,
                        why: format!("unexpected message {other:?}"),
                    },
                    SimDuration::ZERO,
                );
            }
        }
    }

    /// Two-phase consistency switch (§3.3.2): close the gate, drain the
    /// update queue so every queued write lands before the new regime, swap
    /// the model, reopen. Returns the modeled switch time.
    fn switch_consistency(&self, to: ConsistencyModel, epoch: u64) -> SimDuration {
        {
            // One write acquisition: taking `state.write()` while the same
            // thread still held `state.read()` was a guaranteed self-deadlock
            // on the no-op-switch path.
            let mut s = self.state.write();
            if epoch < s.epoch {
                return SimDuration::ZERO; // stale control message
            }
            if s.consistency == to {
                s.epoch = s.epoch.max(epoch);
                return SimDuration::ZERO;
            }
        }
        let started = self.mesh.clock.now();
        self.gate.close();
        let drain_cost = self.flush_queue_sync();
        {
            let mut s = self.state.write();
            s.consistency = to;
            s.epoch = epoch;
        }
        self.gate.open();
        self.stats.switches.fetch_add(1, Ordering::Relaxed);
        let took = drain_cost + SimDuration::from_millis(1);
        let to_label = to.to_string();
        MetricsRegistry::global().inc("wiera_consistency_switches", &[("to", to_label.as_str())]);
        MetricsRegistry::global().observe("wiera_consistency_switch_time", &[], took);
        Tracer::global()
            .span(started, "wiera", "consistency_switch")
            .region(self.node.region.to_string())
            .node(self.node.name.as_ref())
            .detail(to_label)
            .finish(started + took);
        took
    }

    /// Drain the queue before a switch. One coalesced one-way send per peer,
    /// then a wait covering the slowest modeled delivery: every queued
    /// update is applied at its peer before the new model takes over,
    /// without blocking on peer handlers that may themselves be mid-switch
    /// (two replicas switching simultaneously must not RPC each other from
    /// their handler threads — that deadlocks until timeouts).
    fn flush_queue_sync(&self) -> SimDuration {
        let max_delay = self.flush_coalesced();
        if max_delay == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        // Wait out the slowest delivery (plus slack for the peer to apply).
        self.mesh
            .clock
            .sleep(max_delay + SimDuration::from_millis(10));
        max_delay
    }

    /// Periodic asynchronous distribution of queued updates (one-way sends
    /// that arrive after the modeled latency — replicas genuinely lag).
    fn flush_queue_async(&self) {
        self.flush_coalesced();
    }

    /// Drain the whole queue into **one** [`DataMsg::ReplicateBatch`] per
    /// peer (the replication-coalescing half of the bulk-operation design:
    /// n queued updates × p peers cost p messages, not n×p). Returns the
    /// slowest modeled delivery delay.
    fn flush_coalesced(&self) -> SimDuration {
        let items: Arc<[SyncObject]> = {
            let drained: Vec<SyncObject> = self.queue.lock().drain(..).collect();
            if drained.is_empty() {
                return SimDuration::ZERO;
            }
            drained.into()
        };
        let peers = self.peers();
        let epoch = self.epoch();
        let mut max_delay = SimDuration::ZERO;
        let mut any_failed = false;
        for peer in &peers {
            // One immutable batch shared across every peer send: cloning the
            // Arc bumps a refcount instead of deep-copying n items per peer.
            let msg = DataMsg::ReplicateBatch {
                items: Arc::clone(&items),
                epoch,
            };
            let bytes = msg.wire_bytes();
            match self.mesh.send(&self.node, peer, msg, bytes) {
                Ok(delay) => {
                    self.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
                    max_delay = max_delay.max(delay);
                }
                Err(_) => {
                    any_failed = true;
                    self.stats
                        .replication_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if any_failed {
            // Re-queue (keeping only the latest version per key) so the next
            // flush retries once the peer heals: a partition must not
            // silently drop acknowledged eventual-mode writes. Peers that
            // already received this batch re-apply idempotently under LWW.
            let mut q = self.queue.lock();
            for item in items.iter() {
                match q.iter_mut().find(|o| o.key == item.key) {
                    Some(existing) => {
                        if item.version > existing.version {
                            *existing = item.clone();
                        }
                    }
                    None => q.push_back(item.clone()),
                }
            }
        }
        max_delay
    }

    fn dump_state(&self) -> Vec<SyncObject> {
        let mut out = Vec::new();
        for key in self.inst.meta().keys() {
            let latest = self
                .inst
                .meta()
                .with(&key, |o| o.latest().map(|m| (m.version, m.modified)));
            if let Some(Some((version, modified))) = latest {
                if let Ok(got) = self.inst.get_version(&key, version) {
                    // A version whose bytes vanished (tier eviction racing
                    // the dump) is simply skipped; the sync retries later.
                    if let Some(value) = got.value {
                        out.push(SyncObject {
                            key: key.clone(),
                            version,
                            modified,
                            value,
                        });
                    }
                }
            }
        }
        out
    }

    /// Load a full state dump (replica repair, §4.4).
    pub fn load_state(&self, objects: Vec<SyncObject>) {
        for o in objects {
            let _ = self
                .inst
                .apply_replicated(&o.key, o.version, o.modified, o.value);
        }
    }

    /// Drive the admission model into an artificial backlog, as if
    /// `backlog` of service time were already queued, with the overload
    /// patience window already elapsed (white-box; lets tests and check
    /// scenarios exercise shedding and degraded reads deterministically
    /// instead of racing real load). `SimDuration::ZERO` heals.
    pub fn force_backlog(&self, backlog: SimDuration) {
        let now = self.mesh.clock.now();
        *self.service_until.lock() = now + backlog;
        *self.shed_above_since.lock() = Some(SimInstant::EPOCH);
    }

    // ---- failure lifecycle: anti-entropy and election (§4.4) ---------------

    /// Per-key latest version + content digest — the anti-entropy exchange
    /// unit (values stay home; only fingerprints travel). Public so tests
    /// and the chaos harness can assert digest-equal convergence.
    pub fn digest_table(&self) -> Vec<KeyDigest> {
        let mut out = Vec::new();
        for key in self.inst.meta().keys() {
            let latest = self
                .inst
                .meta()
                .with(&key, |o| o.latest().map(|m| (m.version, m.modified)));
            if let Some(Some((version, modified))) = latest {
                if let Ok(got) = self.inst.get_version(&key, version) {
                    if let Some(value) = got.value {
                        out.push(KeyDigest {
                            key: key.clone(),
                            version,
                            modified,
                            digest: value_digest(&value),
                        });
                    }
                }
            }
        }
        out
    }

    /// Digest-based catch-up swept over every peer, primary first: per
    /// peer, exchange per-key version/digest tables, pull what the peer
    /// holds newer, push what survived locally (durable tiers) that the
    /// peer never saw. Also adopts the deployment's current epoch. Usable
    /// both on rejoin and after a partition heals.
    ///
    /// Sweeping the whole peer set — not just one neighbour — is what lets
    /// a single post-heal pass converge: an update that only one surviving
    /// replica still holds (say, the node distributing it crashed with the
    /// retries still queued) must reach every peer, not whichever one this
    /// node happens to diff against first.
    pub fn anti_entropy(self: &Arc<Self>) -> AntiEntropyReport {
        let targets: Vec<NodeId> = {
            let s = self.state.read();
            let mut v: Vec<NodeId> = s
                .primary
                .clone()
                .filter(|p| *p != self.node)
                .into_iter()
                .collect();
            for p in &s.peers {
                if *p != self.node && !v.contains(p) {
                    v.push(p.clone());
                }
            }
            v
        };
        let mut total = AntiEntropyReport::default();
        for peer in targets {
            if let Some((pulled, pushed)) = self.sync_with_peer(&peer) {
                total.pulled += pulled;
                total.pushed += pushed;
                total.peer.get_or_insert(peer);
            }
        }
        let region = self.node.region.to_string();
        let labels = [("region", region.as_str())];
        let metrics = MetricsRegistry::global();
        metrics
            .counter("wiera_anti_entropy_pulled", &labels)
            .add(total.pulled as u64);
        metrics
            .counter("wiera_anti_entropy_pushed", &labels)
            .add(total.pushed as u64);
        total
    }

    /// One anti-entropy exchange with one peer. Returns `(pulled, pushed)`,
    /// or `None` if the peer was unreachable.
    fn sync_with_peer(self: &Arc<Self>, peer: &NodeId) -> Option<(usize, usize)> {
        let msg = DataMsg::DigestRequest;
        let bytes = msg.wire_bytes();
        let reply = match self.mesh.rpc(&self.node, peer, msg, bytes, DATA_TIMEOUT) {
            Ok(r) => r,
            Err(_) => return None,
        };
        let (entries, peer_epoch, peer_primary) = match reply.msg {
            DataMsg::DigestReply {
                entries,
                epoch,
                primary,
            } => (entries, epoch, primary),
            _ => return None,
        };
        // Rejoin at the deployment's current epoch: the fence that kept our
        // stale writes out now lets us back in. A deposed primary also
        // adopts the new leadership here — otherwise it would rejoin at the
        // current epoch still believing itself primary (split-brain).
        {
            let mut s = self.state.write();
            if peer_epoch > s.epoch {
                s.epoch = peer_epoch;
                if let Some(p) = peer_primary {
                    s.primary = Some(p);
                }
            }
        }
        let mine = self.digest_table();
        let local: HashMap<&str, &KeyDigest> = mine.iter().map(|d| (d.key.as_str(), d)).collect();
        let remote: HashMap<&str, &KeyDigest> =
            entries.iter().map(|d| (d.key.as_str(), d)).collect();
        let newer = |a: &KeyDigest, b: &KeyDigest| {
            a.version > b.version
                || (a.version == b.version && a.digest != b.digest && a.modified > b.modified)
        };
        let want: Vec<String> = entries
            .iter()
            .filter(|r| match local.get(r.key.as_str()) {
                None => true,
                Some(l) => newer(r, l),
            })
            .map(|r| r.key.clone())
            .collect();
        let push: Vec<&KeyDigest> = mine
            .iter()
            .filter(|l| match remote.get(l.key.as_str()) {
                None => true,
                Some(r) => newer(l, r),
            })
            .collect();
        let mut pulled = 0usize;
        if !want.is_empty() {
            let msg = DataMsg::FetchObjects { keys: want };
            let bytes = msg.wire_bytes();
            if let Ok(r) = self.mesh.rpc(&self.node, peer, msg, bytes, DATA_TIMEOUT) {
                if let DataMsg::SyncReply { objects } = r.msg {
                    for o in objects {
                        let digest = value_digest(&o.value);
                        if let Ok(Some(out)) = self
                            .inst
                            .apply_replicated(&o.key, o.version, o.modified, o.value)
                        {
                            pulled += 1;
                            let now = self.mesh.clock.now();
                            self.record_history(
                                "replicate_apply",
                                &o.key,
                                o.version,
                                digest,
                                now,
                                out.latency,
                            );
                        }
                    }
                }
            }
        }
        let mut pushed = 0usize;
        if !push.is_empty() {
            let mut items = Vec::new();
            for d in push {
                if let Ok(got) = self.inst.get_version(&d.key, d.version) {
                    if let Some(value) = got.value {
                        items.push(SyncObject {
                            key: d.key.clone(),
                            version: d.version,
                            modified: d.modified,
                            value,
                        });
                    }
                }
            }
            if !items.is_empty() {
                pushed = items.len();
                let msg = DataMsg::ReplicateBatch {
                    items: items.into(),
                    epoch: self.epoch(),
                };
                let bytes = msg.wire_bytes();
                match self.mesh.rpc(&self.node, peer, msg, bytes, DATA_TIMEOUT) {
                    Ok(_) => {
                        self.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
                    }
                    Err(_) => {
                        pushed = 0;
                        self.stats
                            .replication_failures
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Some((pulled, pushed))
    }

    /// Failover election (§4.4): grab the deployment-wide coord lock,
    /// re-confirm the primary is still the suspect (a racing backup may
    /// already have won), probe the suspect one last time, then bump the
    /// epoch, take over, and broadcast [`DataMsg::ChangePrimary`]. The coord
    /// lock serializes racing backups; the epoch bump fences the deposed
    /// primary. Returns true if this node became the primary.
    pub fn run_election(self: &Arc<Self>, suspect: &NodeId) -> bool {
        let Some(coord) = self.coord_client() else {
            return false;
        };
        let Ok((guard, _)) = coord.lock(&election_path(&self.node)) else {
            return false;
        };
        // Re-check under the lock: a concurrent winner already re-pointed
        // the primary (and bumped the epoch) — nothing left to do.
        if self.primary().as_ref() != Some(suspect) {
            drop(guard);
            return false;
        }
        // One last probe: a slow-but-alive primary is not deposed.
        let ping = DataMsg::Ping;
        let bytes = ping.wire_bytes();
        if self
            .mesh
            .rpc(&self.node, suspect, ping, bytes, SimDuration::from_secs(30))
            .is_ok_and(|r| matches!(r.msg, DataMsg::Pong))
        {
            drop(guard);
            return false;
        }
        let epoch = {
            let mut s = self.state.write();
            s.epoch += 1;
            s.primary = Some(self.node.clone());
            s.epoch
        };
        let region = self.node.region.to_string();
        // Failover events are per shard group: a fleet runs one primary per
        // group, so the event names which group's leadership moved instead
        // of implying a deployment-global primary.
        let group_label = self
            .shard_group
            .map(|g| g.to_string())
            .unwrap_or_else(|| "-".into());
        MetricsRegistry::global().inc(
            "wiera_failovers",
            &[("region", region.as_str()), ("group", group_label.as_str())],
        );
        let now = self.mesh.clock.now();
        Tracer::global()
            .span(now, "wiera", "failover")
            .region(region)
            .node(self.node.name.as_ref())
            .detail(format!(
                "deposed={suspect} epoch={epoch} group={group_label}"
            ))
            .finish(now);
        for peer in self.peers() {
            if peer == *suspect || peer == self.node {
                continue;
            }
            let msg = DataMsg::ChangePrimary {
                new_primary: self.node.clone(),
                epoch,
            };
            let bytes = msg.wire_bytes();
            let _ = self
                .mesh
                .rpc(&self.node, &peer, msg, bytes, SimDuration::from_secs(60));
        }
        drop(guard);
        true
    }

    /// Undo local writes whose synchronous replication was epoch-fenced:
    /// they were never acknowledged, so they must not resurface later
    /// through reads or anti-entropy pushes.
    fn rollback_written(&self, written: &[SyncObject]) {
        for w in written {
            let _ = self.inst.remove_version(&w.key, w.version);
        }
    }

    fn note_fenced(&self, what: &str) {
        MetricsRegistry::global().inc("wiera_fenced_total", &[("msg", what)]);
    }

    // ---- fleet sharding (shard map slice, ownership, retirement) -----------

    /// Adopt a shard-map slice at `map_version`. Like epochs, versions are
    /// monotonic: a lower version than the installed one is a stale fleet
    /// manager and is refused with `WrongShard`.
    fn install_shards(
        &self,
        shards: Vec<u32>,
        num_shards: u32,
        vnodes: u32,
        map_version: u64,
    ) -> Result<(), (FailCode, String)> {
        // Rebuild the ring locally from parameters; `key_hash` is pinned,
        // so every party materializes the identical ring.
        let ring = ShardMap::new(num_shards, vnodes, 1)
            .map_err(|e| (FailCode::Internal, format!("bad shard parameters: {e}")))?;
        let mut view = self.shard_view.write();
        if let Some(v) = view.as_ref() {
            if map_version < v.version {
                return Err((
                    FailCode::WrongShard,
                    format!("stale shard map v{map_version} < v{}", v.version),
                ));
            }
        }
        *view = Some(ShardView {
            ring,
            owned: shards.into_iter().collect(),
            version: map_version,
        });
        Ok(())
    }

    /// Retire a moved shard: delete every local object belonging to it.
    /// Refused unless this replica has already adopted a map at or above
    /// `map_version` that no longer assigns it the shard — so a stale (or
    /// reordered) retire can never destroy data still being served.
    fn drop_shard(&self, shard: u32, map_version: u64) -> Result<usize, (FailCode, String)> {
        let view = self.shard_view.read();
        let Some(v) = view.as_ref() else {
            return Ok(0); // never sharded: nothing to retire
        };
        if map_version < v.version {
            return Err((
                FailCode::WrongShard,
                format!("stale retire v{map_version} < v{}", v.version),
            ));
        }
        if v.owned.contains(&shard) {
            return Err((
                FailCode::WrongShard,
                format!("still serving shard {shard} at map v{}", v.version),
            ));
        }
        let mut dropped = 0usize;
        for key in self.inst.meta().keys() {
            if v.ring.shard_of(&key) == shard {
                let _ = self.inst.remove(&key);
                dropped += 1;
            }
        }
        let region = self.node.region.to_string();
        MetricsRegistry::global()
            .counter("wiera_shard_retired_keys", &[("region", region.as_str())])
            .add(dropped as u64);
        Ok(dropped)
    }

    /// The `WrongShard` gate on the application path: with a shard view
    /// installed, any op whose key hashes outside this group's owned
    /// shards is refused whole (batches included — the client re-splits on
    /// a fresh map). Without a view (single-group deployments) every key
    /// is served, preserving pre-fleet behavior.
    fn wrong_shard_refusal(&self, msg: &DataMsg) -> Option<DataMsg> {
        let view = self.shard_view.read();
        let v = view.as_ref()?;
        let owns = |key: &str| v.owned.contains(&v.ring.shard_of(key));
        let offending = match msg {
            DataMsg::Put { key, .. }
            | DataMsg::Get { key }
            | DataMsg::GetVersion { key, .. }
            | DataMsg::GetVersionList { key }
            | DataMsg::Update { key, .. }
            | DataMsg::Remove { key }
            | DataMsg::RemoveVersion { key, .. }
            | DataMsg::ForwardPut { key, .. } => (!owns(key)).then(|| key.clone()),
            DataMsg::MultiPut { items } => {
                items.iter().find(|i| !owns(&i.key)).map(|i| i.key.clone())
            }
            DataMsg::MultiGet { keys } => keys.iter().find(|k| !owns(k)).cloned(),
            _ => None,
        };
        let key = offending?;
        let shard = v.ring.shard_of(&key);
        let region = self.node.region.to_string();
        MetricsRegistry::global().inc("wiera_wrong_shard_total", &[("region", region.as_str())]);
        Some(DataMsg::Fail {
            code: FailCode::WrongShard,
            why: format!(
                "shard {shard} (key '{key}') not owned at map v{}",
                v.version
            ),
        })
    }

    /// Single-server admission: claim the next free service slot and wait
    /// until it completes. Models a saturable replica — under closed-loop
    /// load, throughput caps at `1/service_time` per replica, which is
    /// what makes fleet scaling measurable in sim time.
    fn claim_service_slot(&self, service_time: SimDuration) {
        let now = self.mesh.clock.now();
        let done = {
            let mut until = self.service_until.lock();
            let start = if *until > now { *until } else { now };
            *until = start + service_time;
            *until
        };
        self.mesh.clock.sleep(done.elapsed_since(now));
    }

    /// The CoDel standing-queue test: shed when the admission backlog has
    /// stayed above the configured target continuously for the configured
    /// interval. Transient bursts start the patience timer but are still
    /// admitted; a backlog that dips back under target resets it.
    fn should_shed(&self, now: SimInstant) -> bool {
        let Some(cfg) = self.overload else {
            return false;
        };
        let until = *self.service_until.lock();
        let backlog = if until > now {
            until.elapsed_since(now)
        } else {
            SimDuration::ZERO
        };
        let mut above = self.shed_above_since.lock();
        if backlog <= cfg.target_delay {
            *above = None;
            return false;
        }
        match *above {
            None => {
                *above = Some(now);
                false
            }
            Some(since) => now.elapsed_since(since) >= cfg.interval,
        }
    }

    /// Degraded read: answer an eventual-policy Get from local state
    /// without paying the admission queue. The reply is explicitly marked
    /// `degraded` and the history event carries `degraded=1`, so the
    /// consistency oracle knows this read opted out of freshness.
    fn degraded_get(&self, key: &str) -> Option<(DataMsg, SimDuration)> {
        let started = self.mesh.clock.now();
        let out = self.inst.get(key).ok()?;
        let value = out.value?;
        let modified = self
            .inst
            .meta()
            .with(key, |o| o.versions.get(&out.version).map(|m| m.modified))
            .flatten()
            .unwrap_or(SimInstant::EPOCH);
        let region = self.node.region.to_string();
        MetricsRegistry::global()
            .inc("wiera_degraded_reads_total", &[("region", region.as_str())]);
        Tracer::global()
            .span(started, "history", "get")
            .region(region)
            .node(self.node.name.as_ref())
            .detail(format!(
                "key={key} ver={} val={:016x} degraded=1",
                out.version,
                value_digest(&value)
            ))
            .finish(started + out.latency);
        Some((
            DataMsg::GetReply {
                value,
                version: out.version,
                modified,
                degraded: true,
            },
            out.latency,
        ))
    }

    // ---- application operations ---------------------------------------------

    fn handle_app_op(self: &Arc<Self>, d: Delivery<DataMsg>, budget: OpBudget) {
        self.gate.wait_open();
        // A rejoining node refuses reads until anti-entropy has converged:
        // serving a pre-crash view would be a stale read the model forbids.
        if self.catching_up.load(Ordering::Acquire)
            && matches!(
                d.msg,
                DataMsg::Get { .. }
                    | DataMsg::GetVersion { .. }
                    | DataMsg::GetVersionList { .. }
                    | DataMsg::MultiGet { .. }
            )
        {
            if let Some(slot) = d.reply {
                let msg = DataMsg::Fail {
                    code: FailCode::Blocked,
                    why: "rejoining: anti-entropy catch-up in progress".into(),
                };
                let bytes = msg.wire_bytes();
                slot.reply(msg, SimDuration::from_micros(200), bytes);
            }
            return;
        }
        // Fleet routing enforcement: a key outside this group's owned
        // shards means the client routed on a stale map (or the shard is
        // mid-move) — refuse so it refreshes and re-routes.
        if let Some(fail) = self.wrong_shard_refusal(&d.msg) {
            if let Some(slot) = d.reply {
                let bytes = fail.wire_bytes();
                slot.reply(fail, SimDuration::from_micros(200), bytes);
            }
            return;
        }
        let refuse = |slot: Option<wiera_net::ReplySlot<DataMsg>>, code: FailCode, why: &str| {
            if let Some(slot) = slot {
                let msg = DataMsg::Fail {
                    code,
                    why: why.into(),
                };
                let bytes = msg.wire_bytes();
                slot.reply(msg, SimDuration::from_micros(100), bytes);
            }
        };
        let region = self.node.region.to_string();
        // A spent budget fails fast, before any queueing or engine work.
        if budget
            .deadline
            .is_some_and(|dl| self.mesh.clock.now() >= dl)
        {
            MetricsRegistry::global()
                .inc("wiera_deadline_exceeded_total", &[("region", region.as_str())]);
            refuse(
                d.reply,
                FailCode::DeadlineExceeded,
                "op budget spent before admission",
            );
            return;
        }
        // Admission control: replication and control traffic is handled
        // inline (never here); ForwardPut is protocol traffic that already
        // paid admission at the origin replica, so only direct client ops
        // are sheddable.
        let sheddable = !matches!(d.msg, DataMsg::ForwardPut { .. });
        if sheddable && self.should_shed(self.mesh.clock.now()) {
            // A client that tolerates staleness gets a local answer instead
            // of a refusal (eventual policy only — under a strong model a
            // stale local read would violate the consistency contract).
            if budget.allow_degraded
                && matches!(self.consistency(), ConsistencyModel::Eventual)
            {
                if let DataMsg::Get { key } = &d.msg {
                    if let Some((msg, took)) = self.degraded_get(key) {
                        if let Some(slot) = d.reply {
                            let bytes = msg.wire_bytes();
                            slot.reply(msg, took, bytes);
                        }
                        return;
                    }
                }
            }
            MetricsRegistry::global().inc("wiera_shed_total", &[("region", region.as_str())]);
            refuse(
                d.reply,
                FailCode::Overloaded,
                "admission backlog above target; retry elsewhere",
            );
            return;
        }
        if let Some(service_time) = self.service_time {
            self.claim_service_slot(service_time);
            // The queue wait may have burned the whole budget; drop the op
            // now rather than doing work nobody is waiting for.
            if budget
                .deadline
                .is_some_and(|dl| self.mesh.clock.now() >= dl)
            {
                MetricsRegistry::global()
                    .inc("wiera_deadline_exceeded_total", &[("region", region.as_str())]);
                refuse(
                    d.reply,
                    FailCode::DeadlineExceeded,
                    "op budget spent waiting for admission",
                );
                return;
            }
        }
        let Delivery { msg: op, reply, .. } = d;
        let (msg, took) = tiera::deadline::with_deadline(budget.deadline, || match op {
            DataMsg::Put { key, value } => {
                let started = self.mesh.clock.now();
                self.direct_puts.lock().push_back(started);
                let digest = value_digest(&value);
                match self.protocol_put(&key, value) {
                    Ok((version, latency)) => {
                        self.record_history("put", &key, version, digest, started, latency);
                        (DataMsg::PutAck { version }, latency)
                    }
                    Err(f) => (
                        DataMsg::Fail {
                            code: f.code,
                            why: f.why,
                        },
                        SimDuration::from_millis(1),
                    ),
                }
            }
            DataMsg::MultiPut { items } => {
                let started = self.mesh.clock.now();
                let (results, took) = self.protocol_put_batch(items, started);
                (DataMsg::MultiReply { results }, took)
            }
            DataMsg::MultiGet { keys } => {
                let started = self.mesh.clock.now();
                let (results, took) = self.protocol_get_batch(&keys);
                for (key, res) in keys.iter().zip(&results) {
                    if let ItemResult::Value { value, version, .. } = res {
                        self.record_history(
                            "mget",
                            key,
                            *version,
                            value_digest(value),
                            started,
                            took,
                        );
                    }
                }
                (DataMsg::MultiReply { results }, took)
            }
            DataMsg::ForwardPut {
                key,
                value,
                origin,
                epoch,
            } => {
                if epoch < self.epoch() {
                    // A backup that has not heard about the failover yet
                    // forwards at a stale epoch; refuse so it re-routes.
                    self.note_fenced("forward_put");
                    (
                        stale_epoch_fail(epoch, self.epoch()),
                        SimDuration::from_millis(1),
                    )
                } else {
                    // Primary-side accounting for the requests monitor.
                    let started = self.mesh.clock.now();
                    self.forwarded_puts
                        .lock()
                        .entry(origin)
                        .or_default()
                        .push_back(started);
                    let digest = value_digest(&value);
                    match self.primary_side_put(&key, value) {
                        Ok((version, latency)) => {
                            // Inner span of the forwarded write: the oracle
                            // merges it with the backup's outer span and it
                            // is the only evidence the primary holds this
                            // version.
                            self.record_history("put", &key, version, digest, started, latency);
                            (DataMsg::PutAck { version }, latency)
                        }
                        Err(f) => (
                            DataMsg::Fail {
                                code: f.code,
                                why: f.why,
                            },
                            SimDuration::from_millis(1),
                        ),
                    }
                }
            }
            DataMsg::Get { key } => {
                let started = self.mesh.clock.now();
                match self.protocol_get(&key, None) {
                    Ok((value, version, modified, latency)) => {
                        self.record_history(
                            "get",
                            &key,
                            version,
                            value_digest(&value),
                            started,
                            latency,
                        );
                        (
                            DataMsg::GetReply {
                                value,
                                version,
                                modified,
                                degraded: false,
                            },
                            latency,
                        )
                    }
                    Err(f) => (
                        DataMsg::Fail {
                            code: f.code,
                            why: f.why,
                        },
                        SimDuration::from_millis(1),
                    ),
                }
            }
            DataMsg::GetVersion { key, version } => match self.protocol_get(&key, Some(version)) {
                Ok((value, version, modified, latency)) => (
                    DataMsg::GetReply {
                        value,
                        version,
                        modified,
                        degraded: false,
                    },
                    latency,
                ),
                Err(f) => (
                    DataMsg::Fail {
                        code: f.code,
                        why: f.why,
                    },
                    SimDuration::from_millis(1),
                ),
            },
            DataMsg::GetVersionList { key } => match self.inst.get_version_list(&key) {
                Ok(versions) => (
                    DataMsg::VersionList { versions },
                    SimDuration::from_micros(300),
                ),
                Err(e) => (
                    DataMsg::Fail {
                        code: fail_code(&e),
                        why: e.to_string(),
                    },
                    SimDuration::from_micros(300),
                ),
            },
            DataMsg::Update {
                key,
                version,
                value,
            } => match self.inst.update(&key, version, value) {
                Ok(out) => (
                    DataMsg::PutAck {
                        version: out.version,
                    },
                    out.latency,
                ),
                Err(e) => (
                    DataMsg::Fail {
                        code: fail_code(&e),
                        why: e.to_string(),
                    },
                    SimDuration::from_millis(1),
                ),
            },
            DataMsg::Remove { key } => match self.inst.remove(&key) {
                Ok(()) => (DataMsg::Removed, SimDuration::from_millis(1)),
                Err(e) => (
                    DataMsg::Fail {
                        code: fail_code(&e),
                        why: e.to_string(),
                    },
                    SimDuration::from_millis(1),
                ),
            },
            DataMsg::RemoveVersion { key, version } => {
                match self.inst.remove_version(&key, version) {
                    Ok(()) => (DataMsg::Removed, SimDuration::from_millis(1)),
                    Err(e) => (
                        DataMsg::Fail {
                            code: fail_code(&e),
                            why: e.to_string(),
                        },
                        SimDuration::from_millis(1),
                    ),
                }
            }
            other => (
                DataMsg::Fail {
                    code: FailCode::Internal,
                    why: format!("not an app op: {other:?}"),
                },
                SimDuration::ZERO,
            ),
        });
        if let Some(slot) = reply {
            let bytes = msg.wire_bytes();
            slot.reply(msg, took, bytes);
        }
    }

    /// Application put under the current consistency model. Returns the
    /// version written and the modeled latency the application perceives.
    fn protocol_put(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), OpFail> {
        let model = self.consistency();
        let result = match model {
            ConsistencyModel::MultiPrimaries => self.put_multi_primaries(key, value),
            ConsistencyModel::PrimaryBackup { sync } => {
                if self.is_primary() {
                    self.put_as_primary(key, value, sync)
                } else {
                    self.put_via_forwarding(key, value)
                }
            }
            ConsistencyModel::Eventual => self.put_eventual(key, value),
        };
        let model_label = model.to_string();
        let region = self.node.region.to_string();
        let labels = [
            ("consistency", model_label.as_str()),
            ("region", region.as_str()),
        ];
        let metrics = MetricsRegistry::global();
        match &result {
            Ok((_, latency)) => {
                metrics.inc("wiera_put_total", &labels);
                metrics.observe("wiera_put_latency", &labels, *latency);
                self.record_put_latency(self.mesh.clock.now(), *latency);
            }
            Err(_) => metrics.inc("wiera_put_errors", &labels),
        }
        result
    }

    /// Bulk application put: one engine pass, one coalesced replication
    /// fan-out, per-item results. A batch-level failure (no coordinator, no
    /// primary, forwarding failure) fails every item with the same code;
    /// per-item engine errors leave the rest of the batch intact.
    fn protocol_put_batch(
        self: &Arc<Self>,
        items: Vec<PutItem>,
        started: SimInstant,
    ) -> (Vec<ItemResult>, SimDuration) {
        {
            let mut dp = self.direct_puts.lock();
            for _ in &items {
                dp.push_back(started);
            }
        }
        let model = self.consistency();
        let attempt = match model {
            ConsistencyModel::MultiPrimaries => self.put_batch_multi_primaries(&items),
            ConsistencyModel::PrimaryBackup { sync } => {
                if self.is_primary() {
                    Ok(self.put_batch_as_primary(&items, sync))
                } else {
                    self.put_batch_via_forwarding(&items)
                }
            }
            ConsistencyModel::Eventual => Ok(self.put_batch_local_queued(&items)),
        };
        let (results, took) = match attempt {
            Ok(x) => x,
            Err(f) => {
                let results = items
                    .iter()
                    .map(|_| ItemResult::Err {
                        code: f.code,
                        why: f.why.clone(),
                    })
                    .collect();
                (results, SimDuration::from_millis(1))
            }
        };
        let model_label = model.to_string();
        let region = self.node.region.to_string();
        let labels = [
            ("consistency", model_label.as_str()),
            ("region", region.as_str()),
        ];
        let metrics = MetricsRegistry::global();
        let ok = results
            .iter()
            .filter(|r| matches!(r, ItemResult::Put { .. }))
            .count() as u64;
        metrics.counter("wiera_put_total", &labels).add(ok);
        metrics
            .counter("wiera_put_errors", &labels)
            .add(results.len() as u64 - ok);
        if ok > 0 {
            metrics.observe("wiera_put_latency", &labels, took);
            self.record_put_latency(self.mesh.clock.now(), took);
        }
        for (item, res) in items.iter().zip(&results) {
            if let ItemResult::Put { version } = res {
                self.record_history(
                    "mput",
                    &item.key,
                    *version,
                    value_digest(&item.value),
                    started,
                    took,
                );
            }
        }
        (results, took)
    }

    /// Execute a batch's writes locally in one engine pass. Returns per-item
    /// results, the successfully written objects (replication payload), and
    /// the engine latency.
    fn run_batch_puts(
        &self,
        items: &[PutItem],
        modified: SimInstant,
    ) -> (Vec<ItemResult>, Vec<SyncObject>, SimDuration) {
        let ops: Vec<BatchOp> = items
            .iter()
            .map(|i| BatchOp::Put {
                key: i.key.clone(),
                value: i.value.clone(),
            })
            .collect();
        let (outs, total) = self.inst.apply_batch(&ops);
        let mut results = Vec::with_capacity(outs.len());
        let mut written = Vec::new();
        for (item, out) in items.iter().zip(outs) {
            match out {
                Ok(o) => {
                    results.push(ItemResult::Put { version: o.version });
                    written.push(SyncObject {
                        key: item.key.clone(),
                        version: o.version,
                        modified,
                        value: item.value.clone(),
                    });
                }
                Err(e) => results.push(ItemResult::Err {
                    code: fail_code(&e),
                    why: e.to_string(),
                }),
            }
        }
        (results, written, total)
    }

    /// Batched Fig. 3(a): take the global locks for every distinct key in
    /// sorted order (a total order across concurrent batchers, so two
    /// overlapping batches cannot deadlock), write once, broadcast once.
    fn put_batch_multi_primaries(
        self: &Arc<Self>,
        items: &[PutItem],
    ) -> Result<(Vec<ItemResult>, SimDuration), OpFail> {
        let coord = self
            .coord_client()
            .ok_or_else(|| OpFail::blocked("multi-primaries requires a coordinator"))?;
        let mut keys: Vec<&str> = items.iter().map(|i| i.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut guards = Vec::with_capacity(keys.len());
        let mut lock_cost = SimDuration::ZERO;
        for key in keys {
            let (guard, cost) = coord
                .lock(&format!("/keys/{key}"))
                .map_err(|e| OpFail::blocked(format!("lock: {e}")))?;
            guards.push(guard);
            lock_cost += cost;
        }
        let modified = self.mesh.clock.now();
        let (results, written, engine) = self.run_batch_puts(items, modified);
        let bcast = self.broadcast_batch_sync(&written);
        drop(guards); // asynchronous release, off the latency path
        if bcast.fenced {
            self.rollback_written(&written);
            self.note_fenced("deposed_mput");
            return Err(OpFail::new(
                FailCode::StaleEpoch,
                "fenced: this node's epoch is stale",
            ));
        }
        Ok((results, lock_cost + engine + bcast.latency))
    }

    /// Batched Fig. 3(b), primary side: one engine pass, then one
    /// synchronous `ReplicateBatch` per backup (concurrently) or one queue
    /// append for the whole batch.
    fn put_batch_as_primary(
        self: &Arc<Self>,
        items: &[PutItem],
        sync: bool,
    ) -> (Vec<ItemResult>, SimDuration) {
        let modified = self.mesh.clock.now();
        let (mut results, written, engine) = self.run_batch_puts(items, modified);
        let extra = if sync {
            let bcast = self.broadcast_batch_sync(&written);
            if bcast.fenced {
                // Deposed primary: undo the never-acknowledged local writes
                // and fail each item so the client retries at the winner.
                self.rollback_written(&written);
                self.note_fenced("deposed_mput");
                for r in results.iter_mut() {
                    if matches!(r, ItemResult::Put { .. }) {
                        *r = ItemResult::Err {
                            code: FailCode::StaleEpoch,
                            why: "fenced: this node is no longer the primary".into(),
                        };
                    }
                }
            }
            bcast.latency
        } else {
            let mut q = self.queue.lock();
            for w in written {
                q.push_back(w);
            }
            SimDuration::ZERO
        };
        (results, engine + extra)
    }

    /// Batched eventual put: local engine pass plus one queue append.
    fn put_batch_local_queued(
        self: &Arc<Self>,
        items: &[PutItem],
    ) -> (Vec<ItemResult>, SimDuration) {
        let modified = self.mesh.clock.now();
        let (results, written, engine) = self.run_batch_puts(items, modified);
        let mut q = self.queue.lock();
        for w in written {
            q.push_back(w);
        }
        (results, engine)
    }

    /// Batched Fig. 3(b), non-primary side: forward the whole batch to the
    /// primary in one message and relay its per-item results.
    fn put_batch_via_forwarding(
        self: &Arc<Self>,
        items: &[PutItem],
    ) -> Result<(Vec<ItemResult>, SimDuration), OpFail> {
        let primary = self
            .primary()
            .ok_or_else(|| OpFail::blocked("no primary configured"))?;
        let msg = DataMsg::MultiPut {
            items: items.to_vec(),
        };
        let bytes = msg.wire_bytes();
        self.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
        match self
            .mesh
            .rpc(&self.node, &primary, msg, bytes, DATA_TIMEOUT)
        {
            Ok(r) => {
                let total = r.total();
                match r.msg {
                    DataMsg::MultiReply { results } => Ok((results, total)),
                    DataMsg::Fail { code, why } => Err(OpFail::new(code, why)),
                    other => Err(OpFail::internal(format!("bad forward reply {other:?}"))),
                }
            }
            Err(e) => Err(OpFail::blocked(format!("forward failed: {e}"))),
        }
    }

    /// Fig. 3(a): global lock → local store → synchronous broadcast →
    /// release.
    fn put_multi_primaries(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), OpFail> {
        let coord = self
            .coord_client()
            .ok_or_else(|| OpFail::blocked("multi-primaries requires a coordinator"))?;
        let (guard, lock_cost) = coord
            .lock(&format!("/keys/{key}"))
            .map_err(|e| OpFail::blocked(format!("lock: {e}")))?;
        let modified = self.mesh.clock.now();
        let out = self.inst.put(key, value.clone())?;
        let bcast = self.broadcast_sync(key, out.version, modified, &value);
        drop(guard); // asynchronous release, off the latency path
        if bcast.fenced {
            let _ = self.inst.remove_version(key, out.version);
            self.note_fenced("deposed_put");
            return Err(OpFail::new(
                FailCode::StaleEpoch,
                "fenced: this node's epoch is stale",
            ));
        }
        Ok((out.version, lock_cost + out.latency + bcast.latency))
    }

    /// Fig. 4: local store + queue for background distribution.
    fn put_eventual(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), OpFail> {
        let modified = self.mesh.clock.now();
        let out = self.inst.put(key, value.clone())?;
        self.queue.lock().push_back(SyncObject {
            key: key.to_string(),
            version: out.version,
            modified,
            value,
        });
        Ok((out.version, out.latency))
    }

    /// Fig. 3(b), primary side: local store + propagate (sync `copy` or
    /// async `queue`).
    fn put_as_primary(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
        sync: bool,
    ) -> Result<(u64, SimDuration), OpFail> {
        let modified = self.mesh.clock.now();
        let out = self.inst.put(key, value.clone())?;
        let extra = if sync {
            let bcast = self.broadcast_sync(key, out.version, modified, &value);
            if bcast.fenced {
                // Deposed primary (§4.4): a peer at a higher epoch refused
                // the copy. Undo the never-acknowledged local write and fail
                // the put so the client retries at the elected primary.
                let _ = self.inst.remove_version(key, out.version);
                self.note_fenced("deposed_put");
                return Err(OpFail::new(
                    FailCode::StaleEpoch,
                    "fenced: this node is no longer the primary",
                ));
            }
            bcast.latency
        } else {
            self.queue.lock().push_back(SyncObject {
                key: key.to_string(),
                version: out.version,
                modified,
                value,
            });
            SimDuration::ZERO
        };
        Ok((out.version, out.latency + extra))
    }

    fn primary_side_put(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), OpFail> {
        let sync = match self.consistency() {
            ConsistencyModel::PrimaryBackup { sync } => sync,
            // A forwarded put that races a consistency switch still applies.
            _ => false,
        };
        self.put_as_primary(key, value, sync)
    }

    /// Fig. 3(b), non-primary side: forward to the primary and relay the ack.
    fn put_via_forwarding(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), OpFail> {
        let primary = self
            .primary()
            .ok_or_else(|| OpFail::blocked("no primary configured"))?;
        let msg = DataMsg::ForwardPut {
            key: key.to_string(),
            value,
            origin: self.node.clone(),
            epoch: self.epoch(),
        };
        let bytes = msg.wire_bytes();
        self.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
        match self
            .mesh
            .rpc(&self.node, &primary, msg, bytes, DATA_TIMEOUT)
        {
            Ok(r) => {
                let total = r.total();
                match r.msg {
                    DataMsg::PutAck { version } => Ok((version, total)),
                    DataMsg::Fail { code, why } => Err(OpFail::new(code, why)),
                    other => Err(OpFail::internal(format!("bad forward reply {other:?}"))),
                }
            }
            Err(e) => Err(OpFail::blocked(format!("forward failed: {e}"))),
        }
    }

    /// Parallel synchronous replication; latency is the slowest peer (the
    /// "highest round trip latency" the paper attributes to strong puts).
    /// `fenced` in the outcome means a peer at a higher epoch refused us —
    /// we are a deposed primary and the write must not be acknowledged.
    fn broadcast_sync(
        self: &Arc<Self>,
        key: &str,
        version: u64,
        modified: SimInstant,
        value: &Bytes,
    ) -> BroadcastOutcome {
        let peers = self.peers();
        if peers.is_empty() {
            return BroadcastOutcome::default();
        }
        let epoch = self.epoch();
        let mut handles = Vec::new();
        for peer in peers {
            let r = self.clone();
            let msg = DataMsg::Replicate {
                key: key.to_string(),
                version,
                modified,
                value: value.clone(),
                epoch,
            };
            handles.push(std::thread::spawn(move || {
                let bytes = msg.wire_bytes();
                match r.mesh.rpc(&r.node, &peer, msg, bytes, DATA_TIMEOUT) {
                    Ok(reply) => {
                        r.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
                        match reply.msg {
                            DataMsg::ReplicateAck { .. } => Some((reply.total(), false)),
                            DataMsg::Fail {
                                code: FailCode::StaleEpoch,
                                ..
                            } => Some((reply.total(), true)),
                            // Anything else means the peer did not apply the
                            // write; count it like a transport failure.
                            _ => {
                                r.stats.replication_failures.fetch_add(1, Ordering::Relaxed);
                                None
                            }
                        }
                    }
                    Err(_) => {
                        r.stats.replication_failures.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }));
        }
        let mut out = BroadcastOutcome::default();
        for h in handles {
            if let Ok(Some((total, fenced))) = h.join() {
                out.latency = out.latency.max(total);
                out.fenced |= fenced;
            }
        }
        out
    }

    /// Synchronous batched replication: one [`DataMsg::ReplicateBatch`] per
    /// peer, fanned out concurrently; latency is the slowest peer, exactly
    /// like [`Self::broadcast_sync`] but with one message per peer instead
    /// of one per item.
    fn broadcast_batch_sync(self: &Arc<Self>, written: &[SyncObject]) -> BroadcastOutcome {
        let peers = self.peers();
        if peers.is_empty() || written.is_empty() {
            return BroadcastOutcome::default();
        }
        let epoch = self.epoch();
        // Materialize the batch once; each peer thread shares it by refcount.
        let items: Arc<[SyncObject]> = written.to_vec().into();
        let mut handles = Vec::new();
        for peer in peers {
            let r = self.clone();
            let msg = DataMsg::ReplicateBatch {
                items: Arc::clone(&items),
                epoch,
            };
            handles.push(std::thread::spawn(move || {
                let bytes = msg.wire_bytes();
                match r.mesh.rpc(&r.node, &peer, msg, bytes, DATA_TIMEOUT) {
                    Ok(reply) => {
                        r.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
                        match reply.msg {
                            DataMsg::ReplicateAck { .. } => Some((reply.total(), false)),
                            DataMsg::Fail {
                                code: FailCode::StaleEpoch,
                                ..
                            } => Some((reply.total(), true)),
                            // Anything else means the peer did not apply the
                            // write; count it like a transport failure.
                            _ => {
                                r.stats.replication_failures.fetch_add(1, Ordering::Relaxed);
                                None
                            }
                        }
                    }
                    Err(_) => {
                        r.stats.replication_failures.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }));
        }
        let mut out = BroadcastOutcome::default();
        for h in handles {
            if let Ok(Some((total, fenced))) = h.join() {
                out.latency = out.latency.max(total);
                out.fenced |= fenced;
            }
        }
        out
    }

    /// Application get: local read, or forwarded when the deployment routes
    /// gets elsewhere (§5.4's "all get operations forwarded to the AWS
    /// instance's memory tier").
    fn protocol_get(
        self: &Arc<Self>,
        key: &str,
        version: Option<u64>,
    ) -> Result<(Bytes, u64, SimInstant, SimDuration), OpFail> {
        // Clone the route and release the lock before any network hop: the
        // if-let scrutinee would otherwise keep the read guard alive across
        // the forwarded RPC, stalling route updates for the call's duration.
        let forward = self.forward_gets_to.read().clone();
        if let Some(target) = forward {
            if target != self.node {
                let msg = match version {
                    Some(v) => DataMsg::GetVersion {
                        key: key.to_string(),
                        version: v,
                    },
                    None => DataMsg::Get {
                        key: key.to_string(),
                    },
                };
                let bytes = msg.wire_bytes();
                let region = self.node.region.to_string();
                let labels = [("region", region.as_str()), ("route", "forwarded")];
                let metrics = MetricsRegistry::global();
                return match self.mesh.rpc(&self.node, &target, msg, bytes, DATA_TIMEOUT) {
                    Ok(r) => {
                        let total = r.total();
                        match r.msg {
                            DataMsg::GetReply {
                                value,
                                version,
                                modified,
                                ..
                            } => {
                                metrics.inc("wiera_get_total", &labels);
                                metrics.observe("wiera_get_latency", &labels, total);
                                Ok((value, version, modified, total))
                            }
                            DataMsg::Fail { code, why } => {
                                metrics.inc("wiera_get_errors", &labels);
                                Err(OpFail::new(code, why))
                            }
                            other => {
                                metrics.inc("wiera_get_errors", &labels);
                                Err(OpFail::internal(format!("bad get reply {other:?}")))
                            }
                        }
                    }
                    Err(e) => {
                        metrics.inc("wiera_get_errors", &labels);
                        Err(OpFail::blocked(format!("forwarded get failed: {e}")))
                    }
                };
            }
        }
        let region = self.node.region.to_string();
        let labels = [("region", region.as_str()), ("route", "local")];
        let metrics = MetricsRegistry::global();
        let out = match version {
            Some(v) => self.inst.get_version(key, v),
            None => self.inst.get(key),
        }
        .map_err(|e| {
            metrics.inc("wiera_get_errors", &labels);
            OpFail::from(e)
        })?;
        metrics.inc("wiera_get_total", &labels);
        metrics.observe("wiera_get_latency", &labels, out.latency);
        let modified = self
            .inst
            .meta()
            .with(key, |o| o.versions.get(&out.version).map(|m| m.modified))
            .flatten()
            .unwrap_or(SimInstant::EPOCH);
        let value = out.value.ok_or_else(|| {
            metrics.inc("wiera_get_errors", &labels);
            OpFail::internal(format!("get '{key}' returned metadata but no bytes"))
        })?;
        Ok((value, out.version, modified, out.latency))
    }

    /// Bulk application get: forwarded whole when the deployment routes gets
    /// elsewhere, otherwise one engine pass over every key. Per-item errors
    /// (missing keys) do not affect the rest of the batch.
    fn protocol_get_batch(self: &Arc<Self>, keys: &[String]) -> (Vec<ItemResult>, SimDuration) {
        let region = self.node.region.to_string();
        let metrics = MetricsRegistry::global();
        // As in `protocol_get`: drop the route guard before the network hop.
        let forward = self.forward_gets_to.read().clone();
        if let Some(target) = forward {
            if target != self.node {
                let labels = [("region", region.as_str()), ("route", "forwarded")];
                let msg = DataMsg::MultiGet {
                    keys: keys.to_vec(),
                };
                let bytes = msg.wire_bytes();
                return match self.mesh.rpc(&self.node, &target, msg, bytes, DATA_TIMEOUT) {
                    Ok(r) => {
                        let total = r.total();
                        match r.msg {
                            DataMsg::MultiReply { results } => {
                                let ok = results
                                    .iter()
                                    .filter(|x| matches!(x, ItemResult::Value { .. }))
                                    .count() as u64;
                                metrics.counter("wiera_get_total", &labels).add(ok);
                                metrics
                                    .counter("wiera_get_errors", &labels)
                                    .add(results.len() as u64 - ok);
                                metrics.observe("wiera_get_latency", &labels, total);
                                (results, total)
                            }
                            DataMsg::Fail { code, why } => {
                                metrics
                                    .counter("wiera_get_errors", &labels)
                                    .add(keys.len() as u64);
                                (batch_failure(keys.len(), code, &why), total)
                            }
                            other => {
                                metrics
                                    .counter("wiera_get_errors", &labels)
                                    .add(keys.len() as u64);
                                (
                                    batch_failure(
                                        keys.len(),
                                        FailCode::Internal,
                                        &format!("bad get reply {other:?}"),
                                    ),
                                    total,
                                )
                            }
                        }
                    }
                    Err(e) => {
                        metrics
                            .counter("wiera_get_errors", &labels)
                            .add(keys.len() as u64);
                        (
                            batch_failure(
                                keys.len(),
                                FailCode::Blocked,
                                &format!("forwarded get failed: {e}"),
                            ),
                            SimDuration::from_millis(1),
                        )
                    }
                };
            }
        }
        let labels = [("region", region.as_str()), ("route", "local")];
        let ops: Vec<BatchOp> = keys
            .iter()
            .map(|k| BatchOp::Get { key: k.clone() })
            .collect();
        let (outs, total) = self.inst.apply_batch(&ops);
        let mut results = Vec::with_capacity(outs.len());
        for (key, out) in keys.iter().zip(outs) {
            results.push(match out {
                Ok(o) => {
                    let modified = self
                        .inst
                        .meta()
                        .with(key, |obj| obj.versions.get(&o.version).map(|m| m.modified))
                        .flatten()
                        .unwrap_or(SimInstant::EPOCH);
                    match o.value {
                        Some(value) => ItemResult::Value {
                            value,
                            version: o.version,
                            modified,
                        },
                        None => ItemResult::Err {
                            code: FailCode::Internal,
                            why: format!("get '{key}' returned metadata but no bytes"),
                        },
                    }
                }
                Err(e) => ItemResult::Err {
                    code: fail_code(&e),
                    why: e.to_string(),
                },
            });
        }
        let ok = results
            .iter()
            .filter(|x| matches!(x, ItemResult::Value { .. }))
            .count() as u64;
        metrics.counter("wiera_get_total", &labels).add(ok);
        metrics
            .counter("wiera_get_errors", &labels)
            .add(results.len() as u64 - ok);
        metrics.observe("wiera_get_latency", &labels, total);
        (results, total)
    }

    /// Emit one consistency-history event on the sim-time axis. The
    /// `wiera-check` oracle reconstructs operation intervals from these
    /// `subsystem = "history"` trace events and checks them against the
    /// deployment's deduced consistency model.
    fn record_history(
        &self,
        op: &str,
        key: &str,
        version: u64,
        digest: u64,
        start: SimInstant,
        latency: SimDuration,
    ) {
        Tracer::global()
            .span(start, "history", op)
            .region(self.node.region.to_string())
            .node(self.node.name.as_ref())
            .detail(format!("key={key} ver={version} val={digest:016x}"))
            .finish(start + latency);
    }

    // ---- direct (in-process) API for deployments and tests -----------------

    /// Install peers/primary directly (used by the deployment layer when the
    /// controller and replica share a process).
    pub fn set_peers_direct(&self, peers: Vec<NodeId>, primary: Option<NodeId>, epoch: u64) {
        let mut s = self.state.write();
        if epoch >= s.epoch {
            s.peers = peers.into_iter().filter(|p| *p != self.node).collect();
            s.primary = primary;
            s.epoch = epoch;
        }
    }
}

/// Slowest-peer latency of a synchronous replication fan-out, plus whether
/// any peer fenced us as a stale-epoch (deposed) sender.
#[derive(Debug, Clone, Copy)]
struct BroadcastOutcome {
    latency: SimDuration,
    fenced: bool,
}

impl Default for BroadcastOutcome {
    fn default() -> Self {
        BroadcastOutcome {
            latency: SimDuration::ZERO,
            fenced: false,
        }
    }
}

/// What an anti-entropy round moved (§4.4 rejoin catch-up).
#[derive(Debug, Clone, Default)]
pub struct AntiEntropyReport {
    /// Objects pulled because the local copy was missing or older.
    pub pulled: usize,
    /// Surviving local objects pushed because the peer's copy was older.
    pub pushed: usize,
    /// The peer diffed against, if one was reachable.
    pub peer: Option<NodeId>,
}

/// Coord lease znode for a replica: `/leases/{deployment}/{name}` (the node
/// name already carries the deployment prefix).
pub fn lease_path(node: &NodeId) -> String {
    format!("/leases/{}", node.name)
}

/// Coord election lock for the deployment a replica belongs to.
pub fn election_path(node: &NodeId) -> String {
    let deployment = node.name.split('/').next().unwrap_or("");
    format!("/election/{deployment}")
}

/// The wire-level refusal a fenced sender sees.
fn stale_epoch_fail(got: u64, current: u64) -> DataMsg {
    DataMsg::Fail {
        code: FailCode::StaleEpoch,
        why: format!("stale epoch {got} < {current}"),
    }
}

/// Fan a batch-level failure out to every item in the batch.
fn batch_failure(len: usize, code: FailCode, why: &str) -> Vec<ItemResult> {
    (0..len)
        .map(|_| ItemResult::Err {
            code,
            why: why.to_string(),
        })
        .collect()
}

/// FNV-1a digest of a value body, so history events can carry a compact,
/// comparable fingerprint of what was written or read.
fn value_digest(value: &Bytes) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in value.iter() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Result of a client-visible operation, with the modeled latency the
/// application perceived.
#[derive(Debug, Clone)]
pub struct OpView {
    pub version: u64,
    pub value: Option<Bytes>,
    pub modified: SimInstant,
    pub latency: SimDuration,
    pub served_by: NodeId,
    /// The value was served degraded (possibly stale; eventual policy under
    /// overload, with the client's explicit consent). Always `false` for
    /// writes and for reads served normally.
    pub degraded: bool,
}

/// Historical name for the unified [`crate::errors::WieraError`], kept so
/// replica-layer signatures keep reading as application errors.
pub use crate::errors::WieraError as AppError;

/// Translate a replica's reply into the client-visible [`OpView`], the one
/// place where wire messages become typed results (shared by [`app_rpc`]
/// and `WieraClient`'s failover loop).
pub(crate) fn view_of_reply(
    msg: DataMsg,
    latency: SimDuration,
    served_by: &NodeId,
) -> Result<OpView, AppError> {
    match msg {
        DataMsg::PutAck { version } => Ok(OpView {
            version,
            value: None,
            modified: SimInstant::EPOCH,
            latency,
            served_by: served_by.clone(),
            degraded: false,
        }),
        DataMsg::GetReply {
            value,
            version,
            modified,
            degraded,
        } => Ok(OpView {
            version,
            value: Some(value),
            modified,
            latency,
            served_by: served_by.clone(),
            degraded,
        }),
        DataMsg::VersionList { versions } => Ok(OpView {
            version: versions.last().copied().unwrap_or(0),
            value: None,
            modified: SimInstant::EPOCH,
            latency,
            served_by: served_by.clone(),
            degraded: false,
        }),
        DataMsg::Removed | DataMsg::Ok => Ok(OpView {
            version: 0,
            value: None,
            modified: SimInstant::EPOCH,
            latency,
            served_by: served_by.clone(),
            degraded: false,
        }),
        DataMsg::Fail { code, why } => Err(AppError::Remote { code, why }),
        other => Err(AppError::internal(format!("unexpected reply {other:?}"))),
    }
}

/// Translate one item of a batched reply into an [`OpView`]. The latency is
/// the whole batch's round trip: every item completed when the batch did.
pub(crate) fn view_of_item(
    item: ItemResult,
    latency: SimDuration,
    served_by: &NodeId,
) -> Result<OpView, AppError> {
    match item {
        ItemResult::Put { version } => Ok(OpView {
            version,
            value: None,
            modified: SimInstant::EPOCH,
            latency,
            served_by: served_by.clone(),
            degraded: false,
        }),
        ItemResult::Value {
            value,
            version,
            modified,
        } => Ok(OpView {
            version,
            value: Some(value),
            modified,
            latency,
            served_by: served_by.clone(),
            degraded: false,
        }),
        ItemResult::Err { code, why } => Err(AppError::Remote { code, why }),
    }
}

/// Send an RPC to a replica as an application would, translating the reply.
/// Used by the client layer and by tests.
pub fn app_rpc(
    mesh: &Arc<Mesh<DataMsg>>,
    from: &NodeId,
    to: &NodeId,
    msg: DataMsg,
) -> Result<OpView, AppError> {
    let bytes = msg.wire_bytes();
    let reply = mesh
        .rpc(from, to, msg, bytes, DATA_TIMEOUT)
        .map_err(AppError::Net)?;
    let latency = reply.total();
    view_of_reply(reply.msg, latency, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_net::{Fabric, Region};
    use wiera_sim::ScaledClock;

    fn mesh(scale: f64) -> Arc<Mesh<DataMsg>> {
        Mesh::new(
            Arc::new(Fabric::multicloud(5).without_jitter()),
            ScaledClock::shared(scale),
        )
    }

    fn replica(
        mesh: &Arc<Mesh<DataMsg>>,
        region: Region,
        name: &str,
        consistency: ConsistencyModel,
    ) -> Arc<ReplicaNode> {
        let node = NodeId::new(region, name);
        let instance = InstanceConfig::new(name, region)
            .with_tier("tier1", "Memcached", 1 << 30)
            .with_tier("tier2", "EBS", 1 << 30)
            .with_sleep(true, false);
        ReplicaNode::spawn(
            mesh.clone(),
            ReplicaConfig {
                node,
                instance,
                consistency,
                flush_interval: SimDuration::from_millis(200),
                coord: None,
                forward_gets_to: None,
                shard_group: None,
                service_time: None,
                overload: None,
            },
        )
        .expect("replica spawns")
    }

    fn wire(replicas: &[&Arc<ReplicaNode>], primary: Option<&Arc<ReplicaNode>>) {
        let peers: Vec<NodeId> = replicas.iter().map(|r| r.node.clone()).collect();
        for r in replicas {
            r.set_peers_direct(peers.clone(), primary.map(|p| p.node.clone()), 1);
        }
    }

    #[test]
    fn eventual_put_is_fast_and_replicates_in_background() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        let b = replica(&m, Region::EuWest, "b", ConsistencyModel::Eventual);
        wire(&[&a, &b], None);
        let client = NodeId::new(Region::UsEast, "cli");
        let put = app_rpc(
            &m,
            &client,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap();
        // Eventual put: local write + intra-DC hop only — well under 10 ms.
        assert!(
            put.latency.as_millis_f64() < 10.0,
            "eventual put {}",
            put.latency
        );
        // The EU replica converges once the flusher runs (200 ms interval +
        // 40 ms WAN, compressed 3000x).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        loop {
            if b.instance().get("k").is_ok() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "replication never arrived"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(b.instance().get("k").unwrap().value.unwrap().as_ref(), b"v");
    }

    #[test]
    fn primary_backup_sync_forwarding_and_latency() {
        let m = mesh(3000.0);
        let p = replica(
            &m,
            Region::UsWest,
            "p",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        let s = replica(
            &m,
            Region::UsEast,
            "s",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        wire(&[&p, &s], Some(&p));
        let client = NodeId::new(Region::UsEast, "cli");
        // Put at the secondary: forwarded to US-West, which broadcasts back.
        let put = app_rpc(
            &m,
            &client,
            &s.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap();
        // ≥ 2 cross-country RTTs (forward + sync copy) ≈ 140 ms+.
        assert!(
            put.latency.as_millis_f64() > 130.0,
            "forwarded sync put {}",
            put.latency
        );
        // Both replicas hold the data immediately after the ack.
        assert!(p.instance().get("k").is_ok());
        assert!(s.instance().get("k").is_ok());
        // Primary recorded the forwarded put for the requests monitor.
        let fwd = p.forwarded_puts_since(SimInstant::EPOCH);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].1, 1);
    }

    #[test]
    fn primary_put_at_primary_is_one_local_write_plus_broadcast() {
        let m = mesh(3000.0);
        let p = replica(
            &m,
            Region::UsWest,
            "p",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        let s = replica(
            &m,
            Region::AsiaEast,
            "s",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        wire(&[&p, &s], Some(&p));
        let client = NodeId::new(Region::UsWest, "cli");
        let put = app_rpc(
            &m,
            &client,
            &p.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap();
        // One US-West↔Tokyo round trip (110 ms) dominates.
        let ms = put.latency.as_millis_f64();
        assert!((100.0..200.0).contains(&ms), "primary sync put {ms}ms");
    }

    #[test]
    fn lww_on_concurrent_eventual_writes() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        let b = replica(&m, Region::EuWest, "b", ConsistencyModel::Eventual);
        wire(&[&a, &b], None);
        let ca = NodeId::new(Region::UsEast, "ca");
        let cb = NodeId::new(Region::EuWest, "cb");
        // Both write version 1 concurrently; after convergence both replicas
        // agree on a single winner (the later modified timestamp).
        app_rpc(
            &m,
            &ca,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"from-a"),
            },
        )
        .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        app_rpc(
            &m,
            &cb,
            &b.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"from-b"),
            },
        )
        .unwrap();

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        let (va, vb) = loop {
            let va = a.instance().get("k").ok().and_then(|o| o.value);
            let vb = b.instance().get("k").ok().and_then(|o| o.value);
            if let (Some(va), Some(vb)) = (&va, &vb) {
                if va == vb {
                    break (va.clone(), vb.clone());
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "never converged: {va:?} vs {vb:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert_eq!(va, vb);
        assert_eq!(va.as_ref(), b"from-b", "later write wins");
    }

    #[test]
    fn consistency_switch_drains_queue_first() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        let b = replica(&m, Region::UsWest, "b", ConsistencyModel::Eventual);
        wire(&[&a, &b], None);
        let client = NodeId::new(Region::UsEast, "cli");
        app_rpc(
            &m,
            &client,
            &a.node,
            DataMsg::Put {
                key: "q".into(),
                value: Bytes::from_static(b"queued"),
            },
        )
        .unwrap();
        // Immediately switch (before the 200 ms flusher runs): the switch
        // must drain the queue synchronously.
        let ctrl = NodeId::new(Region::UsEast, "ctrl");
        let reply = m
            .rpc(
                &ctrl,
                &a.node,
                DataMsg::ChangeConsistency {
                    to: ConsistencyModel::MultiPrimaries,
                    epoch: 2,
                },
                64,
                SimDuration::from_secs(60),
            )
            .unwrap();
        assert!(matches!(reply.msg, DataMsg::Ok));
        assert_eq!(a.queue_len(), 0);
        assert_eq!(a.consistency(), ConsistencyModel::MultiPrimaries);
        assert!(
            b.instance().get("q").is_ok(),
            "queued update applied before switch completed"
        );
        assert_eq!(a.stats.switches.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stale_epoch_control_messages_ignored() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        wire(&[&a], None);
        a.set_peers_direct(vec![], None, 5);
        let ctrl = NodeId::new(Region::UsEast, "ctrl");
        m.rpc(
            &ctrl,
            &a.node,
            DataMsg::ChangeConsistency {
                to: ConsistencyModel::MultiPrimaries,
                epoch: 3,
            },
            64,
            SimDuration::from_secs(30),
        )
        .unwrap();
        assert_eq!(
            a.consistency(),
            ConsistencyModel::Eventual,
            "stale epoch ignored"
        );
        assert_eq!(a.epoch(), 5);
    }

    #[test]
    fn get_forwarding_routes_reads_remotely() {
        let m = mesh(3000.0);
        let azure = replica(
            &m,
            Region::AzureUsEast,
            "az",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        let aws = replica(
            &m,
            Region::UsEast,
            "aws",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        wire(&[&azure, &aws], Some(&azure));
        azure.set_forward_gets_to(Some(aws.node.clone()));
        let client = NodeId::new(Region::AzureUsEast, "cli");
        app_rpc(
            &m,
            &client,
            &azure.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap();
        let got = app_rpc(&m, &client, &azure.node, DataMsg::Get { key: "k".into() }).unwrap();
        assert_eq!(got.value.unwrap().as_ref(), b"v");
        // Read crossed to AWS and back: ≥ 2 ms RTT but well under local-disk
        // alternatives is the point of §5.4; just assert it paid the hop.
        assert!(
            got.latency.as_millis_f64() > 1.5,
            "remote get {}",
            got.latency
        );
    }

    #[test]
    fn version_list_and_remove_through_the_wire() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        wire(&[&a], None);
        let cli = NodeId::new(Region::UsEast, "cli");
        app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"1"),
            },
        )
        .unwrap();
        app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"2"),
            },
        )
        .unwrap();
        let list = app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::GetVersionList { key: "k".into() },
        )
        .unwrap();
        assert_eq!(list.version, 2, "latest version from the list");
        let v1 = app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::GetVersion {
                key: "k".into(),
                version: 1,
            },
        )
        .unwrap();
        assert_eq!(v1.value.unwrap().as_ref(), b"1");
        app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::RemoveVersion {
                key: "k".into(),
                version: 1,
            },
        )
        .unwrap();
        assert!(app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::GetVersion {
                key: "k".into(),
                version: 1
            }
        )
        .is_err());
        app_rpc(&m, &cli, &a.node, DataMsg::Remove { key: "k".into() }).unwrap();
        assert!(app_rpc(&m, &cli, &a.node, DataMsg::Get { key: "k".into() }).is_err());
    }

    /// Spawn an eventual-consistency replica with the admission model and
    /// CoDel shedding enabled (zero patience interval, so the second op
    /// above target sheds — deterministic for tests).
    fn overloaded_replica(m: &Arc<Mesh<DataMsg>>) -> Arc<ReplicaNode> {
        let node = NodeId::new(Region::UsEast, "ov");
        let instance = InstanceConfig::new("ov", Region::UsEast)
            .with_tier("tier1", "Memcached", 1 << 30)
            .with_sleep(true, false);
        ReplicaNode::spawn(
            m.clone(),
            ReplicaConfig {
                node,
                instance,
                consistency: ConsistencyModel::Eventual,
                flush_interval: SimDuration::from_millis(200),
                coord: None,
                forward_gets_to: None,
                shard_group: None,
                service_time: Some(SimDuration::from_millis(1)),
                overload: Some(OverloadConfig {
                    target_delay: SimDuration::from_millis(10),
                    interval: SimDuration::ZERO,
                }),
            },
        )
        .expect("replica spawns")
    }

    /// Force the admission queue into a standing-overload state: a huge
    /// modeled backlog that has been above target since the epoch.
    fn force_overload(r: &Arc<ReplicaNode>) {
        r.force_backlog(SimDuration::from_secs(3600));
    }

    #[test]
    fn overloaded_replica_sheds_clients_but_not_replication() {
        let m = mesh(3000.0);
        let a = overloaded_replica(&m);
        wire(&[&a], None);
        let cli = NodeId::new(Region::UsEast, "cli");
        force_overload(&a);
        // Client traffic is shed with the retryable Overloaded code.
        let err = app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap_err();
        match &err {
            AppError::Remote { code, .. } => assert_eq!(*code, FailCode::Overloaded),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(err.retryable(), "shed ops must be retryable");
        // Replication is handled inline, bypassing admission entirely: a
        // peer's update still applies while clients are refused.
        let peer = NodeId::new(Region::EuWest, "peer");
        let reply = m
            .rpc(
                &peer,
                &a.node,
                DataMsg::Replicate {
                    key: "r".into(),
                    version: 1,
                    modified: m.clock.now(),
                    value: Bytes::from_static(b"from-peer"),
                    epoch: 1,
                },
                128,
                SimDuration::from_secs(30),
            )
            .expect("replication admitted under overload");
        assert!(matches!(reply.msg, DataMsg::ReplicateAck { applied: true }));
        assert_eq!(a.instance().get("r").unwrap().value.unwrap().as_ref(), b"from-peer");
    }

    #[test]
    fn degraded_get_answers_locally_when_shedding() {
        let m = mesh(3000.0);
        let a = overloaded_replica(&m);
        wire(&[&a], None);
        let cli = NodeId::new(Region::UsEast, "cli");
        app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap();
        force_overload(&a);
        // Without consent the read is shed…
        let err = app_rpc(&m, &cli, &a.node, DataMsg::Get { key: "k".into() }).unwrap_err();
        assert!(matches!(
            err,
            AppError::Remote {
                code: FailCode::Overloaded,
                ..
            }
        ));
        // …with consent it is served from local state, explicitly marked.
        let got = app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::WithBudget {
                deadline_us: None,
                allow_degraded: true,
                inner: Box::new(DataMsg::Get { key: "k".into() }),
            },
        )
        .unwrap();
        assert!(got.degraded, "reply must carry the staleness marker");
        assert_eq!(got.value.unwrap().as_ref(), b"v");
    }

    #[test]
    fn spent_budget_fails_fast_with_deadline_exceeded() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        wire(&[&a], None);
        let cli = NodeId::new(Region::UsEast, "cli");
        // Deadline at the epoch: already spent when the replica sees it.
        let err = app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::WithBudget {
                deadline_us: Some(0),
                allow_degraded: false,
                inner: Box::new(DataMsg::Put {
                    key: "k".into(),
                    value: Bytes::from_static(b"v"),
                }),
            },
        )
        .unwrap_err();
        match &err {
            AppError::Remote { code, .. } => assert_eq!(*code, FailCode::DeadlineExceeded),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(!err.retryable(), "a spent budget must not auto-retry");
        assert!(a.instance().get("k").is_err(), "no work after the deadline");
        // A generous budget behaves exactly like an unwrapped op.
        let ok = app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::WithBudget {
                deadline_us: Some(3_600_000_000),
                allow_degraded: false,
                inner: Box::new(DataMsg::Put {
                    key: "k".into(),
                    value: Bytes::from_static(b"v"),
                }),
            },
        )
        .unwrap();
        assert_eq!(ok.version, 1);
        assert!(!ok.degraded);
    }

    #[test]
    fn state_sync_dump_and_load() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        let b = replica(&m, Region::UsWest, "b", ConsistencyModel::Eventual);
        wire(&[&a], None);
        let cli = NodeId::new(Region::UsEast, "cli");
        for i in 0..5 {
            app_rpc(
                &m,
                &cli,
                &a.node,
                DataMsg::Put {
                    key: format!("k{i}"),
                    value: Bytes::from_static(b"x"),
                },
            )
            .unwrap();
        }
        // Repair b from a's dump via the wire.
        let ctrl = NodeId::new(Region::UsEast, "ctrl");
        let reply = m
            .rpc(
                &ctrl,
                &a.node,
                DataMsg::SyncRequest,
                64,
                SimDuration::from_secs(60),
            )
            .unwrap();
        match reply.msg {
            DataMsg::SyncReply { objects } => {
                assert_eq!(objects.len(), 5);
                b.load_state(objects);
            }
            other => panic!("{other:?}"),
        }
        for i in 0..5 {
            assert!(b.instance().get(&format!("k{i}")).is_ok());
        }
    }
}
