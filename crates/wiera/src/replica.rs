//! A replica: one Tiera instance wrapped in a mesh endpoint, executing the
//! deployment's consistency protocol.
//!
//! Threading model (mirrors §4's description of instances running servers):
//!
//! * a **handler thread** drains the inbox; replication and control messages
//!   are handled inline (they are local and fast), while application
//!   operations are spawned onto worker threads — so a put blocked on a
//!   cross-region broadcast never prevents this replica from applying a
//!   peer's incoming update (which would deadlock two multi-primaries
//!   writers);
//! * a **flusher thread** distributes queued updates every
//!   `flush_interval` (the paper: "applications can specify how frequently
//!   queued updates need to be distributed");
//! * a **gate** blocks application operations while a consistency switch is
//!   in progress (§3.3.2: new requests "blocked and queued until the change
//!   takes effect").

use crate::msg::{DataMsg, SyncObject};
use bytes::Bytes;
use parking_lot::Condvar;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tiera::{InstanceConfig, TieraInstance};
use wiera_coord::CoordClient;
use wiera_net::{Delivery, Mesh, NetError, NodeId};
use wiera_policy::ConsistencyModel;
use wiera_sim::lockreg::{TrackedMutex, TrackedRwLock};
use wiera_sim::{MetricsRegistry, SimDuration, SimInstant, Tracer};

/// RPC timeout for data-path calls.
const DATA_TIMEOUT: SimDuration = SimDuration::from_secs(120);
/// How long the put-latency window is retained for monitors.
const WINDOW_RETENTION: SimDuration = SimDuration::from_secs(120);

/// Per-replica protocol state, swappable at run time.
struct ProtoState {
    consistency: ConsistencyModel,
    peers: Vec<NodeId>,
    primary: Option<NodeId>,
    epoch: u64,
}

/// Gate blocking application operations during a consistency switch.
struct Gate {
    closed: TrackedMutex<bool>,
    cond: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            closed: TrackedMutex::new("replica.gate", false),
            cond: Condvar::new(),
        }
    }

    fn close(&self) {
        *self.closed.lock() = true;
    }

    fn open(&self) {
        *self.closed.lock() = false;
        self.cond.notify_all();
    }

    fn wait_open(&self) {
        let mut closed = self.closed.lock();
        while *closed {
            self.cond.wait(closed.inner_mut());
        }
    }
}

struct QueuedUpdate {
    key: String,
    version: u64,
    modified: SimInstant,
    value: Bytes,
}

/// Construction parameters for a replica.
pub struct ReplicaConfig {
    pub node: NodeId,
    pub instance: InstanceConfig,
    pub consistency: ConsistencyModel,
    /// Queue distribution period for asynchronous propagation.
    pub flush_interval: SimDuration,
    /// Coordination client for the multi-primaries global lock.
    pub coord: Option<Arc<CoordClient>>,
    /// Route application GETs to another node (§5.4's remote-memory reads).
    pub forward_gets_to: Option<NodeId>,
}

/// Observable counters for cost accounting and monitors.
#[derive(Default)]
pub struct ReplicaStats {
    /// Bytes sent to peer instances (inter-DC egress).
    pub egress_bytes: AtomicU64,
    /// Replication messages that failed (peer unreachable).
    pub replication_failures: AtomicU64,
    /// Consistency switches executed.
    pub switches: AtomicU64,
}

/// The running replica.
pub struct ReplicaNode {
    pub node: NodeId,
    mesh: Arc<Mesh<DataMsg>>,
    inst: Arc<TieraInstance>,
    state: TrackedRwLock<ProtoState>,
    gate: Gate,
    queue: TrackedMutex<VecDeque<QueuedUpdate>>,
    coord: Option<Arc<CoordClient>>,
    flush_interval: SimDuration,
    forward_gets_to: TrackedRwLock<Option<NodeId>>,
    stop: Arc<AtomicBool>,
    pub stats: ReplicaStats,
    /// (time, put latency ms) samples for the latency monitor.
    put_window: TrackedMutex<VecDeque<(SimInstant, f64)>>,
    /// Puts received directly from applications (time-stamped).
    direct_puts: TrackedMutex<VecDeque<SimInstant>>,
    /// Puts forwarded to us, per origin replica (primary-side bookkeeping).
    forwarded_puts: TrackedMutex<HashMap<NodeId, VecDeque<SimInstant>>>,
}

impl ReplicaNode {
    /// Build the instance, register on the mesh, and start the handler and
    /// flusher threads. Errors (a policy-driven instance config the engine
    /// rejects, or thread-spawn failure) are returned instead of panicking
    /// so the deployment layer can report them over RPC.
    pub fn spawn(mesh: Arc<Mesh<DataMsg>>, config: ReplicaConfig) -> Result<Arc<Self>, String> {
        let inst = TieraInstance::build(config.instance, mesh.clock.clone())
            .map_err(|e| format!("replica instance config rejected: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let node = config.node.clone();
        let inbox = mesh.register(node.clone());

        let replica = Arc::new(ReplicaNode {
            node,
            mesh,
            inst,
            state: TrackedRwLock::new(
                "replica.state",
                ProtoState {
                    consistency: config.consistency,
                    peers: Vec::new(),
                    primary: None,
                    epoch: 0,
                },
            ),
            gate: Gate::new(),
            queue: TrackedMutex::new("replica.queue", VecDeque::new()),
            coord: config.coord,
            flush_interval: config.flush_interval,
            forward_gets_to: TrackedRwLock::new("replica.forward_gets", config.forward_gets_to),
            stop: stop.clone(),
            stats: ReplicaStats::default(),
            put_window: TrackedMutex::new("replica.put_window", VecDeque::new()),
            direct_puts: TrackedMutex::new("replica.direct_puts", VecDeque::new()),
            forwarded_puts: TrackedMutex::new("replica.forwarded_puts", HashMap::new()),
        });

        // Handler thread.
        {
            let r = replica.clone();
            std::thread::Builder::new()
                .name(format!("replica-{}", r.node))
                .spawn(move || {
                    while !r.stop.load(Ordering::Acquire) {
                        match inbox.recv_timeout(std::time::Duration::from_millis(50)) {
                            Ok(d) => r.dispatch(d),
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        }
                    }
                })
                .map_err(|e| format!("cannot spawn replica handler thread: {e}"))?;
        }
        // Flusher thread.
        {
            let r = replica.clone();
            std::thread::Builder::new()
                .name(format!("flusher-{}", r.node))
                .spawn(move || {
                    while !r.stop.load(Ordering::Acquire) {
                        r.mesh.clock.sleep(r.flush_interval);
                        if r.stop.load(Ordering::Acquire) {
                            return;
                        }
                        r.flush_queue_async();
                    }
                })
                .map_err(|e| format!("cannot spawn replica flusher thread: {e}"))?;
        }
        Ok(replica)
    }

    pub fn instance(&self) -> &Arc<TieraInstance> {
        &self.inst
    }

    pub fn consistency(&self) -> ConsistencyModel {
        self.state.read().consistency
    }

    pub fn is_primary(&self) -> bool {
        self.state.read().primary.as_ref() == Some(&self.node)
    }

    pub fn primary(&self) -> Option<NodeId> {
        self.state.read().primary.clone()
    }

    pub fn peers(&self) -> Vec<NodeId> {
        self.state.read().peers.clone()
    }

    pub fn epoch(&self) -> u64 {
        self.state.read().epoch
    }

    pub fn queue_len(&self) -> usize {
        self.queue.lock().len()
    }

    pub fn set_forward_gets_to(&self, target: Option<NodeId>) {
        *self.forward_gets_to.write() = target;
    }

    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.mesh.unregister(&self.node);
    }

    // ---- monitor-facing observability --------------------------------------

    /// Put-latency samples newer than `since`.
    pub fn put_latencies_since(&self, since: SimInstant) -> Vec<(SimInstant, f64)> {
        self.put_window
            .lock()
            .iter()
            .filter(|(t, _)| *t >= since)
            .copied()
            .collect()
    }

    /// Number of application puts this replica received directly since `since`.
    pub fn direct_puts_since(&self, since: SimInstant) -> usize {
        self.direct_puts
            .lock()
            .iter()
            .filter(|t| **t >= since)
            .count()
    }

    /// Forwarded put counts per origin since `since` (primary-side).
    pub fn forwarded_puts_since(&self, since: SimInstant) -> Vec<(NodeId, usize)> {
        self.forwarded_puts
            .lock()
            .iter()
            .map(|(n, ts)| (n.clone(), ts.iter().filter(|t| **t >= since).count()))
            .collect()
    }

    fn record_put_latency(&self, at: SimInstant, latency: SimDuration) {
        let mut w = self.put_window.lock();
        w.push_back((at, latency.as_millis_f64()));
        let cutoff = at - WINDOW_RETENTION;
        while w.front().map(|(t, _)| *t < cutoff).unwrap_or(false) {
            w.pop_front();
        }
    }

    // ---- message dispatch ---------------------------------------------------

    fn dispatch(self: &Arc<Self>, d: Delivery<DataMsg>) {
        match &d.msg {
            // Application operations may block on WAN round trips: spawn.
            DataMsg::Put { .. }
            | DataMsg::Get { .. }
            | DataMsg::GetVersion { .. }
            | DataMsg::GetVersionList { .. }
            | DataMsg::Update { .. }
            | DataMsg::Remove { .. }
            | DataMsg::RemoveVersion { .. }
            | DataMsg::ForwardPut { .. } => {
                let r = self.clone();
                if let Err(e) = std::thread::Builder::new()
                    .name("replica-worker".into())
                    .spawn(move || r.handle_app_op(d))
                {
                    // The delivery (and its reply slot) died with the
                    // closure; the caller observes an RPC failure rather
                    // than a replica crash.
                    let region = self.node.region.to_string();
                    MetricsRegistry::global()
                        .inc("wiera_worker_spawn_errors", &[("region", region.as_str())]);
                    eprintln!("replica {}: cannot spawn worker thread: {e}", self.node);
                }
            }
            // Replication and control are local and quick: handle inline.
            _ => self.handle_inline(d),
        }
    }

    fn handle_inline(self: &Arc<Self>, d: Delivery<DataMsg>) {
        let reply =
            |slot: Option<wiera_net::ReplySlot<DataMsg>>, msg: DataMsg, took: SimDuration| {
                if let Some(s) = slot {
                    let bytes = msg.wire_bytes();
                    s.reply(msg, took, bytes);
                }
            };
        match d.msg {
            DataMsg::Replicate {
                key,
                version,
                modified,
                value,
            } => {
                let digest = value_digest(&value);
                let out = self.inst.apply_replicated(&key, version, modified, value);
                let (applied, took) = match out {
                    Ok(Some(o)) => (true, o.latency),
                    Ok(None) => (false, SimDuration::from_micros(200)),
                    Err(_) => (false, SimDuration::from_micros(200)),
                };
                if applied {
                    let now = self.mesh.clock.now();
                    self.record_history("replicate_apply", &key, version, digest, now, took);
                }
                reply(d.reply, DataMsg::ReplicateAck { applied }, took);
            }
            DataMsg::SetPeers {
                peers,
                primary,
                epoch,
            } => {
                {
                    let mut s = self.state.write();
                    if epoch >= s.epoch {
                        s.peers = peers.into_iter().filter(|p| *p != self.node).collect();
                        s.primary = primary;
                        s.epoch = epoch;
                    }
                }
                reply(d.reply, DataMsg::Ok, SimDuration::from_micros(200));
            }
            DataMsg::ChangeConsistency { to, epoch } => {
                let took = self.switch_consistency(to, epoch);
                reply(d.reply, DataMsg::Ok, took);
            }
            DataMsg::ChangePrimary { new_primary, epoch } => {
                {
                    let mut s = self.state.write();
                    if epoch >= s.epoch {
                        s.primary = Some(new_primary);
                        s.epoch = epoch;
                    }
                }
                reply(d.reply, DataMsg::Ok, SimDuration::from_micros(200));
            }
            DataMsg::Ping => reply(d.reply, DataMsg::Pong, SimDuration::from_micros(100)),
            DataMsg::SyncRequest => {
                let objects = self.dump_state();
                reply(
                    d.reply,
                    DataMsg::SyncReply { objects },
                    SimDuration::from_millis(5),
                );
            }
            DataMsg::LoadState { objects } => {
                let n = objects.len();
                self.load_state(objects);
                reply(d.reply, DataMsg::Ok, SimDuration::from_millis(n as u64));
            }
            DataMsg::Stop => {
                reply(d.reply, DataMsg::Ok, SimDuration::ZERO);
                self.stop();
            }
            other => {
                reply(
                    d.reply,
                    DataMsg::Fail {
                        why: format!("unexpected message {other:?}"),
                    },
                    SimDuration::ZERO,
                );
            }
        }
    }

    /// Two-phase consistency switch (§3.3.2): close the gate, drain the
    /// update queue so every queued write lands before the new regime, swap
    /// the model, reopen. Returns the modeled switch time.
    fn switch_consistency(&self, to: ConsistencyModel, epoch: u64) -> SimDuration {
        {
            // One write acquisition: taking `state.write()` while the same
            // thread still held `state.read()` was a guaranteed self-deadlock
            // on the no-op-switch path.
            let mut s = self.state.write();
            if epoch < s.epoch {
                return SimDuration::ZERO; // stale control message
            }
            if s.consistency == to {
                s.epoch = s.epoch.max(epoch);
                return SimDuration::ZERO;
            }
        }
        let started = self.mesh.clock.now();
        self.gate.close();
        let drain_cost = self.flush_queue_sync();
        {
            let mut s = self.state.write();
            s.consistency = to;
            s.epoch = epoch;
        }
        self.gate.open();
        self.stats.switches.fetch_add(1, Ordering::Relaxed);
        let took = drain_cost + SimDuration::from_millis(1);
        let to_label = to.to_string();
        MetricsRegistry::global().inc("wiera_consistency_switches", &[("to", to_label.as_str())]);
        MetricsRegistry::global().observe("wiera_consistency_switch_time", &[], took);
        Tracer::global()
            .span(started, "wiera", "consistency_switch")
            .region(self.node.region.to_string())
            .node(self.node.name.as_ref())
            .detail(to_label)
            .finish(started + took);
        took
    }

    /// Drain the queue before a switch. One-way sends, then a wait covering
    /// the slowest modeled delivery: every queued update is applied at its
    /// peer before the new model takes over, without blocking on peer
    /// handlers that may themselves be mid-switch (two replicas switching
    /// simultaneously must not RPC each other from their handler threads —
    /// that deadlocks until timeouts).
    fn flush_queue_sync(&self) -> SimDuration {
        let pending: Vec<QueuedUpdate> = self.queue.lock().drain(..).collect();
        if pending.is_empty() {
            return SimDuration::ZERO;
        }
        let peers = self.peers();
        let mut max_delay = SimDuration::ZERO;
        for u in &pending {
            for peer in &peers {
                let msg = DataMsg::Replicate {
                    key: u.key.clone(),
                    version: u.version,
                    modified: u.modified,
                    value: u.value.clone(),
                };
                let bytes = msg.wire_bytes();
                match self.mesh.send(&self.node, peer, msg, bytes) {
                    Ok(delay) => {
                        self.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
                        max_delay = max_delay.max(delay);
                    }
                    Err(_) => {
                        self.stats
                            .replication_failures
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        // Wait out the slowest delivery (plus slack for the peer to apply).
        self.mesh
            .clock
            .sleep(max_delay + SimDuration::from_millis(10));
        max_delay
    }

    /// Periodic asynchronous distribution of queued updates (one-way sends
    /// that arrive after the modeled latency — replicas genuinely lag).
    fn flush_queue_async(&self) {
        let pending: Vec<QueuedUpdate> = self.queue.lock().drain(..).collect();
        if pending.is_empty() {
            return;
        }
        let peers = self.peers();
        for u in &pending {
            for peer in &peers {
                let msg = DataMsg::Replicate {
                    key: u.key.clone(),
                    version: u.version,
                    modified: u.modified,
                    value: u.value.clone(),
                };
                let bytes = msg.wire_bytes();
                match self.mesh.send(&self.node, peer, msg, bytes) {
                    Ok(_) => {
                        self.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.stats
                            .replication_failures
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    fn dump_state(&self) -> Vec<SyncObject> {
        let mut out = Vec::new();
        for key in self.inst.meta().keys() {
            let latest = self
                .inst
                .meta()
                .with(&key, |o| o.latest().map(|m| (m.version, m.modified)));
            if let Some(Some((version, modified))) = latest {
                if let Ok(got) = self.inst.get_version(&key, version) {
                    // A version whose bytes vanished (tier eviction racing
                    // the dump) is simply skipped; the sync retries later.
                    if let Some(value) = got.value {
                        out.push(SyncObject {
                            key: key.clone(),
                            version,
                            modified,
                            value,
                        });
                    }
                }
            }
        }
        out
    }

    /// Load a full state dump (replica repair, §4.4).
    pub fn load_state(&self, objects: Vec<SyncObject>) {
        for o in objects {
            let _ = self
                .inst
                .apply_replicated(&o.key, o.version, o.modified, o.value);
        }
    }

    // ---- application operations ---------------------------------------------

    fn handle_app_op(self: &Arc<Self>, d: Delivery<DataMsg>) {
        self.gate.wait_open();
        let (msg, took) = match d.msg {
            DataMsg::Put { key, value } => {
                let started = self.mesh.clock.now();
                self.direct_puts.lock().push_back(started);
                let digest = value_digest(&value);
                match self.protocol_put(&key, value) {
                    Ok((version, latency)) => {
                        self.record_history("put", &key, version, digest, started, latency);
                        (DataMsg::PutAck { version }, latency)
                    }
                    Err(why) => (DataMsg::Fail { why }, SimDuration::from_millis(1)),
                }
            }
            DataMsg::ForwardPut { key, value, origin } => {
                // Primary-side accounting for the requests monitor.
                self.forwarded_puts
                    .lock()
                    .entry(origin)
                    .or_default()
                    .push_back(self.mesh.clock.now());
                match self.primary_side_put(&key, value) {
                    Ok((version, latency)) => (DataMsg::PutAck { version }, latency),
                    Err(why) => (DataMsg::Fail { why }, SimDuration::from_millis(1)),
                }
            }
            DataMsg::Get { key } => {
                let started = self.mesh.clock.now();
                match self.protocol_get(&key, None) {
                    Ok((value, version, modified, latency)) => {
                        self.record_history(
                            "get",
                            &key,
                            version,
                            value_digest(&value),
                            started,
                            latency,
                        );
                        (
                            DataMsg::GetReply {
                                value,
                                version,
                                modified,
                            },
                            latency,
                        )
                    }
                    Err(why) => (DataMsg::Fail { why }, SimDuration::from_millis(1)),
                }
            }
            DataMsg::GetVersion { key, version } => match self.protocol_get(&key, Some(version)) {
                Ok((value, version, modified, latency)) => (
                    DataMsg::GetReply {
                        value,
                        version,
                        modified,
                    },
                    latency,
                ),
                Err(why) => (DataMsg::Fail { why }, SimDuration::from_millis(1)),
            },
            DataMsg::GetVersionList { key } => match self.inst.get_version_list(&key) {
                Ok(versions) => (
                    DataMsg::VersionList { versions },
                    SimDuration::from_micros(300),
                ),
                Err(e) => (
                    DataMsg::Fail { why: e.to_string() },
                    SimDuration::from_micros(300),
                ),
            },
            DataMsg::Update {
                key,
                version,
                value,
            } => match self.inst.update(&key, version, value) {
                Ok(out) => (
                    DataMsg::PutAck {
                        version: out.version,
                    },
                    out.latency,
                ),
                Err(e) => (
                    DataMsg::Fail { why: e.to_string() },
                    SimDuration::from_millis(1),
                ),
            },
            DataMsg::Remove { key } => match self.inst.remove(&key) {
                Ok(()) => (DataMsg::Removed, SimDuration::from_millis(1)),
                Err(e) => (
                    DataMsg::Fail { why: e.to_string() },
                    SimDuration::from_millis(1),
                ),
            },
            DataMsg::RemoveVersion { key, version } => {
                match self.inst.remove_version(&key, version) {
                    Ok(()) => (DataMsg::Removed, SimDuration::from_millis(1)),
                    Err(e) => (
                        DataMsg::Fail { why: e.to_string() },
                        SimDuration::from_millis(1),
                    ),
                }
            }
            other => (
                DataMsg::Fail {
                    why: format!("not an app op: {other:?}"),
                },
                SimDuration::ZERO,
            ),
        };
        if let Some(slot) = d.reply {
            let bytes = msg.wire_bytes();
            slot.reply(msg, took, bytes);
        }
    }

    /// Application put under the current consistency model. Returns the
    /// version written and the modeled latency the application perceives.
    fn protocol_put(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), String> {
        let model = self.consistency();
        let result = match model {
            ConsistencyModel::MultiPrimaries => self.put_multi_primaries(key, value),
            ConsistencyModel::PrimaryBackup { sync } => {
                if self.is_primary() {
                    self.put_as_primary(key, value, sync)
                } else {
                    self.put_via_forwarding(key, value)
                }
            }
            ConsistencyModel::Eventual => self.put_eventual(key, value),
        };
        let model_label = model.to_string();
        let region = self.node.region.to_string();
        let labels = [
            ("consistency", model_label.as_str()),
            ("region", region.as_str()),
        ];
        let metrics = MetricsRegistry::global();
        match &result {
            Ok((_, latency)) => {
                metrics.inc("wiera_put_total", &labels);
                metrics.observe("wiera_put_latency", &labels, *latency);
                self.record_put_latency(self.mesh.clock.now(), *latency);
            }
            Err(_) => metrics.inc("wiera_put_errors", &labels),
        }
        result
    }

    /// Fig. 3(a): global lock → local store → synchronous broadcast →
    /// release.
    fn put_multi_primaries(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), String> {
        let coord = self
            .coord
            .as_ref()
            .ok_or("multi-primaries requires a coordinator")?;
        let (guard, lock_cost) = coord
            .lock(&format!("/keys/{key}"))
            .map_err(|e| format!("lock: {e}"))?;
        let modified = self.mesh.clock.now();
        let out = self
            .inst
            .put(key, value.clone())
            .map_err(|e| e.to_string())?;
        let bcast = self.broadcast_sync(key, out.version, modified, &value);
        drop(guard); // asynchronous release, off the latency path
        Ok((out.version, lock_cost + out.latency + bcast))
    }

    /// Fig. 4: local store + queue for background distribution.
    fn put_eventual(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), String> {
        let modified = self.mesh.clock.now();
        let out = self
            .inst
            .put(key, value.clone())
            .map_err(|e| e.to_string())?;
        self.queue.lock().push_back(QueuedUpdate {
            key: key.to_string(),
            version: out.version,
            modified,
            value,
        });
        Ok((out.version, out.latency))
    }

    /// Fig. 3(b), primary side: local store + propagate (sync `copy` or
    /// async `queue`).
    fn put_as_primary(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
        sync: bool,
    ) -> Result<(u64, SimDuration), String> {
        let modified = self.mesh.clock.now();
        let out = self
            .inst
            .put(key, value.clone())
            .map_err(|e| e.to_string())?;
        let extra = if sync {
            self.broadcast_sync(key, out.version, modified, &value)
        } else {
            self.queue.lock().push_back(QueuedUpdate {
                key: key.to_string(),
                version: out.version,
                modified,
                value,
            });
            SimDuration::ZERO
        };
        Ok((out.version, out.latency + extra))
    }

    fn primary_side_put(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), String> {
        let sync = match self.consistency() {
            ConsistencyModel::PrimaryBackup { sync } => sync,
            // A forwarded put that races a consistency switch still applies.
            _ => false,
        };
        self.put_as_primary(key, value, sync)
    }

    /// Fig. 3(b), non-primary side: forward to the primary and relay the ack.
    fn put_via_forwarding(
        self: &Arc<Self>,
        key: &str,
        value: Bytes,
    ) -> Result<(u64, SimDuration), String> {
        let primary = self.primary().ok_or("no primary configured")?;
        let msg = DataMsg::ForwardPut {
            key: key.to_string(),
            value,
            origin: self.node.clone(),
        };
        let bytes = msg.wire_bytes();
        self.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
        match self
            .mesh
            .rpc(&self.node, &primary, msg, bytes, DATA_TIMEOUT)
        {
            Ok(r) => match r.msg {
                DataMsg::PutAck { version } => Ok((version, r.total())),
                DataMsg::Fail { why } => Err(why),
                other => Err(format!("bad forward reply {other:?}")),
            },
            Err(e) => Err(format!("forward failed: {e}")),
        }
    }

    /// Parallel synchronous replication; latency is the slowest peer (the
    /// "highest round trip latency" the paper attributes to strong puts).
    fn broadcast_sync(
        self: &Arc<Self>,
        key: &str,
        version: u64,
        modified: SimInstant,
        value: &Bytes,
    ) -> SimDuration {
        let peers = self.peers();
        if peers.is_empty() {
            return SimDuration::ZERO;
        }
        let mut handles = Vec::new();
        for peer in peers {
            let r = self.clone();
            let msg = DataMsg::Replicate {
                key: key.to_string(),
                version,
                modified,
                value: value.clone(),
            };
            handles.push(std::thread::spawn(move || {
                let bytes = msg.wire_bytes();
                match r.mesh.rpc(&r.node, &peer, msg, bytes, DATA_TIMEOUT) {
                    Ok(reply) => {
                        r.stats.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
                        Some(reply.total())
                    }
                    Err(_) => {
                        r.stats.replication_failures.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }));
        }
        let mut max = SimDuration::ZERO;
        for h in handles {
            if let Ok(Some(total)) = h.join() {
                max = max.max(total);
            }
        }
        max
    }

    /// Application get: local read, or forwarded when the deployment routes
    /// gets elsewhere (§5.4's "all get operations forwarded to the AWS
    /// instance's memory tier").
    fn protocol_get(
        self: &Arc<Self>,
        key: &str,
        version: Option<u64>,
    ) -> Result<(Bytes, u64, SimInstant, SimDuration), String> {
        if let Some(target) = self.forward_gets_to.read().clone() {
            if target != self.node {
                let msg = match version {
                    Some(v) => DataMsg::GetVersion {
                        key: key.to_string(),
                        version: v,
                    },
                    None => DataMsg::Get {
                        key: key.to_string(),
                    },
                };
                let bytes = msg.wire_bytes();
                let region = self.node.region.to_string();
                let labels = [("region", region.as_str()), ("route", "forwarded")];
                let metrics = MetricsRegistry::global();
                return match self.mesh.rpc(&self.node, &target, msg, bytes, DATA_TIMEOUT) {
                    Ok(r) => {
                        let total = r.total();
                        match r.msg {
                            DataMsg::GetReply {
                                value,
                                version,
                                modified,
                            } => {
                                metrics.inc("wiera_get_total", &labels);
                                metrics.observe("wiera_get_latency", &labels, total);
                                Ok((value, version, modified, total))
                            }
                            DataMsg::Fail { why } => {
                                metrics.inc("wiera_get_errors", &labels);
                                Err(why)
                            }
                            other => {
                                metrics.inc("wiera_get_errors", &labels);
                                Err(format!("bad get reply {other:?}"))
                            }
                        }
                    }
                    Err(e) => {
                        metrics.inc("wiera_get_errors", &labels);
                        Err(format!("forwarded get failed: {e}"))
                    }
                };
            }
        }
        let region = self.node.region.to_string();
        let labels = [("region", region.as_str()), ("route", "local")];
        let metrics = MetricsRegistry::global();
        let out = match version {
            Some(v) => self.inst.get_version(key, v),
            None => self.inst.get(key),
        }
        .map_err(|e| {
            metrics.inc("wiera_get_errors", &labels);
            e.to_string()
        })?;
        metrics.inc("wiera_get_total", &labels);
        metrics.observe("wiera_get_latency", &labels, out.latency);
        let modified = self
            .inst
            .meta()
            .with(key, |o| o.versions.get(&out.version).map(|m| m.modified))
            .flatten()
            .unwrap_or(SimInstant::EPOCH);
        let value = out.value.ok_or_else(|| {
            metrics.inc("wiera_get_errors", &labels);
            format!("get '{key}' returned metadata but no bytes")
        })?;
        Ok((value, out.version, modified, out.latency))
    }

    /// Emit one consistency-history event on the sim-time axis. The
    /// `wiera-check` oracle reconstructs operation intervals from these
    /// `subsystem = "history"` trace events and checks them against the
    /// deployment's deduced consistency model.
    fn record_history(
        &self,
        op: &str,
        key: &str,
        version: u64,
        digest: u64,
        start: SimInstant,
        latency: SimDuration,
    ) {
        Tracer::global()
            .span(start, "history", op)
            .region(self.node.region.to_string())
            .node(self.node.name.as_ref())
            .detail(format!("key={key} ver={version} val={digest:016x}"))
            .finish(start + latency);
    }

    // ---- direct (in-process) API for deployments and tests -----------------

    /// Install peers/primary directly (used by the deployment layer when the
    /// controller and replica share a process).
    pub fn set_peers_direct(&self, peers: Vec<NodeId>, primary: Option<NodeId>, epoch: u64) {
        let mut s = self.state.write();
        if epoch >= s.epoch {
            s.peers = peers.into_iter().filter(|p| *p != self.node).collect();
            s.primary = primary;
            s.epoch = epoch;
        }
    }
}

/// FNV-1a digest of a value body, so history events can carry a compact,
/// comparable fingerprint of what was written or read.
fn value_digest(value: &Bytes) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in value.iter() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Result of a client-visible operation, with the modeled latency the
/// application perceived.
#[derive(Debug, Clone)]
pub struct OpView {
    pub version: u64,
    pub value: Option<Bytes>,
    pub modified: SimInstant,
    pub latency: SimDuration,
    pub served_by: NodeId,
}

/// Application-level operation failure: a transport error (candidate for
/// client failover, §4.4) or a semantic error from the replica.
#[derive(Debug, Clone)]
pub enum AppError {
    Net(NetError),
    Remote(String),
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Net(e) => write!(f, "network: {e}"),
            AppError::Remote(w) => write!(f, "{w}"),
        }
    }
}

impl std::error::Error for AppError {}

/// Send an RPC to a replica as an application would, translating the reply.
/// Used by the client layer and by tests.
pub fn app_rpc(
    mesh: &Arc<Mesh<DataMsg>>,
    from: &NodeId,
    to: &NodeId,
    msg: DataMsg,
) -> Result<OpView, AppError> {
    let bytes = msg.wire_bytes();
    let reply = mesh
        .rpc(from, to, msg, bytes, DATA_TIMEOUT)
        .map_err(AppError::Net)?;
    let latency = reply.total();
    match reply.msg {
        DataMsg::PutAck { version } => Ok(OpView {
            version,
            value: None,
            modified: SimInstant::EPOCH,
            latency,
            served_by: to.clone(),
        }),
        DataMsg::GetReply {
            value,
            version,
            modified,
        } => Ok(OpView {
            version,
            value: Some(value),
            modified,
            latency,
            served_by: to.clone(),
        }),
        DataMsg::VersionList { versions } => Ok(OpView {
            version: versions.last().copied().unwrap_or(0),
            value: None,
            modified: SimInstant::EPOCH,
            latency,
            served_by: to.clone(),
        }),
        DataMsg::Removed | DataMsg::Ok => Ok(OpView {
            version: 0,
            value: None,
            modified: SimInstant::EPOCH,
            latency,
            served_by: to.clone(),
        }),
        DataMsg::Fail { why } => Err(AppError::Remote(why)),
        other => Err(AppError::Remote(format!("unexpected reply {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_net::{Fabric, Region};
    use wiera_sim::ScaledClock;

    fn mesh(scale: f64) -> Arc<Mesh<DataMsg>> {
        Mesh::new(
            Arc::new(Fabric::multicloud(5).without_jitter()),
            ScaledClock::shared(scale),
        )
    }

    fn replica(
        mesh: &Arc<Mesh<DataMsg>>,
        region: Region,
        name: &str,
        consistency: ConsistencyModel,
    ) -> Arc<ReplicaNode> {
        let node = NodeId::new(region, name);
        let instance = InstanceConfig::new(name, region)
            .with_tier("tier1", "Memcached", 1 << 30)
            .with_tier("tier2", "EBS", 1 << 30)
            .with_sleep(true, false);
        ReplicaNode::spawn(
            mesh.clone(),
            ReplicaConfig {
                node,
                instance,
                consistency,
                flush_interval: SimDuration::from_millis(200),
                coord: None,
                forward_gets_to: None,
            },
        )
        .expect("replica spawns")
    }

    fn wire(replicas: &[&Arc<ReplicaNode>], primary: Option<&Arc<ReplicaNode>>) {
        let peers: Vec<NodeId> = replicas.iter().map(|r| r.node.clone()).collect();
        for r in replicas {
            r.set_peers_direct(peers.clone(), primary.map(|p| p.node.clone()), 1);
        }
    }

    #[test]
    fn eventual_put_is_fast_and_replicates_in_background() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        let b = replica(&m, Region::EuWest, "b", ConsistencyModel::Eventual);
        wire(&[&a, &b], None);
        let client = NodeId::new(Region::UsEast, "cli");
        let put = app_rpc(
            &m,
            &client,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap();
        // Eventual put: local write + intra-DC hop only — well under 10 ms.
        assert!(
            put.latency.as_millis_f64() < 10.0,
            "eventual put {}",
            put.latency
        );
        // The EU replica converges once the flusher runs (200 ms interval +
        // 40 ms WAN, compressed 3000x).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        loop {
            if b.instance().get("k").is_ok() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "replication never arrived"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(b.instance().get("k").unwrap().value.unwrap().as_ref(), b"v");
    }

    #[test]
    fn primary_backup_sync_forwarding_and_latency() {
        let m = mesh(3000.0);
        let p = replica(
            &m,
            Region::UsWest,
            "p",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        let s = replica(
            &m,
            Region::UsEast,
            "s",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        wire(&[&p, &s], Some(&p));
        let client = NodeId::new(Region::UsEast, "cli");
        // Put at the secondary: forwarded to US-West, which broadcasts back.
        let put = app_rpc(
            &m,
            &client,
            &s.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap();
        // ≥ 2 cross-country RTTs (forward + sync copy) ≈ 140 ms+.
        assert!(
            put.latency.as_millis_f64() > 130.0,
            "forwarded sync put {}",
            put.latency
        );
        // Both replicas hold the data immediately after the ack.
        assert!(p.instance().get("k").is_ok());
        assert!(s.instance().get("k").is_ok());
        // Primary recorded the forwarded put for the requests monitor.
        let fwd = p.forwarded_puts_since(SimInstant::EPOCH);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].1, 1);
    }

    #[test]
    fn primary_put_at_primary_is_one_local_write_plus_broadcast() {
        let m = mesh(3000.0);
        let p = replica(
            &m,
            Region::UsWest,
            "p",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        let s = replica(
            &m,
            Region::AsiaEast,
            "s",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        wire(&[&p, &s], Some(&p));
        let client = NodeId::new(Region::UsWest, "cli");
        let put = app_rpc(
            &m,
            &client,
            &p.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap();
        // One US-West↔Tokyo round trip (110 ms) dominates.
        let ms = put.latency.as_millis_f64();
        assert!((100.0..200.0).contains(&ms), "primary sync put {ms}ms");
    }

    #[test]
    fn lww_on_concurrent_eventual_writes() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        let b = replica(&m, Region::EuWest, "b", ConsistencyModel::Eventual);
        wire(&[&a, &b], None);
        let ca = NodeId::new(Region::UsEast, "ca");
        let cb = NodeId::new(Region::EuWest, "cb");
        // Both write version 1 concurrently; after convergence both replicas
        // agree on a single winner (the later modified timestamp).
        app_rpc(
            &m,
            &ca,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"from-a"),
            },
        )
        .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        app_rpc(
            &m,
            &cb,
            &b.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"from-b"),
            },
        )
        .unwrap();

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        let (va, vb) = loop {
            let va = a.instance().get("k").ok().and_then(|o| o.value);
            let vb = b.instance().get("k").ok().and_then(|o| o.value);
            if let (Some(va), Some(vb)) = (&va, &vb) {
                if va == vb {
                    break (va.clone(), vb.clone());
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "never converged: {va:?} vs {vb:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert_eq!(va, vb);
        assert_eq!(va.as_ref(), b"from-b", "later write wins");
    }

    #[test]
    fn consistency_switch_drains_queue_first() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        let b = replica(&m, Region::UsWest, "b", ConsistencyModel::Eventual);
        wire(&[&a, &b], None);
        let client = NodeId::new(Region::UsEast, "cli");
        app_rpc(
            &m,
            &client,
            &a.node,
            DataMsg::Put {
                key: "q".into(),
                value: Bytes::from_static(b"queued"),
            },
        )
        .unwrap();
        // Immediately switch (before the 200 ms flusher runs): the switch
        // must drain the queue synchronously.
        let ctrl = NodeId::new(Region::UsEast, "ctrl");
        let reply = m
            .rpc(
                &ctrl,
                &a.node,
                DataMsg::ChangeConsistency {
                    to: ConsistencyModel::MultiPrimaries,
                    epoch: 2,
                },
                64,
                SimDuration::from_secs(60),
            )
            .unwrap();
        assert!(matches!(reply.msg, DataMsg::Ok));
        assert_eq!(a.queue_len(), 0);
        assert_eq!(a.consistency(), ConsistencyModel::MultiPrimaries);
        assert!(
            b.instance().get("q").is_ok(),
            "queued update applied before switch completed"
        );
        assert_eq!(a.stats.switches.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stale_epoch_control_messages_ignored() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        wire(&[&a], None);
        a.set_peers_direct(vec![], None, 5);
        let ctrl = NodeId::new(Region::UsEast, "ctrl");
        m.rpc(
            &ctrl,
            &a.node,
            DataMsg::ChangeConsistency {
                to: ConsistencyModel::MultiPrimaries,
                epoch: 3,
            },
            64,
            SimDuration::from_secs(30),
        )
        .unwrap();
        assert_eq!(
            a.consistency(),
            ConsistencyModel::Eventual,
            "stale epoch ignored"
        );
        assert_eq!(a.epoch(), 5);
    }

    #[test]
    fn get_forwarding_routes_reads_remotely() {
        let m = mesh(3000.0);
        let azure = replica(
            &m,
            Region::AzureUsEast,
            "az",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        let aws = replica(
            &m,
            Region::UsEast,
            "aws",
            ConsistencyModel::PrimaryBackup { sync: true },
        );
        wire(&[&azure, &aws], Some(&azure));
        azure.set_forward_gets_to(Some(aws.node.clone()));
        let client = NodeId::new(Region::AzureUsEast, "cli");
        app_rpc(
            &m,
            &client,
            &azure.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"v"),
            },
        )
        .unwrap();
        let got = app_rpc(&m, &client, &azure.node, DataMsg::Get { key: "k".into() }).unwrap();
        assert_eq!(got.value.unwrap().as_ref(), b"v");
        // Read crossed to AWS and back: ≥ 2 ms RTT but well under local-disk
        // alternatives is the point of §5.4; just assert it paid the hop.
        assert!(
            got.latency.as_millis_f64() > 1.5,
            "remote get {}",
            got.latency
        );
    }

    #[test]
    fn version_list_and_remove_through_the_wire() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        wire(&[&a], None);
        let cli = NodeId::new(Region::UsEast, "cli");
        app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"1"),
            },
        )
        .unwrap();
        app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::Put {
                key: "k".into(),
                value: Bytes::from_static(b"2"),
            },
        )
        .unwrap();
        let list = app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::GetVersionList { key: "k".into() },
        )
        .unwrap();
        assert_eq!(list.version, 2, "latest version from the list");
        let v1 = app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::GetVersion {
                key: "k".into(),
                version: 1,
            },
        )
        .unwrap();
        assert_eq!(v1.value.unwrap().as_ref(), b"1");
        app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::RemoveVersion {
                key: "k".into(),
                version: 1,
            },
        )
        .unwrap();
        assert!(app_rpc(
            &m,
            &cli,
            &a.node,
            DataMsg::GetVersion {
                key: "k".into(),
                version: 1
            }
        )
        .is_err());
        app_rpc(&m, &cli, &a.node, DataMsg::Remove { key: "k".into() }).unwrap();
        assert!(app_rpc(&m, &cli, &a.node, DataMsg::Get { key: "k".into() }).is_err());
    }

    #[test]
    fn state_sync_dump_and_load() {
        let m = mesh(3000.0);
        let a = replica(&m, Region::UsEast, "a", ConsistencyModel::Eventual);
        let b = replica(&m, Region::UsWest, "b", ConsistencyModel::Eventual);
        wire(&[&a], None);
        let cli = NodeId::new(Region::UsEast, "cli");
        for i in 0..5 {
            app_rpc(
                &m,
                &cli,
                &a.node,
                DataMsg::Put {
                    key: format!("k{i}"),
                    value: Bytes::from_static(b"x"),
                },
            )
            .unwrap();
        }
        // Repair b from a's dump via the wire.
        let ctrl = NodeId::new(Region::UsEast, "ctrl");
        let reply = m
            .rpc(
                &ctrl,
                &a.node,
                DataMsg::SyncRequest,
                64,
                SimDuration::from_secs(60),
            )
            .unwrap();
        match reply.msg {
            DataMsg::SyncReply { objects } => {
                assert_eq!(objects.len(), 5);
                b.load_state(objects);
            }
            other => panic!("{other:?}"),
        }
        for i in 0..5 {
            assert!(b.instance().get(&format!("k{i}")).is_ok());
        }
    }
}
