//! The Tiera server: one per region, spawning instances on TSM request.
//!
//! §4.1: "whenever a Tiera server launches, it connects to the Tiera Server
//! Manager first to let Wiera know that it is ready to spawn instances",
//! then spawns instances (which "run within the Tiera server process") as
//! deployment requests arrive.

use crate::detector::FailureDetector;
use crate::monitor::{LatencyMonitor, MonitorHandle, RequestsMonitor};
use crate::msg::{DataMsg, FailCode, ReplicaSpec};
use crate::replica::{ReplicaConfig, ReplicaNode};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tiera::engine::InstanceEngine;
use tiera::InstanceConfig;
use wiera_coord::{CoordClient, CoordConfig, CoordMsg};
use wiera_net::{Delivery, Mesh, NodeId, Region};
use wiera_sim::lockreg::TrackedMutex;
use wiera_sim::SimDuration;

/// Everything a server needs to reach the coordination service on behalf of
/// the replicas it spawns.
pub struct CoordAccess {
    pub mesh: Arc<Mesh<CoordMsg>>,
    pub service: NodeId,
    pub config: CoordConfig,
}

struct ReplicaHolder {
    replica: Arc<ReplicaNode>,
    _engine: InstanceEngine,
    _monitors: Vec<MonitorHandle>,
}

/// A running Tiera server.
pub struct TieraServer {
    pub node: NodeId,
    pub region: Region,
    mesh: Arc<Mesh<DataMsg>>,
    controller: NodeId,
    coord: Option<Arc<CoordAccess>>,
    replicas: TrackedMutex<HashMap<String, ReplicaHolder>>,
    stop: Arc<AtomicBool>,
}

impl TieraServer {
    /// Launch the server: register on the mesh, announce to the TSM, and
    /// start serving spawn requests.
    pub fn launch(
        mesh: Arc<Mesh<DataMsg>>,
        region: Region,
        controller: NodeId,
        coord: Option<Arc<CoordAccess>>,
    ) -> Result<Arc<Self>, String> {
        let node = NodeId::new(
            region,
            format!("tiera-server-{}", region.name().to_lowercase()),
        );
        let inbox = mesh.register(node.clone());
        let stop = Arc::new(AtomicBool::new(false));
        let server = Arc::new(TieraServer {
            node: node.clone(),
            region,
            mesh: mesh.clone(),
            controller: controller.clone(),
            coord,
            replicas: TrackedMutex::new("server.replicas", HashMap::new()),
            stop: stop.clone(),
        });

        // Announce to the TSM (§4.1 step 0).
        let hello = DataMsg::ServerHello { region };
        let bytes = hello.wire_bytes();
        let _ = mesh.rpc(&node, &controller, hello, bytes, SimDuration::from_secs(30));

        {
            let server = server.clone();
            std::thread::Builder::new()
                .name(format!("tiera-server-{region}"))
                .spawn(move || {
                    while !server.stop.load(Ordering::Acquire) {
                        match inbox.recv_timeout(std::time::Duration::from_millis(50)) {
                            Ok(d) => server.handle(d),
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        }
                    }
                })
                .map_err(|e| format!("cannot spawn tiera server thread: {e}"))?;
        }
        Ok(server)
    }

    pub fn stop(&self) {
        for (_, h) in self.replicas.lock().drain() {
            h.replica.stop();
        }
        self.stop.store(true, Ordering::Release);
        self.mesh.unregister(&self.node);
    }

    /// In-process handle to a replica this server spawned (white-box
    /// observability for tests and benchmark harnesses; the control plane
    /// itself only uses the wire).
    pub fn replica(&self, name: &str) -> Option<Arc<ReplicaNode>> {
        self.replicas.lock().get(name).map(|h| h.replica.clone())
    }

    pub fn replica_names(&self) -> Vec<String> {
        self.replicas.lock().keys().cloned().collect()
    }

    fn handle(self: &Arc<Self>, d: Delivery<DataMsg>) {
        match d.msg {
            DataMsg::SpawnReplica { spec } => {
                let result = self.spawn_replica(&spec);
                if let Some(slot) = d.reply {
                    let msg = match result {
                        Ok(node) => DataMsg::Spawned { node },
                        Err(why) => DataMsg::Fail {
                            code: FailCode::Internal,
                            why,
                        },
                    };
                    let bytes = msg.wire_bytes();
                    // Spawning a VM-resident process takes a moment.
                    slot.reply(msg, SimDuration::from_millis(50), bytes);
                }
            }
            DataMsg::StopReplica { node } => {
                let mut reps = self.replicas.lock();
                let key = reps
                    .iter()
                    .find(|(_, h)| h.replica.node == node)
                    .map(|(k, _)| k.clone());
                if let Some(k) = key {
                    if let Some(h) = reps.remove(&k) {
                        h.replica.stop();
                    }
                }
                drop(reps);
                if let Some(slot) = d.reply {
                    slot.reply(DataMsg::Ok, SimDuration::from_millis(1), 64);
                }
            }
            DataMsg::Ping => {
                if let Some(slot) = d.reply {
                    slot.reply(DataMsg::Pong, SimDuration::from_micros(100), 64);
                }
            }
            DataMsg::Stop => {
                if let Some(slot) = d.reply {
                    slot.reply(DataMsg::Ok, SimDuration::ZERO, 64);
                }
                self.stop();
            }
            other => {
                if let Some(slot) = d.reply {
                    let msg = DataMsg::Fail {
                        code: FailCode::Internal,
                        why: format!("server got {other:?}"),
                    };
                    let bytes = msg.wire_bytes();
                    slot.reply(msg, SimDuration::ZERO, bytes);
                }
            }
        }
    }

    /// §4.1 steps 4–5: spawn the instance, wire it to the coordination
    /// service if the policy needs global locks, start its background
    /// policy engine and monitor threads.
    fn spawn_replica(self: &Arc<Self>, spec: &ReplicaSpec) -> Result<NodeId, String> {
        let node = NodeId::new(self.region, format!("{}/{}", spec.deployment, spec.name));
        // Instances run within the server process (§4.1); keys are scoped by
        // deployment so several Wiera instances can share one server.
        let key = format!("{}/{}", spec.deployment, spec.name);
        if self.replicas.lock().contains_key(&key) {
            return Err(format!("replica '{key}' already running on this server"));
        }

        let mut icfg = InstanceConfig::new(spec.name.clone(), self.region)
            .with_rules(spec.rules.clone())
            .with_sleep(true, false);
        for t in &spec.tiers {
            icfg = icfg.with_tier(&t.label, &t.kind_name, t.size_bytes);
        }
        if let Some(n) = spec.max_versions {
            icfg = icfg.with_max_versions(n);
        }

        // The coord session backs both the multi-primaries lock path and the
        // failure lifecycle (lease znode + election lock), so a detector
        // also needs one.
        let coord_client = if spec.needs_coord || spec.monitors.detector.is_some() {
            let access = self
                .coord
                .as_ref()
                .ok_or("no coordination service configured")?;
            let me = NodeId::new(self.region, format!("{}/coord", node.name));
            Some(
                CoordClient::connect(
                    access.mesh.clone(),
                    me,
                    access.service.clone(),
                    &access.config,
                )
                .map_err(|e| format!("coord connect: {e}"))?,
            )
        } else {
            None
        };

        let replica = ReplicaNode::spawn(
            self.mesh.clone(),
            ReplicaConfig {
                node: node.clone(),
                instance: icfg,
                consistency: spec.consistency,
                flush_interval: SimDuration::from_millis_f64(spec.flush_ms),
                coord: coord_client,
                forward_gets_to: None,
                shard_group: spec.shard_group,
                service_time: spec.service_time_ms.map(SimDuration::from_millis_f64),
                overload: spec.overload.map(|o| crate::replica::OverloadConfig {
                    target_delay: SimDuration::from_millis_f64(o.target_delay_ms),
                    interval: SimDuration::from_millis_f64(o.interval_ms),
                }),
            },
        )
        .map_err(|e| format!("replica spawn: {e}"))?;
        let engine = InstanceEngine::start(replica.instance().clone())
            .map_err(|e| format!("instance engine: {e}"))?;

        let mut monitors = Vec::new();
        let coord_region = self
            .coord
            .as_ref()
            .map(|c| c.service.region)
            .unwrap_or(Region::UsEast);
        if let Some(lat) = &spec.monitors.latency {
            monitors.push(
                LatencyMonitor::start(
                    replica.clone(),
                    lat.clone(),
                    self.controller.clone(),
                    spec.deployment.clone(),
                    self.mesh.clone(),
                    coord_region,
                )
                .map_err(|e| format!("latency monitor: {e}"))?,
            );
        }
        if let Some(req) = &spec.monitors.requests {
            monitors.push(
                RequestsMonitor::start(
                    replica.clone(),
                    req.clone(),
                    self.controller.clone(),
                    spec.deployment.clone(),
                    self.mesh.clone(),
                )
                .map_err(|e| format!("requests monitor: {e}"))?,
            );
        }
        if let Some(det) = &spec.monitors.detector {
            monitors.push(
                FailureDetector::start(replica.clone(), det.clone())
                    .map_err(|e| format!("failure detector: {e}"))?,
            );
        }

        self.replicas.lock().insert(
            key,
            ReplicaHolder {
                replica,
                _engine: engine,
                _monitors: monitors,
            },
        );
        Ok(node)
    }
}
