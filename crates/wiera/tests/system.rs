//! System-level integration tests: the full Fig. 2 architecture — WUI →
//! GPM/TSM → Tiera servers → replicas — exercised over the wire.

use bytes::Bytes;
use std::sync::Arc;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::Cluster;
use wiera_net::Region;
use wiera_policy::ConsistencyModel;
use wiera_sim::SimDuration;

/// Timing-sensitive tests (monitors, repair, background writers) interfere
/// with each other's wall-clock pacing when run concurrently; serialize them.
static HEAVY: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn heavy_guard() -> std::sync::MutexGuard<'static, ()> {
    HEAVY.lock().unwrap_or_else(|e| e.into_inner())
}

fn payload(n: usize) -> Bytes {
    Bytes::from(vec![0x42u8; n])
}

fn wait_until(mut cond: impl FnMut() -> bool, wall_ms: u64, what: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wall_ms);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Register a policy with the given consistency body over specific regions.
fn register_policy_over(cluster: &Cluster, id: &str, regions: &[(&str, bool)], body: &str) {
    let mut src = format!("Wiera {}() {{\n", id.replace('-', "_"));
    for (i, (region, primary)) in regions.iter().enumerate() {
        let primary_attr = if *primary { ", primary:True" } else { "" };
        src.push_str(&format!(
            "  Region{n} = {{name:LowLatencyInstance, region:{region}{primary_attr},\n    \
             tier1 = {{name:LocalMemory, size=5G}},\n    tier2 = {{name:LocalDisk, size=5G}} }}\n",
            n = i + 1,
        ));
    }
    src.push_str(body);
    src.push_str("\n}\n");
    cluster
        .controller
        .register_policy(id, &src)
        .expect("test policy compiles");
}

const EVENTUAL_BODY: &str = "
  event(insert.into) : response {
      store(what:insert.object, to:local_instance)
      queue(what:insert.object, to:all_regions)
  }";

const PRIMARY_BACKUP_SYNC_BODY: &str = "
  event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
         copy(what:insert.object, to:all_regions)
      else
         forward(what:insert.object, to:primary_instance)
  }";

const PRIMARY_BACKUP_ASYNC_BODY: &str = "
  event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
         queue(what:insert.object, to:all_regions)
      else
         forward(what:insert.object, to:primary_instance)
  }";

#[test]
fn wui_lifecycle_start_get_stop() {
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], 2000.0, 1);
    let dep = cluster
        .controller
        .start_instances("app-1", "eventual", DeploymentConfig::default())
        .unwrap();
    assert_eq!(dep.replicas().len(), 2);
    let listed = cluster.controller.get_instances("app-1").unwrap();
    assert_eq!(listed.len(), 2);
    // Duplicate id rejected.
    assert!(cluster
        .controller
        .start_instances("app-1", "eventual", DeploymentConfig::default())
        .is_err());
    // Unknown policy rejected.
    assert!(cluster
        .controller
        .start_instances("app-2", "no-such-policy", DeploymentConfig::default())
        .is_err());
    cluster.controller.stop_instances("app-1").unwrap();
    assert!(cluster.controller.get_instances("app-1").is_none());
    cluster.shutdown();
}

#[test]
fn multi_primaries_put_pays_lock_and_broadcast() {
    let _serial = heavy_guard();
    let cluster = Cluster::launch(&[Region::UsWest, Region::UsEast, Region::EuWest], 3000.0, 2);
    let dep = cluster
        .controller
        .start_instances("mp", "multi-primaries", DeploymentConfig::default())
        .unwrap();
    assert_eq!(dep.consistency(), ConsistencyModel::MultiPrimaries);

    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "app")
        .replicas(dep.replicas())
        .build();
    let put = client.put("k", payload(1024)).unwrap();
    // Lock RTT to US-East (70 ms) + slowest replica RTT from US-West
    // (EU-West, 145 ms) + local writes: a strong put in the hundreds of ms,
    // like the paper's ≈400 ms.
    let ms = put.latency.as_millis_f64();
    assert!(ms > 180.0, "strong put too fast: {ms}ms");
    assert!(ms < 800.0, "strong put too slow: {ms}ms");

    // Synchronous: all three replicas can serve the data immediately.
    for r in cluster.deployment_replicas("mp") {
        assert!(
            r.instance().get("k").is_ok(),
            "replica {} missing data",
            r.node
        );
    }

    // Reads are local and fast.
    let got = client.get("k").unwrap();
    assert!(
        got.latency.as_millis_f64() < 15.0,
        "local get {}",
        got.latency
    );
    assert_eq!(got.value.unwrap().len(), 1024);
    cluster.shutdown();
}

#[test]
fn eventual_put_fast_then_converges() {
    let cluster = Cluster::launch(&[Region::UsEast, Region::AsiaEast], 3000.0, 3);
    register_policy_over(
        &cluster,
        "ev-wide",
        &[("US-East", false), ("Asia-East", false)],
        EVENTUAL_BODY,
    );
    let dep = cluster
        .controller
        .start_instances(
            "ev",
            "ev-wide",
            DeploymentConfig {
                flush_ms: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    let put = client.put("k", payload(512)).unwrap();
    assert!(
        put.latency.as_millis_f64() < 10.0,
        "eventual put {}",
        put.latency
    );

    let replicas = cluster.deployment_replicas("ev");
    let tokyo = replicas
        .iter()
        .find(|r| r.node.region == Region::AsiaEast)
        .unwrap()
        .clone();
    wait_until(
        || tokyo.instance().get("k").is_ok(),
        3000,
        "async replication to Tokyo",
    );
    cluster.shutdown();
}

#[test]
fn client_failover_to_second_closest() {
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest, Region::EuWest], 3000.0, 4);
    let dep = cluster
        .controller
        .start_instances(
            "fo",
            "eventual",
            DeploymentConfig {
                flush_ms: 50.0,
                ..Default::default()
            },
        )
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    client.put("k", payload(64)).unwrap();
    // Let replication reach all replicas first.
    let replicas = cluster.deployment_replicas("fo");
    wait_until(
        || replicas.iter().all(|r| r.instance().get("k").is_ok()),
        3000,
        "replication before partition",
    );
    // Partition the closest (US-East) replica away.
    cluster.fabric.set_partitioned(Region::UsEast, false); // no-op sanity
    let closest = client.closest().unwrap();
    assert_eq!(closest.region, Region::UsEast);
    cluster.fabric.set_partitioned(Region::UsEast, true);
    // The client in US-East is *itself* in the partitioned region, so cut
    // the replica instead: stop it.
    cluster.fabric.set_partitioned(Region::UsEast, false);
    let east = replicas
        .iter()
        .find(|r| r.node.region == Region::UsEast)
        .unwrap();
    east.stop();
    let got = client.get("k").unwrap();
    assert_eq!(
        got.served_by.region,
        Region::UsWest,
        "failed over to second closest"
    );
    assert_eq!(got.value.unwrap().len(), 64);
    cluster.shutdown();
}

#[test]
fn runtime_consistency_switch_via_deployment() {
    let _serial = heavy_guard();
    let cluster = Cluster::launch(&[Region::UsWest, Region::UsEast, Region::EuWest], 3000.0, 5);
    let dep = cluster
        .controller
        .start_instances("sw", "multi-primaries", DeploymentConfig::default())
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "app")
        .replicas(dep.replicas())
        .build();
    let strong = client.put("a", payload(128)).unwrap();
    dep.change_consistency(ConsistencyModel::Eventual);
    for r in cluster.deployment_replicas("sw") {
        assert_eq!(r.consistency(), ConsistencyModel::Eventual);
    }
    let weak = client.put("b", payload(128)).unwrap();
    assert!(
        weak.latency.as_millis_f64() < strong.latency.as_millis_f64() / 3.0,
        "eventual put ({}) should be far cheaper than strong ({})",
        weak.latency,
        strong.latency
    );
    // Switch back.
    dep.change_consistency(ConsistencyModel::MultiPrimaries);
    let strong2 = client.put("c", payload(128)).unwrap();
    assert!(strong2.latency.as_millis_f64() > 100.0);
    cluster.shutdown();
}

#[test]
fn change_primary_redirects_forwarding() {
    let _serial = heavy_guard();
    let cluster = Cluster::launch(&[Region::UsWest, Region::AsiaEast], 3000.0, 6);
    register_policy_over(
        &cluster,
        "pb-pacific",
        &[("US-West", true), ("Asia-East", false)],
        PRIMARY_BACKUP_SYNC_BODY,
    );
    let dep = cluster
        .controller
        .start_instances("cp", "pb-pacific", DeploymentConfig::default())
        .unwrap();
    // Policy marks Region1 (US-West) primary.
    assert_eq!(dep.primary().unwrap().region, Region::UsWest);
    let replicas = cluster.deployment_replicas("cp");
    let tokyo = replicas
        .iter()
        .find(|r| r.node.region == Region::AsiaEast)
        .unwrap()
        .clone();

    let client_tokyo =
        WieraClient::builder(cluster.data_mesh.clone(), Region::AsiaEast, "app-tokyo")
            .replicas(dep.replicas())
            .build();
    let before = client_tokyo.put("k1", payload(64)).unwrap();
    assert!(
        before.latency.as_millis_f64() > 100.0,
        "forwarded put {}",
        before.latency
    );

    dep.change_primary(tokyo.node.clone());
    for r in &replicas {
        assert_eq!(r.primary().unwrap(), tokyo.node);
    }
    let after = client_tokyo.put("k2", payload(64)).unwrap();
    // Before: forward Tokyo→US-West (one RTT) + sync copy back (another RTT)
    // ≈ 220 ms. After: local write + one sync copy ≈ 110 ms. Use a margin
    // that tolerates jitter rather than sitting exactly on the 2x boundary.
    assert!(
        after.latency.as_millis_f64() < before.latency.as_millis_f64() * 0.65,
        "local-primary put ({}) must be well under the forwarded put ({})",
        after.latency,
        before.latency
    );
    cluster.shutdown();
}

#[test]
fn latency_monitor_switches_and_recovers_end_to_end() {
    let _serial = heavy_guard();
    // Fig. 7 in miniature: multi-primaries with the Fig. 5(a) monitor
    // (threshold 800 ms, period 6 s modeled). Inject a sustained delay into
    // EU-West; the monitor must switch the deployment to eventual, and once
    // the delay clears, restore multi-primaries.
    let cluster = Cluster::launch(&[Region::UsWest, Region::UsEast, Region::EuWest], 1000.0, 7);
    let dep = cluster
        .controller
        .start_instances(
            "dyn",
            "multi-primaries",
            DeploymentConfig::default().with_dynamic_consistency(800.0, 10_000.0),
        )
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "app")
        .replicas(dep.replicas())
        .build();

    // Background writer keeps puts flowing so the monitor has samples.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let client = client.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let _ = client.put(&format!("k{}", i % 16), payload(64));
                i += 1;
                std::thread::sleep(std::time::Duration::from_millis(15));
            }
        })
    };

    // Inject a 1-second one-way delay at EU-West: strong puts now take >2s.
    cluster
        .fabric
        .inject_node_delay(Region::EuWest, SimDuration::from_millis(1000));
    wait_until(
        || dep.consistency() == ConsistencyModel::Eventual,
        20_000,
        "switch to eventual under sustained delay",
    );

    // Clear the delay: the network-monitor estimate recovers and the
    // deployment returns to strong consistency.
    cluster.fabric.clear_node_delay(Region::EuWest);
    wait_until(
        || dep.consistency() == ConsistencyModel::MultiPrimaries,
        20_000,
        "switch back to multi-primaries after recovery",
    );

    stop.store(true, std::sync::atomic::Ordering::Release);
    writer.join().unwrap();
    cluster.shutdown();
}

#[test]
fn requests_monitor_moves_primary_toward_load() {
    let _serial = heavy_guard();
    // Fig. 5(b)/§5.2 in miniature: primary in US-West, but all the traffic
    // comes from Tokyo. The requests monitor must move the primary there.
    let cluster = Cluster::launch(&[Region::UsWest, Region::AsiaEast], 6000.0, 8);
    register_policy_over(
        &cluster,
        "pba-pacific",
        &[("US-West", true), ("Asia-East", false)],
        PRIMARY_BACKUP_ASYNC_BODY,
    );
    let dep = cluster
        .controller
        .start_instances(
            "tuba",
            "pba-pacific",
            DeploymentConfig {
                flush_ms: 200.0,
                ..DeploymentConfig::default().with_change_primary(6_000.0, 1_500.0)
            },
        )
        .unwrap();
    assert_eq!(dep.primary().unwrap().region, Region::UsWest);
    let client_tokyo =
        WieraClient::builder(cluster.data_mesh.clone(), Region::AsiaEast, "app-tokyo")
            .replicas(dep.replicas())
            .build();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let c = client_tokyo.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let _ = c.put(&format!("k{}", i % 8), payload(64));
                i += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        })
    };
    wait_until(
        || dep.primary().map(|p| p.region) == Some(Region::AsiaEast),
        20_000,
        "primary migration toward Tokyo",
    );
    stop.store(true, std::sync::atomic::Ordering::Release);
    writer.join().unwrap();
    cluster.shutdown();
}

#[test]
fn replica_repair_restores_replication_factor() {
    let _serial = heavy_guard();
    let cluster = Cluster::launch_with(
        &[Region::UsEast, Region::UsWest, Region::EuWest],
        4000.0,
        9,
        wiera::controller::ControllerConfig {
            repair_interval: Some(SimDuration::from_secs(3)),
            ..Default::default()
        },
    );
    let dep = cluster
        .controller
        .start_instances(
            "rep",
            "eventual",
            DeploymentConfig {
                flush_ms: 50.0,
                min_replicas: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
    // The eventual policy declares two regions (US-West, US-East); EU-West
    // hosts a spare server.
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    for i in 0..10 {
        client.put(&format!("k{i}"), payload(64)).unwrap();
    }
    let replicas = cluster.deployment_replicas("rep");
    wait_until(
        || replicas.iter().all(|r| r.instance().get("k9").is_ok()),
        3000,
        "initial replication",
    );
    // Kill the US-West replica.
    let west = replicas
        .iter()
        .find(|r| r.node.region == Region::UsWest)
        .unwrap();
    west.stop();
    // Repair: a fresh replica appears on the spare (EU-West) server with the
    // data cloned from the donor.
    wait_until(
        || {
            dep.replicas().iter().any(|r| r.region == Region::EuWest)
                && !dep.replicas().iter().any(|r| r.region == Region::UsWest)
        },
        30_000,
        "repair replaces the dead replica",
    );
    let fresh = cluster.deployment_replicas("rep");
    let eu = fresh
        .iter()
        .find(|r| r.node.region == Region::EuWest)
        .unwrap();
    for i in 0..10 {
        assert!(
            eu.instance().get(&format!("k{i}")).is_ok(),
            "repaired replica has k{i}"
        );
    }
    cluster.shutdown();
}

#[test]
fn clock_scale_sanity() {
    // The cluster's scaled clock compresses the paper's timescales: 30
    // modeled seconds pass in well under a wall second at 3000x.
    let cluster = Cluster::launch(&[Region::UsEast], 3000.0, 10);
    let t0 = cluster.clock.now();
    std::thread::sleep(std::time::Duration::from_millis(20));
    let elapsed = cluster.clock.now().elapsed_since(t0);
    assert!(elapsed > SimDuration::from_secs(30), "elapsed {elapsed}");
    cluster.shutdown();
}
