//! Fault-tolerance tests at the Wiera layer: partitions during replication,
//! degraded strong puts, timeout behaviour, and epoch fencing under churn.

use bytes::Bytes;
use std::sync::atomic::Ordering;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera_net::Region;
use wiera_sim::SimDuration;

fn payload(n: usize) -> Bytes {
    Bytes::from(vec![0x31u8; n])
}

/// These tests each stand up a full cluster with many threads; on small CI
/// hosts, running them concurrently starves RPC wall-clock timeouts.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_until(mut cond: impl FnMut() -> bool, wall_ms: u64, what: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wall_ms);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn multi_primaries_put_succeeds_with_partitioned_peer() {
    let _serial = serial();
    // Strong put with one replica unreachable: the broadcast records the
    // failure but the put completes (the paper's replica-count repair deals
    // with the lost replica separately).
    let cluster = Cluster::launch(
        &[Region::UsWest, Region::UsEast, Region::EuWest],
        3000.0,
        31,
    );
    let dep = cluster
        .controller
        .start_instances("mp", "multi-primaries", DeploymentConfig::default())
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "app")
        .replicas(dep.replicas())
        .build();
    client.put("before", payload(64)).unwrap();

    cluster.fabric.set_partitioned(Region::EuWest, true);
    let put = client.put("during", payload(64)).unwrap();
    assert!(put.version >= 1, "put must succeed despite the partition");

    let replicas = cluster.deployment_replicas("mp");
    let west = replicas
        .iter()
        .find(|r| r.node.region == Region::UsWest)
        .unwrap();
    assert!(
        west.stats.replication_failures.load(Ordering::Relaxed) >= 1,
        "the failed broadcast leg must be recorded"
    );
    // The reachable peer got the data; the partitioned one did not.
    let east = replicas
        .iter()
        .find(|r| r.node.region == Region::UsEast)
        .unwrap();
    let eu = replicas
        .iter()
        .find(|r| r.node.region == Region::EuWest)
        .unwrap();
    assert!(east.instance().get("during").is_ok());
    assert!(eu.instance().get("during").is_err());

    // Partition heals; later writes flow again.
    cluster.fabric.set_partitioned(Region::EuWest, false);
    client.put("after", payload(64)).unwrap();
    assert!(eu.instance().get("after").is_ok());
    cluster.shutdown();
}

#[test]
fn eventual_replication_retries_not_required_for_liveness() {
    let _serial = serial();
    // Queue flushes that fail while a peer is partitioned are counted and
    // dropped (best effort, like the paper's prototype); the local replica
    // keeps serving and later writes replicate once the peer returns.
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], 3000.0, 32);
    cluster
        .register_policy_over(
            "ev",
            &[("US-East", false), ("US-West", false)],
            bodies::EVENTUAL,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "ev",
            "ev",
            DeploymentConfig {
                flush_ms: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();

    cluster.fabric.set_partitioned(Region::UsWest, true);
    for i in 0..5 {
        client.put(&format!("lost-{i}"), payload(32)).unwrap();
    }
    let replicas = cluster.deployment_replicas("ev");
    let east = replicas
        .iter()
        .find(|r| r.node.region == Region::UsEast)
        .unwrap()
        .clone();
    wait_until(
        || east.stats.replication_failures.load(Ordering::Relaxed) >= 5,
        5000,
        "failed flushes recorded",
    );
    assert!(
        east.instance().get("lost-0").is_ok(),
        "local replica unaffected"
    );

    cluster.fabric.set_partitioned(Region::UsWest, false);
    client.put("recovered", payload(32)).unwrap();
    let west = replicas
        .iter()
        .find(|r| r.node.region == Region::UsWest)
        .unwrap()
        .clone();
    wait_until(
        || west.instance().get("recovered").is_ok(),
        5000,
        "post-heal replication",
    );
    cluster.shutdown();
}

#[test]
fn strong_put_latency_tracks_injected_delay() {
    let _serial = serial();
    // A degraded link shows up 1:1 in strong put latency — the observable
    // signal the Fig. 5(a) policy conditions on.
    let cluster = Cluster::launch(&[Region::UsWest, Region::UsEast], 3000.0, 33);
    cluster
        .register_policy_over(
            "mp2",
            &[("US-West", false), ("US-East", false)],
            bodies::MULTI_PRIMARIES,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances("mp2", "mp2", DeploymentConfig::default())
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "app")
        .replicas(dep.replicas())
        .build();
    let base = client.put("a", payload(64)).unwrap().latency;
    cluster.fabric.inject_link_delay(
        Region::UsWest,
        Region::UsEast,
        SimDuration::from_millis(400),
    );
    let slowed = client.put("b", payload(64)).unwrap().latency;
    // The injected 400 ms one-way delay hits both the lock leg and the
    // broadcast leg.
    assert!(
        slowed.as_millis_f64() > base.as_millis_f64() + 700.0,
        "injected delay must dominate: {base} -> {slowed}"
    );
    cluster.shutdown();
}

#[test]
fn client_times_out_against_black_hole_then_fails_over() {
    let _serial = serial();
    // A replica that is registered but whose region is partitioned is a
    // black hole: the client's RPC errors and failover finds the healthy
    // replica.
    let cluster = Cluster::launch(
        &[Region::UsEast, Region::UsWest, Region::EuWest],
        3000.0,
        34,
    );
    let dep = cluster
        .controller
        .start_instances(
            "fo2",
            "eventual",
            DeploymentConfig {
                flush_ms: 50.0,
                ..Default::default()
            },
        )
        .unwrap();
    // Write and wait for full replication first.
    let seed_client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "seed")
        .replicas(dep.replicas())
        .build();
    seed_client.put("k", payload(16)).unwrap();
    let replicas = cluster.deployment_replicas("fo2");
    wait_until(
        || replicas.iter().all(|r| r.instance().get("k").is_ok()),
        5000,
        "replication",
    );
    // A client in EU-West reads while US-West (its... not closest — EU is
    // closest). Partition EU-West's replica region: the EU client itself
    // lives there, so instead partition the *closest remote* choice for a
    // US-East client: US-East replica itself.
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    let east = replicas
        .iter()
        .find(|r| r.node.region == Region::UsEast)
        .unwrap();
    east.stop(); // crash: unregistered from the mesh
    let got = client.get("k").unwrap();
    assert_ne!(got.served_by.region, Region::UsEast);
    cluster.shutdown();
}

#[test]
fn concurrent_multi_primaries_writers_serialize_via_lock() {
    let _serial = serial();
    // Two writers in different regions hammer the same key under
    // MultiPrimaries: the global lock serializes them, so versions are
    // strictly increasing with no lost updates.
    let cluster = Cluster::launch(&[Region::UsWest, Region::UsEast], 3000.0, 35);
    cluster
        .register_policy_over(
            "mp3",
            &[("US-West", false), ("US-East", false)],
            bodies::MULTI_PRIMARIES,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances("mp3", "mp3", DeploymentConfig::default())
        .unwrap();
    let mut handles = Vec::new();
    for region in [Region::UsWest, Region::UsEast] {
        let client = WieraClient::builder(cluster.data_mesh.clone(), region, format!("w-{region}"))
            .replicas(dep.replicas())
            .build();
        handles.push(std::thread::spawn(move || {
            let mut versions = Vec::new();
            for _ in 0..8 {
                versions.push(client.put("contended", payload(16)).unwrap().version);
            }
            versions
        }));
    }
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort();
    let expected: Vec<u64> = (1..=16).collect();
    assert_eq!(
        all, expected,
        "16 serialized writes → versions 1..=16, no duplicates"
    );
    cluster.shutdown();
}
