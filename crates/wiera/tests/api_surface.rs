//! Golden file pinning the `wiera` crate's public API surface.
//!
//! The client API is the paper's Table 2 contract: applications integrate
//! against it unmodified, so accidental surface changes (a renamed method,
//! a widened error enum, a new public field) should fail CI loudly instead
//! of sliding into a release. This test scans the crate sources for
//! `pub` items and compares the list byte-for-byte against
//! `tests/golden/api_surface.expected`. After an *intentional* API change,
//! regenerate with:
//!
//! ```text
//! WIERA_BLESS=1 cargo test -p wiera --test api_surface
//! ```
//!
//! The scan is deliberately simple — first line of each `pub` item,
//! stopping at each file's `#[cfg(test)]` module — because its job is to
//! detect drift, not to render rustdoc.

use std::path::{Path, PathBuf};

fn src_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("src")
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/api_surface.expected")
}

/// True for lines that declare a public item (not `pub(crate)`/`pub(super)`,
/// which are internal by construction).
fn is_public_item(trimmed: &str) -> bool {
    const KINDS: [&str; 9] = [
        "pub fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub const ",
        "pub static ",
        "pub type ",
        "pub mod ",
        "pub use ",
    ];
    KINDS.iter().any(|k| trimmed.starts_with(k))
}

/// One normalized line per public item: `file.rs: <declaration>`, with the
/// declaration cut at its body/terminator so formatting churn inside bodies
/// never shows up here.
fn scan_surface() -> String {
    let mut files: Vec<PathBuf> = std::fs::read_dir(src_dir())
        .expect("read src dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();

    let mut out = String::new();
    for path in files {
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let body = std::fs::read_to_string(&path).expect("read source file");
        for line in body.lines() {
            let trimmed = line.trim();
            // Repo convention keeps the test module last in each file;
            // nothing below it is API.
            if trimmed == "#[cfg(test)]" {
                break;
            }
            if is_public_item(trimmed) {
                let decl = trimmed
                    .split(" {")
                    .next()
                    .unwrap_or(trimmed)
                    .trim_end_matches(['{', ';'])
                    .trim_end();
                out.push_str(&format!("{name}: {decl}\n"));
            }
        }
    }
    out
}

#[test]
fn public_api_matches_golden() {
    let got = scan_surface();
    if std::env::var_os("WIERA_BLESS").is_some() {
        std::fs::create_dir_all(golden_path().parent().expect("parent")).expect("mkdir");
        std::fs::write(golden_path(), &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(golden_path()).unwrap_or_default();
    if got != want {
        let got_set: std::collections::BTreeSet<&str> = got.lines().collect();
        let want_set: std::collections::BTreeSet<&str> = want.lines().collect();
        let added: Vec<&&str> = got_set.difference(&want_set).collect();
        let removed: Vec<&&str> = want_set.difference(&got_set).collect();
        panic!(
            "public API surface changed (WIERA_BLESS=1 to accept)\n\
             added ({}):\n  {}\nremoved ({}):\n  {}",
            added.len(),
            added
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join("\n  "),
            removed.len(),
            removed
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join("\n  "),
        );
    }
}

/// The consolidation pass's core claim, checked structurally: the client
/// exposes exactly the Table 2 + batch surface, nothing else drifted in.
#[test]
fn client_surface_is_the_table2_contract() {
    let surface = scan_surface();
    let client_methods: Vec<&str> = surface
        .lines()
        .filter(|l| l.starts_with("client.rs: pub fn "))
        .collect();
    for required in [
        "pub fn put(",
        "pub fn get(",
        "pub fn get_version(",
        "pub fn get_version_list(",
        "pub fn update(",
        "pub fn remove(",
        "pub fn remove_version(",
        "pub fn put_batch(",
        "pub fn get_batch(",
    ] {
        assert!(
            client_methods.iter().any(|m| m.contains(required)),
            "client API lost `{required}`; surface:\n{}",
            client_methods.join("\n")
        );
    }
}
