//! Failure-lifecycle integration tests (§4.4): lease-based detection,
//! automatic failover with epoch fencing, crash/restart with anti-entropy
//! rejoin, and the shutdown-flush ordering fix.
//!
//! All timing below is *sim-time*: the coordination service expires a
//! silent session after 10 s and sweeps every 2 s, so with a detector
//! configured at `check_every=2 s, suspect_after=5 s` the crash-to-election
//! bound is `10 + 2 + 5 + 2` plus one election round trip — comfortably
//! under the 60 s budget the assertions use.

use bytes::Bytes;
use std::sync::Arc;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::msg::{FailCode, KeyDigest};
use wiera::replica::ReplicaNode;
use wiera::testkit::{bodies, Cluster};
use wiera_net::Region;
use wiera_sim::{MetricsRegistry, SimDuration};

/// These tests crash nodes, cut links, and wait on wall-clock-paced
/// detector threads; run them serially so pacing is not starved.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn payload(n: usize) -> Bytes {
    Bytes::from(vec![0x42u8; n])
}

fn wait_until(mut cond: impl FnMut() -> bool, wall_ms: u64, what: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wall_ms);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

fn by_region(replicas: &[Arc<ReplicaNode>], region: Region) -> Arc<ReplicaNode> {
    replicas
        .iter()
        .find(|r| r.node.region == region)
        .unwrap_or_else(|| panic!("no replica in {region}"))
        .clone()
}

/// Digest tables as sorted (key, version, digest) tuples: content equality.
/// `modified` is excluded — the primary stamps its local apply time, which
/// legitimately differs by the modeled write latency from the timestamp the
/// broadcast carried.
fn sorted_digests(r: &ReplicaNode) -> Vec<(String, u64, u64)> {
    let mut d: Vec<(String, u64, u64)> = r
        .digest_table()
        .into_iter()
        .map(
            |KeyDigest {
                 key,
                 version,
                 digest,
                 ..
             }| (key, version, digest),
        )
        .collect();
    d.sort();
    d
}

/// The deterministic acceptance scenario: crash a primary-backup(sync)
/// primary mid-workload; a backup must be elected within the detection +
/// election bound, post-failover writes must succeed, and the restarted
/// node must converge via anti-entropy to a digest-equal state.
#[test]
fn pb_sync_primary_crash_elects_backup_and_rejoins_digest_equal() {
    let _serial = serial();
    let cluster = Cluster::launch(
        &[Region::UsEast, Region::UsWest, Region::EuWest],
        3000.0,
        71,
    );
    cluster
        .register_policy_over(
            "fl",
            &[("US-East", true), ("US-West", false), ("EU-West", false)],
            bodies::PRIMARY_BACKUP_SYNC,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "fl",
            "fl",
            DeploymentConfig {
                flush_ms: 500.0,
                ..Default::default()
            }
            .with_failure_detection(2_000.0, 5_000.0),
        )
        .unwrap();
    let replicas = cluster.deployment_replicas("fl");
    let east = by_region(&replicas, Region::UsEast);
    let west = by_region(&replicas, Region::UsWest);
    let eu = by_region(&replicas, Region::EuWest);
    assert_eq!(dep.primary().unwrap(), east.node);

    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "app")
        .replicas(dep.replicas())
        .build();
    // Pre-crash workload: forwarded to the primary, synchronously
    // replicated everywhere.
    for i in 0..8 {
        client.put(&format!("k{i}"), payload(64)).unwrap();
    }
    let epoch_before = west.epoch();

    let crashed_at = cluster.clock.now();
    east.crash();
    // Detection: the lease expires (session 10 s + sweep 2 s), probes keep
    // failing, suspicion matures (5 s), a backup wins the election lock.
    wait_until(
        || west.primary() == Some(west.node.clone()) || eu.primary() == Some(eu.node.clone()),
        30_000,
        "a backup to elect itself primary",
    );
    let elected_after = cluster.clock.now().elapsed_since(crashed_at);
    assert!(
        elected_after <= SimDuration::from_secs(60),
        "failover took {elected_after:?} sim-time, beyond the detection+election bound"
    );
    let new_primary = if west.primary() == Some(west.node.clone()) {
        west.clone()
    } else {
        eu.clone()
    };
    assert!(
        new_primary.epoch() > epoch_before,
        "the winner must bump the epoch"
    );
    // The surviving backup learns the new leadership.
    let other = if new_primary.node == west.node {
        eu.clone()
    } else {
        west.clone()
    };
    wait_until(
        || other.primary() == Some(new_primary.node.clone()),
        10_000,
        "ChangePrimary to reach the surviving backup",
    );

    // Post-failover workload lands on the new primary (the client's
    // stale-epoch/transport retries paper over the transition).
    for i in 8..14 {
        client.put(&format!("k{i}"), payload(64)).unwrap();
    }

    // Restart the deposed primary: volatile tiers are gone, durable tiers
    // survive, and anti-entropy pulls everything written while it was down.
    let report = east.restart().unwrap();
    assert!(
        report.pulled >= 6,
        "rejoin must pull the writes missed while down, got {report:?}"
    );
    assert_eq!(
        east.epoch(),
        new_primary.epoch(),
        "the rejoined node must adopt the post-failover epoch"
    );
    assert_eq!(
        east.primary(),
        Some(new_primary.node.clone()),
        "the rejoined node must adopt the new primary, not still claim leadership"
    );
    assert_eq!(
        sorted_digests(&east),
        sorted_digests(&new_primary),
        "anti-entropy must leave the rejoined node digest-equal to the primary"
    );
    for i in 0..14 {
        assert!(
            east.instance().get(&format!("k{i}")).is_ok(),
            "k{i} missing on the rejoined node"
        );
    }
    cluster.shutdown();
}

/// A primary partitioned away (alive, but silent to both peers and coord)
/// is deposed; when the partition heals its writes are fenced by the epoch
/// check and rolled back rather than acknowledged.
#[test]
fn deposed_primary_is_fenced_and_rolled_back_after_partition_heals() {
    let _serial = serial();
    let cluster = Cluster::launch(
        &[Region::UsEast, Region::UsWest, Region::EuWest],
        3000.0,
        72,
    );
    // Primary in US-West so the coord service (US-East) stays reachable
    // from the backups while the primary is cut off.
    cluster
        .register_policy_over(
            "fence",
            &[("US-East", false), ("US-West", true), ("EU-West", false)],
            bodies::PRIMARY_BACKUP_SYNC,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "fence",
            "fence",
            DeploymentConfig {
                flush_ms: 500.0,
                ..Default::default()
            }
            .with_failure_detection(2_000.0, 5_000.0),
        )
        .unwrap();
    let replicas = cluster.deployment_replicas("fence");
    let east = by_region(&replicas, Region::UsEast);
    let west = by_region(&replicas, Region::UsWest);
    let eu = by_region(&replicas, Region::EuWest);
    assert_eq!(dep.primary().unwrap(), west.node);

    let east_client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    east_client.put("pre", payload(32)).unwrap();
    let old_epoch = west.epoch();

    // Cut the primary off from both backups (and from coord, which lives
    // in US-East): alive, but silent.
    cluster.fabric.partition(Region::UsWest, Region::UsEast);
    cluster.fabric.partition(Region::UsWest, Region::EuWest);
    wait_until(
        || east.primary() == Some(east.node.clone()) || eu.primary() == Some(eu.node.clone()),
        30_000,
        "a backup to depose the partitioned primary",
    );
    let new_primary = if east.primary() == Some(east.node.clone()) {
        east.clone()
    } else {
        eu.clone()
    };
    assert!(new_primary.epoch() > old_epoch);

    cluster
        .fabric
        .heal_partition(Region::UsWest, Region::UsEast);
    cluster
        .fabric
        .heal_partition(Region::UsWest, Region::EuWest);

    // The deposed primary never heard the ChangePrimary: it still believes
    // it leads at the old epoch. Its next write must be refused by every
    // peer and rolled back locally — never acknowledged.
    assert_eq!(west.primary(), Some(west.node.clone()));
    let fenced_before = MetricsRegistry::global()
        .snapshot()
        .counter_sum("wiera_fenced_total");
    let app = wiera_net::NodeId::new(Region::UsWest, "app-direct");
    let err = wiera::replica::app_rpc(
        &cluster.data_mesh,
        &app,
        &west.node,
        wiera::msg::DataMsg::Put {
            key: "split".into(),
            value: payload(32),
        },
    )
    .unwrap_err();
    assert_eq!(
        err.code(),
        Some(FailCode::StaleEpoch),
        "a deposed primary's write must surface the fence: {err}"
    );
    assert!(
        west.instance().get("split").is_err(),
        "the fenced write must be rolled back, not linger locally"
    );
    assert!(
        MetricsRegistry::global()
            .snapshot()
            .counter_sum("wiera_fenced_total")
            > fenced_before,
        "fencing must be observable in metrics"
    );

    // Anti-entropy heals the deposed primary's view and data in place (no
    // restart needed after a partition).
    let report = west.anti_entropy();
    assert_eq!(west.epoch(), new_primary.epoch());
    assert_eq!(west.primary(), Some(new_primary.node.clone()));
    assert_eq!(
        sorted_digests(&west),
        sorted_digests(&new_primary),
        "post-heal convergence must be digest-equal, report {report:?}"
    );
    cluster.shutdown();
}

/// Regression test for the shutdown-flush ordering bug: `stop_all` must
/// flush every replica's queued eventual-mode updates while all peers are
/// still alive. A single flush-as-you-stop pass dropped the last replica's
/// queue on the floor (its peers were already gone).
#[test]
fn stop_all_flushes_queued_updates_before_stopping() {
    let _serial = serial();
    let cluster = Cluster::launch(
        &[Region::UsEast, Region::UsWest, Region::EuWest],
        3000.0,
        73,
    );
    cluster
        .register_policy_over(
            "flush",
            &[("US-East", false), ("US-West", false), ("EU-West", false)],
            bodies::EVENTUAL,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "flush",
            "flush",
            DeploymentConfig {
                // Modeled hours: nothing flushes on its own.
                flush_ms: 3_600_000.0,
                ..Default::default()
            },
        )
        .unwrap();
    let replicas = cluster.deployment_replicas("flush");
    // Writes queued on different origins, none propagated yet.
    dep.put_from(
        &wiera_net::NodeId::new(Region::UsEast, "app-e"),
        "from-east",
        payload(16),
    )
    .unwrap();
    dep.put_from(
        &wiera_net::NodeId::new(Region::EuWest, "app-w"),
        "from-eu",
        payload(16),
    )
    .unwrap();
    assert!(
        replicas.iter().any(|r| r.queue_len() > 0),
        "precondition: updates must still be queued"
    );

    dep.stop_all();

    for r in &replicas {
        assert!(r.is_stopped());
        assert_eq!(r.queue_len(), 0, "{}: queue must drain on stop", r.node);
        for key in ["from-east", "from-eu"] {
            assert!(
                r.instance().get(key).is_ok(),
                "{}: '{key}' lost in shutdown",
                r.node
            );
        }
    }
    cluster.shutdown();
}

/// A controller-driven `change_primary` racing a partition of the target:
/// the cut replica misses the announcement, but re-announcing after the
/// heal converges every replica on the same primary and epoch.
#[test]
fn change_primary_racing_partition_converges_after_heal() {
    let _serial = serial();
    let cluster = Cluster::launch(
        &[Region::UsEast, Region::UsWest, Region::EuWest],
        3000.0,
        74,
    );
    cluster
        .register_policy_over(
            "race",
            &[("US-East", true), ("US-West", false), ("EU-West", false)],
            bodies::PRIMARY_BACKUP_SYNC,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "race",
            "race",
            DeploymentConfig {
                flush_ms: 500.0,
                ..Default::default()
            },
        )
        .unwrap();
    let replicas = cluster.deployment_replicas("race");
    let west = by_region(&replicas, Region::UsWest);
    let eu = by_region(&replicas, Region::EuWest);

    // Cut EU off mid-migration: the ChangePrimary broadcast reaches only
    // part of the deployment.
    cluster.fabric.partition(Region::EuWest, Region::UsEast);
    cluster.fabric.partition(Region::EuWest, Region::UsWest);
    dep.change_primary(west.node.clone());
    assert_eq!(west.primary(), Some(west.node.clone()));
    assert_ne!(
        eu.primary(),
        Some(west.node.clone()),
        "the partitioned replica cannot have heard the announcement"
    );

    cluster
        .fabric
        .heal_partition(Region::EuWest, Region::UsEast);
    cluster
        .fabric
        .heal_partition(Region::EuWest, Region::UsWest);
    // Re-announcing membership is idempotent for the replicas that already
    // switched and repairs the one that missed it.
    dep.push_membership();
    for r in &replicas {
        assert_eq!(
            r.primary(),
            Some(west.node.clone()),
            "{}: must converge on the migrated primary",
            r.node
        );
    }
    let epochs: Vec<u64> = replicas.iter().map(|r| r.epoch()).collect();
    assert!(
        epochs.windows(2).all(|w| w[0] == w[1]),
        "epochs must agree after the heal: {epochs:?}"
    );

    // The moved-to primary actually serves writes.
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "app")
        .replicas(dep.replicas())
        .build();
    client.put("after-heal", payload(16)).unwrap();
    assert!(west.instance().get("after-heal").is_ok());
    cluster.shutdown();
}
