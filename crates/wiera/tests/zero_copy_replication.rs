//! Zero-copy replication test: a value written once by the client must cross
//! the whole replicated data path — client → primary ingest → tier store →
//! `ReplicateBatch` fan-out → backup apply → backup tier store — without a
//! single deep copy. The bytes shim's process-global copy counter meters
//! every physical byte copy; `Bytes` clones (including the shared
//! `Arc<[SyncObject]>` batch) are refcount bumps and count nothing.
//!
//! Lives alone in its own integration-test binary because the counter is
//! process-global.

use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera_net::Region;

#[test]
fn replication_fan_out_does_not_deep_copy_values() {
    // Three regions: one primary, two backups — the fan-out case where the
    // old code cloned the full item vector once per backup.
    let cluster = Cluster::launch(
        &[Region::UsEast, Region::UsWest, Region::EuWest],
        3000.0,
        42,
    );
    cluster
        .register_policy_over(
            "zc-repl",
            &[("US-East", true), ("US-West", false), ("EU-West", false)],
            bodies::PRIMARY_BACKUP_SYNC,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances("zc-repl", "zc-repl", DeploymentConfig::default())
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "zc-app")
        .replicas(dep.replicas())
        .build();

    static PAYLOAD: &[u8] = &[0x5a; 2048];
    let items: Vec<(String, bytes::Bytes)> = (0..16)
        .map(|i| (format!("zc-{i:02}"), bytes::Bytes::from_static(PAYLOAD)))
        .collect();

    bytes::reset_copied_bytes();
    for r in client.put_batch(&items).unwrap() {
        r.unwrap();
    }
    let copied = bytes::copied_bytes();
    assert_eq!(
        copied, 0,
        "replicating 16 puts to 2 backups copied {copied} bytes; the batch \
         must be shared by refcount end to end"
    );

    // The values really did replicate: read back from a backup region.
    let got = client.get("zc-00").unwrap();
    assert_eq!(got.value.unwrap().as_ref(), PAYLOAD);

    cluster.shutdown();
}
