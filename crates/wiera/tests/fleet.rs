//! Fleet sharding integration tests: a consistent-hash fleet of replica
//! groups behind the shard-aware client.
//!
//! * single-key ops route by key hash to the owning group only;
//! * batch ops split per group and report per-item results in order;
//! * a `WrongShard` refusal surfaces as a retryable error when the map
//!   never settles;
//! * `move_shard` relocates a shard's data with the drained handoff and
//!   re-routes clients through the shared view;
//! * writes concurrent with a move are never lost once acked;
//! * `add_group` grows the fleet elastically.

use bytes::Bytes;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::fleet::{FleetConfig, WieraFleet};
use wiera::msg::{DataMsg, FailCode};
use wiera::testkit::{bodies, Cluster};
use wiera_net::{NodeId, Region};
use wiera_sim::SimDuration;

/// Full-cluster tests; run serially so RPC wall timeouts are not starved
/// on small CI hosts.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn payload(tag: &str) -> Bytes {
    Bytes::from(format!("value-{tag}").into_bytes())
}

/// A two-region cluster with a primary-backup-sync policy registered, so
/// an acked write is synchronously on every replica of its group.
fn fleet_cluster(seed: u64) -> Cluster {
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], 3000.0, seed);
    cluster
        .register_policy_over(
            "fleetpol",
            &[("US-East", true), ("US-West", false)],
            bodies::PRIMARY_BACKUP_SYNC,
        )
        .unwrap();
    cluster
}

fn launch_fleet(cluster: &Cluster, id: &str, groups: u32) -> Arc<WieraFleet> {
    WieraFleet::launch(
        cluster.controller.clone(),
        cluster.data_mesh.clone(),
        id,
        FleetConfig::new("fleetpol")
            .with_groups(groups)
            .with_shards(16, 8)
            .with_deployment(DeploymentConfig::default()),
    )
    .unwrap()
}

fn fleet_client(cluster: &Cluster, fleet: &WieraFleet, name: &str) -> Arc<WieraClient> {
    WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, name)
        .fleet(fleet.view())
        .max_attempts(40)
        .build()
}

/// The keys a group's replicas currently hold (union of digest tables).
fn group_keys(cluster: &Cluster, fleet_id: &str, group: u32) -> HashSet<String> {
    let mut keys = HashSet::new();
    for rep in cluster.deployment_replicas(&format!("{fleet_id}-g{group}")) {
        for e in rep.digest_table() {
            keys.insert(e.key);
        }
    }
    keys
}

#[test]
fn single_key_ops_route_to_the_owning_group_only() {
    let _serial = serial();
    let cluster = fleet_cluster(61);
    let fleet = launch_fleet(&cluster, "route", 2);
    let client = fleet_client(&cluster, &fleet, "router");

    let keys: Vec<String> = (0..48).map(|i| format!("route/user{i:04}")).collect();
    for key in &keys {
        client.put(key, payload(key)).unwrap();
    }

    let map = fleet.view().map();
    let g0 = group_keys(&cluster, "route", 0);
    let g1 = group_keys(&cluster, "route", 1);
    let mut per_group = [0usize; 2];
    for key in &keys {
        let group = map.group_of(key);
        per_group[group as usize] += 1;
        let (own, other) = if group == 0 { (&g0, &g1) } else { (&g1, &g0) };
        assert!(
            own.contains(key),
            "{key} missing from its owning group {group}"
        );
        assert!(
            !other.contains(key),
            "{key} leaked into group {}",
            1 - group
        );
        // And reads come back with the right bytes.
        let got = client.get(key).unwrap();
        assert_eq!(got.value.unwrap(), payload(key));
    }
    assert!(
        per_group[0] > 0 && per_group[1] > 0,
        "keys must spread over both groups, got {per_group:?}"
    );

    fleet.stop_all();
    cluster.shutdown();
}

#[test]
fn batch_ops_split_per_group_and_preserve_item_order() {
    let _serial = serial();
    let cluster = fleet_cluster(62);
    let fleet = launch_fleet(&cluster, "batch", 2);
    let client = fleet_client(&cluster, &fleet, "batcher");

    let items: Vec<(String, Bytes)> = (0..40)
        .map(|i| {
            let key = format!("batch/item{i:04}");
            let value = payload(&key);
            (key, value)
        })
        .collect();
    let map = fleet.view().map();
    let groups: HashSet<u32> = items.iter().map(|(k, _)| map.group_of(k)).collect();
    assert!(groups.len() > 1, "batch must span several groups");

    let put = client.put_batch(&items).unwrap();
    assert_eq!(put.len(), items.len());
    for (i, r) in put.iter().enumerate() {
        r.as_ref()
            .unwrap_or_else(|e| panic!("put_batch item {i} failed: {e}"));
    }

    let keys: Vec<String> = items.iter().map(|(k, _)| k.clone()).collect();
    let got = client.get_batch(&keys).unwrap();
    assert_eq!(got.len(), items.len());
    for (i, r) in got.into_iter().enumerate() {
        let view = r.unwrap_or_else(|e| panic!("get_batch item {i} failed: {e}"));
        assert_eq!(
            view.value.unwrap(),
            items[i].1,
            "get_batch item {i} must match its put in input order"
        );
    }

    fleet.stop_all();
    cluster.shutdown();
}

#[test]
fn unsettled_map_surfaces_as_retryable_wrong_shard() {
    let _serial = serial();
    let cluster = fleet_cluster(63);
    let fleet = launch_fleet(&cluster, "stale", 2);
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "staler")
        .fleet(fleet.view())
        .max_attempts(3)
        .map_refresh_backoff_ms(5.0)
        .build();

    let map = fleet.view().map();
    let key = (0..)
        .map(|i| format!("stale/key{i}"))
        .find(|k| map.group_of(k) == 0)
        .unwrap();
    let shard = map.shard_of(&key);

    // Simulate a fleet manager crash mid-move: group 0 is flipped off the
    // shard at a bumped version, but no group ever takes ownership and the
    // client view is never updated. Every route must refuse.
    let from = NodeId::new(Region::UsEast, "test-driver");
    let remaining: Vec<u32> = map
        .shards_of_group(0)
        .into_iter()
        .filter(|s| *s != shard)
        .collect();
    for rep in cluster.deployment_replicas("stale-g0") {
        let msg = DataMsg::SetShards {
            shards: remaining.clone(),
            num_shards: map.num_shards(),
            vnodes: map.vnodes(),
            map_version: map.version() + 1,
        };
        let bytes = msg.wire_bytes();
        let reply = cluster
            .data_mesh
            .rpc(&from, &rep.node, msg, bytes, SimDuration::from_secs(30))
            .unwrap();
        assert!(matches!(reply.msg, DataMsg::Ok));
    }

    let err = client.put(&key, payload(&key)).unwrap_err();
    assert_eq!(err.code(), Some(FailCode::WrongShard));
    assert!(
        err.retryable(),
        "a WrongShard refusal is transient by contract: {err}"
    );

    fleet.stop_all();
    cluster.shutdown();
}

#[test]
fn move_shard_relocates_data_and_reroutes_clients() {
    let _serial = serial();
    let cluster = fleet_cluster(64);
    let fleet = launch_fleet(&cluster, "mover", 2);
    let client = fleet_client(&cluster, &fleet, "mover-app");

    let keys: Vec<String> = (0..120).map(|i| format!("mover/obj{i:04}")).collect();
    for key in &keys {
        client.put(key, payload(key)).unwrap();
    }

    // Pick a group-0 shard that actually holds keys.
    let old = fleet.view().map();
    let shard = old
        .shards_of_group(0)
        .into_iter()
        .find(|s| keys.iter().any(|k| old.shard_of(k) == *s))
        .unwrap();
    let moved: Vec<&String> = keys.iter().filter(|k| old.shard_of(k) == shard).collect();
    let stayed: Vec<&String> = keys
        .iter()
        .filter(|k| old.group_of(k) == 0 && old.shard_of(k) != shard)
        .collect();
    assert!(!moved.is_empty());

    fleet.move_shard(shard, 1).unwrap();

    let new = fleet.view().map();
    assert_eq!(new.version(), old.version() + 1);
    assert_eq!(new.group_of_shard(shard), 1);

    // Every key is still readable through the (re-routed) client.
    for key in &keys {
        let got = client.get(key).unwrap();
        assert_eq!(
            got.value.unwrap(),
            payload(key.as_str()),
            "{key} after move"
        );
    }

    // The data physically moved: present in group 1, retired from group 0;
    // unmoved group-0 keys stayed put.
    let g0 = group_keys(&cluster, "mover", 0);
    let g1 = group_keys(&cluster, "mover", 1);
    for key in &moved {
        assert!(g1.contains(key.as_str()), "{key} missing from target group");
        assert!(!g0.contains(key.as_str()), "{key} not retired from source");
    }
    for key in &stayed {
        assert!(g0.contains(key.as_str()), "{key} must stay on group 0");
    }

    fleet.stop_all();
    cluster.shutdown();
}

#[test]
fn concurrent_writes_during_a_move_are_never_lost_once_acked() {
    let _serial = serial();
    let cluster = fleet_cluster(65);
    let fleet = launch_fleet(&cluster, "chaosmove", 2);
    let client = fleet_client(&cluster, &fleet, "chaos-writer");

    // Keys all living in one group-0 shard, so the move window hits them.
    let map = fleet.view().map();
    let shard = map.shards_of_group(0)[0];
    let keys: Vec<String> = (0..)
        .map(|i| format!("chaosmove/hot{i}"))
        .filter(|k| map.shard_of(k) == shard)
        .take(6)
        .collect();
    for key in &keys {
        client.put(key, payload("seed")).unwrap();
    }

    let stop = AtomicBool::new(false);
    let acked: Vec<(String, u64)> = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            // Hammer the moving shard; record (key, version) of every ack.
            // WrongShard redirects during the handoff are absorbed by the
            // client's routed loop; an op that still fails is simply not
            // acked and carries no guarantee.
            let mut acked = Vec::new();
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for key in &keys {
                    let value = Bytes::from(format!("round-{round}"));
                    if let Ok(view) = client.put(key, value) {
                        acked.push((key.clone(), view.version));
                    }
                }
                round += 1;
            }
            acked
        });
        fleet.move_shard(shard, 1).unwrap();
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap()
    });
    assert!(!acked.is_empty(), "writer never got a single ack");

    // Every acked write survives the move: the key reads back at an
    // equal-or-newer version through the re-routed client.
    let new = fleet.view().map();
    assert_eq!(new.group_of_shard(shard), 1);
    for (key, version) in &acked {
        let got = client
            .get(key)
            .unwrap_or_else(|e| panic!("acked key {key} unreadable after move: {e}"));
        assert!(
            got.version >= *version,
            "acked write lost: {key} acked at v{version}, now v{}",
            got.version
        );
    }

    fleet.stop_all();
    cluster.shutdown();
}

#[test]
fn add_group_scales_the_fleet_elastically() {
    let _serial = serial();
    let cluster = fleet_cluster(66);
    let fleet = launch_fleet(&cluster, "grow", 1);
    let client = fleet_client(&cluster, &fleet, "grower");

    let keys: Vec<String> = (0..60).map(|i| format!("grow/obj{i:04}")).collect();
    for key in &keys {
        client.put(key, payload(key)).unwrap();
    }

    let g = fleet.add_group().unwrap();
    assert_eq!(g, 1);
    assert_eq!(fleet.num_groups(), 2);
    // The new group owns nothing yet.
    assert!(fleet.view().map().shards_of_group(1).is_empty());

    // Rebalance half the ring onto the new group.
    let shards = fleet.view().map().shards_of_group(0);
    for shard in shards.iter().take(shards.len() / 2) {
        fleet.move_shard(*shard, 1).unwrap();
    }
    let map = fleet.view().map();
    assert!(!map.shards_of_group(1).is_empty());

    // All keys survive the rebalance, served by whichever group owns them.
    let g1 = group_keys(&cluster, "grow", 1);
    let mut on_new_group = 0usize;
    for key in &keys {
        let got = client.get(key).unwrap();
        assert_eq!(got.value.unwrap(), payload(key));
        if map.group_of(key) == 1 {
            assert!(g1.contains(key.as_str()), "{key} missing from new group");
            on_new_group += 1;
        }
    }
    assert!(on_new_group > 0, "rebalance moved no keys");

    fleet.stop_all();
    cluster.shutdown();
}
