//! Client failover-policy tests: every `WieraClient` method routes through
//! one `with_failover` loop, so ordering, retry, and finality rules are
//! testable once at the client surface.
//!
//! * candidates are sorted closest-first by base RTT at connect time;
//! * a transport failure advances to the next-closest replica;
//! * a semantic (`Fail`) reply is final — the client must NOT mask a
//!   NotFound by quietly asking a farther replica;
//! * batch calls report per-item outcomes, so a partial failure never
//!   hides the items that succeeded.

use bytes::Bytes;
use std::sync::Arc;
use wiera::client::{RetryPolicy, WieraClient};
use wiera::deployment::DeploymentConfig;
use wiera::msg::{DataMsg, FailCode};
use wiera::replica::AppError;
use wiera::testkit::{bodies, Cluster};
use wiera_net::{Mesh, NodeId, Region};
use wiera_sim::{MetricsRegistry, SimDuration};

fn payload(n: usize) -> Bytes {
    Bytes::from(vec![0x42u8; n])
}

/// Full-cluster tests; run serially so RPC wall timeouts are not starved
/// on small CI hosts.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// An eventual-mode deployment whose queue effectively never flushes, so a
/// write lands ONLY on the replica that accepted it — which makes "did the
/// client silently ask another replica?" observable.
fn unsynced_cluster(seed: u64) -> (Cluster, std::sync::Arc<wiera::deployment::WieraDeployment>) {
    let cluster = Cluster::launch(
        &[Region::UsEast, Region::UsWest, Region::EuWest],
        3000.0,
        seed,
    );
    cluster
        .register_policy_over(
            "fo",
            &[("US-East", false), ("US-West", false), ("EU-West", false)],
            bodies::EVENTUAL,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "fo",
            "fo",
            DeploymentConfig {
                // Modeled hours: no flush happens within any test.
                flush_ms: 3_600_000.0,
                ..Default::default()
            },
        )
        .unwrap();
    (cluster, dep)
}

#[test]
fn replicas_sort_closest_first_and_serve_locally() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(41);
    for (region, want) in [
        (Region::UsEast, Region::UsEast),
        (Region::UsWest, Region::UsWest),
        (Region::EuWest, Region::EuWest),
    ] {
        let client = WieraClient::builder(cluster.data_mesh.clone(), region, "sorted")
            .replicas(dep.replicas())
            .build();
        assert_eq!(
            client.closest().unwrap().region,
            want,
            "closest candidate must be the co-located replica"
        );
        let view = client.put("sorted-key", payload(16)).unwrap();
        assert_eq!(
            view.served_by.region, want,
            "ops must go to the closest replica first"
        );
    }
    cluster.shutdown();
}

#[test]
fn transport_error_advances_to_next_closest() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(42);
    // Seed a key onto the SECOND-closest replica (US-West) only.
    let west_client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "seeder")
        .replicas(dep.replicas())
        .build();
    west_client.put("west-only", payload(16)).unwrap();

    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    // Crash the closest replica: the client's RPC fails at the transport
    // level and failover must find US-West (next closest for US-East).
    let replicas = cluster.deployment_replicas("fo");
    replicas
        .iter()
        .find(|r| r.node.region == Region::UsEast)
        .unwrap()
        .stop();
    let view = client.get("west-only").unwrap();
    assert_eq!(
        view.served_by.region,
        Region::UsWest,
        "failover must advance in closest-first order"
    );
    cluster.shutdown();
}

#[test]
fn semantic_error_is_final_not_retried_elsewhere() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(43);
    // The key exists ONLY on US-West (eventual queue never flushes). A
    // healthy US-East replica answers NotFound; if the client treated that
    // as retryable it would reach US-West and "succeed" — masking the miss.
    let west_client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "seeder")
        .replicas(dep.replicas())
        .build();
    west_client.put("west-only", payload(16)).unwrap();

    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    let err = client.get("west-only").unwrap_err();
    assert!(
        err.is_not_found(),
        "semantic NotFound must surface, not fail over: {err}"
    );
    assert_eq!(err.code(), Some(FailCode::NotFound));
    cluster.shutdown();
}

#[test]
fn structured_codes_distinguish_failure_kinds() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(44);
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    client.put("versioned", payload(16)).unwrap();
    // Present key, absent version: a distinct error code from NotFound.
    let err = client.get_version("versioned", 999).unwrap_err();
    assert_eq!(err.code(), Some(FailCode::VersionMissing), "{err}");
    assert!(err.is_not_found(), "a missing version is a kind of miss");
    let err = client.get("no-such-key").unwrap_err();
    assert_eq!(err.code(), Some(FailCode::NotFound), "{err}");
    cluster.shutdown();
}

#[test]
fn batch_reports_partial_failures_per_item() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(45);
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    let items: Vec<(String, Bytes)> = (0..3).map(|i| (format!("b{i}"), payload(8))).collect();
    for r in client.put_batch(&items).unwrap() {
        r.unwrap();
    }
    // Mixed batch: hits interleaved with a miss. The miss must not poison
    // its neighbours, and each item must carry its own outcome.
    let keys = vec!["b0".to_string(), "missing".to_string(), "b2".to_string()];
    let results = client.get_batch(&keys).unwrap();
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok(), "{:?}", results[0].as_ref().err());
    let miss = results[1].as_ref().unwrap_err();
    assert_eq!(miss.code(), Some(FailCode::NotFound));
    assert!(results[2].is_ok());
    cluster.shutdown();
}

#[test]
fn batch_fails_over_whole_batch_on_transport_error() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(46);
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    let replicas = cluster.deployment_replicas("fo");
    replicas
        .iter()
        .find(|r| r.node.region == Region::UsEast)
        .unwrap()
        .stop();
    let items: Vec<(String, Bytes)> = (0..4).map(|i| (format!("fo{i}"), payload(8))).collect();
    let results = client.put_batch(&items).unwrap();
    for r in &results {
        let view = r.as_ref().unwrap();
        assert_eq!(
            view.served_by.region,
            Region::UsWest,
            "the whole batch must land on the next-closest replica"
        );
    }
    cluster.shutdown();
}

/// Register a bare mesh endpoint that sheds every request — a stand-in for
/// a replica whose admission controller has collapsed under load.
fn spawn_shedder(mesh: &Arc<Mesh<DataMsg>>, region: Region, name: &str) -> NodeId {
    let node = NodeId::new(region, name.to_string());
    let inbox = mesh.register(node.clone());
    std::thread::spawn(move || {
        while let Ok(d) = inbox.recv() {
            if let Some(slot) = d.reply {
                let msg = DataMsg::Fail {
                    code: FailCode::Overloaded,
                    why: "admission backlog above target; retry elsewhere".to_string(),
                };
                let bytes = msg.wire_bytes();
                slot.reply(msg, SimDuration::from_micros(50), bytes);
            }
        }
    });
    node
}

fn counter(key: &str) -> u64 {
    MetricsRegistry::global()
        .snapshot()
        .counters
        .get(key)
        .copied()
        .unwrap_or(0)
}

#[test]
fn shed_reply_advances_to_the_next_replica() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(48);
    // The shedder is the only candidate in the client's region, so it is
    // tried first; the real US-West replica is the next-closest.
    let shedder = spawn_shedder(&cluster.data_mesh, Region::UsEast, "shedder");
    let mut replicas = vec![shedder];
    replicas.extend(
        dep.replicas()
            .into_iter()
            .filter(|n| n.region != Region::UsEast),
    );
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(replicas)
        .build();
    let before = counter("client_retries{reason=overloaded}");
    let view = client.put("shed-key", payload(16)).unwrap();
    assert_eq!(
        view.served_by.region,
        Region::UsWest,
        "a shed is retryable: the op must land on the next-closest replica"
    );
    assert!(
        counter("client_retries{reason=overloaded}") > before,
        "the shed retry must be counted under its own reason label"
    );
    cluster.shutdown();
}

#[test]
fn breaker_opens_on_a_persistently_shedding_replica() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(49);
    let shedder = spawn_shedder(&cluster.data_mesh, Region::UsEast, "shed-brk");
    let mut replicas = vec![shedder];
    replicas.extend(
        dep.replicas()
            .into_iter()
            .filter(|n| n.region != Region::UsEast),
    );
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(replicas)
        .breakers(true)
        .build();
    // Every put sheds at the closest replica and lands on US-West; the
    // breaker accumulates one failure sample per admitted attempt and must
    // open once past its sample floor — without ever failing the op.
    for i in 0..12 {
        let view = client.put(&format!("bk{i}"), payload(8)).unwrap();
        assert_eq!(view.served_by.region, Region::UsWest);
    }
    let snap = MetricsRegistry::global().snapshot();
    assert!(
        snap.counters.keys().any(|k| {
            k.starts_with("breaker_transitions{")
                && k.contains("client:shed-brk")
                && k.contains("to=open")
        }),
        "persistent sheds must trip the per-replica breaker: {:?}",
        snap.counters.keys().collect::<Vec<_>>()
    );
    cluster.shutdown();
}

#[test]
fn spent_deadline_fails_fast_with_deadline_exceeded() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(50);
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .deadline_ms(0.0)
        .build();
    let err = client.put("dl", payload(8)).unwrap_err();
    assert_eq!(
        err.code(),
        Some(FailCode::DeadlineExceeded),
        "a spent budget surfaces as DeadlineExceeded, not a transport error: {err}"
    );
    // A generous budget behaves like no budget at all.
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .deadline_ms(3_600_000.0)
        .build();
    client.put("dl", payload(8)).unwrap();
    cluster.shutdown();
}

#[test]
fn hedged_get_recovers_from_a_dead_primary() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(51);
    // Seed the key on US-West; then kill the client's closest replica so
    // the primary leg of the race fails at the transport level and the
    // hedge leg must produce the answer.
    let west_client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "seeder")
        .replicas(dep.replicas())
        .build();
    west_client.put("west-only", payload(16)).unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .hedged_reads(true)
        .build();
    let replicas = cluster.deployment_replicas("fo");
    replicas
        .iter()
        .find(|r| r.node.region == Region::UsEast)
        .unwrap()
        .stop();
    let won_before = counter("client_hedges{event=hedge-won}");
    let view = client.get("west-only").unwrap();
    assert_eq!(
        view.served_by.region,
        Region::UsWest,
        "the hedge leg must serve when the primary is dead"
    );
    assert!(
        counter("client_hedges{event=hedge-won}") > won_before,
        "the hedge win must be visible in metrics"
    );
    cluster.shutdown();
}

#[test]
fn retries_back_off_with_seeded_jitter_until_attempt_cap() {
    let _serial = serial();
    let (cluster, dep) = unsynced_cluster(47);
    let policy = RetryPolicy {
        base_backoff_ms: 40.0,
        max_backoff_ms: 500.0,
        max_attempts: 5,
        seed: 1234,
    };
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .policy(policy)
        .build();
    let retries_before = MetricsRegistry::global()
        .snapshot()
        .counter_sum("client_retries");
    for r in cluster.deployment_replicas("fo") {
        r.stop();
    }
    let t0 = cluster.data_mesh.clock.now();
    let err = client.get("anything").unwrap_err();
    let elapsed = cluster.data_mesh.clock.now().elapsed_since(t0);
    assert!(
        matches!(err, AppError::Net(_)),
        "with every replica down the last transport error surfaces: {err}"
    );
    let snap = MetricsRegistry::global().snapshot();
    assert_eq!(
        snap.counter_sum("client_retries") - retries_before,
        5,
        "every failed attempt up to the cap counts as a retry"
    );
    assert!(
        snap.counters
            .keys()
            .any(|k| k.starts_with("client_retries{") && k.contains("reason=unreachable")),
        "retry metric must be labeled by reason: {:?}",
        snap.counters.keys().collect::<Vec<_>>()
    );
    // 3 candidates per sweep, cap 5: exactly one inter-sweep backoff of
    // base..2*base sim-time (jittered) must have elapsed.
    assert!(
        elapsed >= SimDuration::from_millis_f64(40.0),
        "backoff must advance sim-time: {elapsed:?}"
    );
    cluster.shutdown();
}
