#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! The Tiera/Wiera policy specification language.
//!
//! Wiera's headline claim is that a *concise notation* can express a rich
//! array of local and global data-management policies — every policy in the
//! paper is given as a figure in this notation. This crate implements that
//! notation end to end:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — a recursive-descent parser accepting
//!   the exact syntax of the paper's Figures 1, 3(a), 3(b), 4, 5(a), 5(b),
//!   6(a) and 6(b), including its loose spots (`:` vs `=` in attribute
//!   lists, `%` line comments, optional semicolons, brace-less `if/else`
//!   bodies).
//! * [`units`] — the value units the figures use: sizes (`5G`), durations
//!   (`800 ms`, `30 seconds`, `120 hours`), rates (`40KB/s`), percentages.
//! * [`mod@compile`] — lowering into the semantic model that the Tiera and Wiera
//!   engines interpret: instance/tier layouts, event→response rules, and
//!   recognition of the three consistency protocols from their
//!   event-response shape (the paper hand-codes these; we compile them).
//! * [`canned`] — the verbatim policy text of each figure, as a named
//!   registry (`lowlatency`, `multi-primaries`, `eventual`, …) so
//!   applications can launch paper policies by id.
//! * [`analyze`] / [`diag`] — a multi-pass static analyzer producing
//!   span-carrying diagnostics with stable `WP###` codes; [`compile`]
//!   refuses policies with deny-level findings, and the `wiera-lint`
//!   binary exposes the analyzer on the command line.
//!
//! ```
//! use wiera_policy::{parse, compile};
//!
//! let spec = parse(wiera_policy::canned::EVENTUAL_CONSISTENCY).unwrap();
//! let compiled = compile(&spec).unwrap();
//! assert_eq!(compiled.consistency, Some(wiera_policy::ConsistencyModel::Eventual));
//! ```

pub mod analyze;
pub mod ast;
pub mod builder;
pub mod canned;
pub mod compile;
pub mod diag;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod units;

pub use analyze::{analyze, analyze_source};
pub use ast::{EventRule, Expr, PolicySpec, SpecKind, Stmt};
pub use compile::{
    compile, Action, CompiledPolicy, Condition, ConsistencyModel, EventKind, InstanceLayout,
    RegionLayout, Rule, Selector, Target, TierLayout,
};
pub use diag::{Code, Diagnostic, Severity, Span};
pub use error::PolicyError;
pub use parser::parse;
