//! Structured diagnostics with source spans.
//!
//! Every finding the static analyzer ([`crate::analyze`]) or the
//! parser/compiler front end produces is a [`Diagnostic`]: a stable code
//! (`WP001`…), a [`Severity`], a message, and an optional [`Span`] pointing
//! back into the policy source text. Diagnostics render two ways:
//!
//! * [`Diagnostic::render_human`] — a caret-underline report in the style
//!   of rustc, given the original source text;
//! * [`Diagnostic::to_json`] — a stable machine-readable object for
//!   tooling (`wiera-lint --json`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open range of the policy source text, in characters.
///
/// `line` and `col` are 1-based and refer to the start of the range.
/// Spans deliberately compare equal to each other: AST nodes carry spans
/// for diagnostics, but two specifications that differ only in formatting
/// (e.g. a pretty-printed round trip) must still compare equal.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Span {
    /// Start offset in characters from the beginning of the source.
    pub start: usize,
    /// End offset (exclusive), in characters.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: usize,
    /// 1-based column (in characters) of `start` within its line.
    pub col: usize,
}

impl PartialEq for Span {
    fn eq(&self, _: &Self) -> bool {
        true // spans never affect AST equality (see type docs)
    }
}

impl Span {
    pub fn new(start: usize, end: usize, line: usize, col: usize) -> Span {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }

    /// Number of characters covered (at least 1 for caret rendering).
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start).max(1)
    }

    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never fails a lint run.
    Note,
    /// Suspicious but not fatal; fails `--deny-warnings` runs.
    Warn,
    /// The policy is broken; `compile()` refuses it.
    Deny,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The number never changes meaning once
/// published; retired codes are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Syntax or lowering error from the parser/compiler front end.
    Wp000,
    /// Duplicate tier declaration in one scope.
    Wp001,
    /// Reference to an undeclared tier.
    Wp002,
    /// Event references an undefined specification parameter.
    Wp003,
    /// Declared parameter is never used.
    Wp004,
    /// Duplicate handler for the same event (shadowed rule).
    Wp005,
    /// Rule can never fire (infeasible event threshold).
    Wp006,
    /// Data flow into a tier smaller than its source tier.
    Wp007,
    /// Archival-class tier targeted on a latency-sensitive path.
    Wp008,
    /// Unit or threshold sanity violation.
    Wp009,
    /// Conflicting consistency models across insert rules.
    Wp010,
    /// Duplicate region declaration.
    Wp011,
    /// Unknown response (action) name.
    Wp012,
    /// Response call missing a required argument.
    Wp013,
    /// `change_policy` targets an unknown policy.
    Wp014,
    /// Branch condition is constant; a branch can never run.
    Wp015,
    /// Rule reads a tier that no data-flow path populates.
    Wp016,
    /// Unrecognized event shape.
    Wp017,
    // --- WC codes: runtime concurrency/consistency findings (wiera-check) ---
    /// Lock-order cycle: potential ABBA deadlock in the runtime lock graph.
    Wc001,
    /// Two distinct locks of one class nested with no intra-class order.
    Wc002,
    /// Lock release with no matching acquisition on the releasing thread.
    Wc003,
    /// Recorded history violates linearizability under the deduced model.
    Wc010,
    /// Read-your-writes violation under eventual consistency.
    Wc011,
    /// Replicas failed to converge to one final value for a key.
    Wc012,
    /// History is incomplete or could not be checked against any model.
    Wc013,
    // --- WS codes: source-level audit findings (wiera-audit) ---
    /// Static lock-order cycle: classes acquirable in opposing orders on
    /// some interprocedural path, whether or not runtime replay took it.
    Ws100,
    /// Handler completeness: unhandled wire-message variant, or a
    /// replication/write handler missing epoch fencing or `record_history`.
    Ws101,
    /// Panic site (unwrap/expect/panic!) reachable from a data-path handler.
    Ws102,
    /// Blocking operation (channel recv, sleep, join) while a tracked lock
    /// guard is live.
    Ws103,
    /// Metrics discipline: inconsistent kind/labels for one metric name,
    /// non-literal names, or asserted-but-never-recorded invariants.
    Ws104,
    /// Audit blind spots: unresolved or widened call sites reachable from
    /// data-path entry points (extraction gaps the protocol model cannot
    /// see through).
    Ws105,
    /// Protocol model: an epoch-bearing handler arm mutates state without
    /// an epoch guard dominating the mutation.
    Ws110,
    /// Protocol model: a request handler arm emits no reply on any
    /// extracted path.
    Ws111,
    /// Protocol model: a reply is emitted before the arm's state mutation
    /// commits (ack-before-commit ordering hazard).
    Ws112,
    /// Protocol model: the epoch is overwritten from a foreign value with
    /// no monotonic guard.
    Ws113,
    /// Protocol model: a handler arm extracted to an empty transition —
    /// the model checker is blind to whatever the arm really does.
    Ws114,
    // --- WM codes: explicit-state exploration findings (wiera-model) ---
    /// Split-brain: two distinct nodes acted as primary in one epoch.
    Wm001,
    /// Epoch monotonicity: a node's epoch moved backwards.
    Wm002,
    /// Durability: an acknowledged write was lost across failover.
    Wm003,
    /// Convergence: live replicas failed to converge after quiescence.
    Wm004,
}

/// All codes the analyzer can emit, for documentation and golden tests.
pub const ALL_CODES: [Code; 18] = [
    Code::Wp000,
    Code::Wp001,
    Code::Wp002,
    Code::Wp003,
    Code::Wp004,
    Code::Wp005,
    Code::Wp006,
    Code::Wp007,
    Code::Wp008,
    Code::Wp009,
    Code::Wp010,
    Code::Wp011,
    Code::Wp012,
    Code::Wp013,
    Code::Wp014,
    Code::Wp015,
    Code::Wp016,
    Code::Wp017,
];

/// All codes `wiera-check` can emit (runtime concurrency/consistency
/// findings), kept separate from the policy-analyzer catalog above.
pub const ALL_CHECK_CODES: [Code; 7] = [
    Code::Wc001,
    Code::Wc002,
    Code::Wc003,
    Code::Wc010,
    Code::Wc011,
    Code::Wc012,
    Code::Wc013,
];

/// All codes `wiera-audit` can emit (source-level static analysis over the
/// workspace's Rust code), kept separate from the catalogs above.
pub const ALL_AUDIT_CODES: [Code; 11] = [
    Code::Ws100,
    Code::Ws101,
    Code::Ws102,
    Code::Ws103,
    Code::Ws104,
    Code::Ws105,
    Code::Ws110,
    Code::Ws111,
    Code::Ws112,
    Code::Ws113,
    Code::Ws114,
];

/// All codes `wiera-model` can emit (invariant violations found by
/// exhaustive exploration of the extracted protocol model).
pub const ALL_MODEL_CODES: [Code; 4] = [Code::Wm001, Code::Wm002, Code::Wm003, Code::Wm004];

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Wp000 => "WP000",
            Code::Wp001 => "WP001",
            Code::Wp002 => "WP002",
            Code::Wp003 => "WP003",
            Code::Wp004 => "WP004",
            Code::Wp005 => "WP005",
            Code::Wp006 => "WP006",
            Code::Wp007 => "WP007",
            Code::Wp008 => "WP008",
            Code::Wp009 => "WP009",
            Code::Wp010 => "WP010",
            Code::Wp011 => "WP011",
            Code::Wp012 => "WP012",
            Code::Wp013 => "WP013",
            Code::Wp014 => "WP014",
            Code::Wp015 => "WP015",
            Code::Wp016 => "WP016",
            Code::Wp017 => "WP017",
            Code::Wc001 => "WC001",
            Code::Wc002 => "WC002",
            Code::Wc003 => "WC003",
            Code::Wc010 => "WC010",
            Code::Wc011 => "WC011",
            Code::Wc012 => "WC012",
            Code::Wc013 => "WC013",
            Code::Ws100 => "WS100",
            Code::Ws101 => "WS101",
            Code::Ws102 => "WS102",
            Code::Ws103 => "WS103",
            Code::Ws104 => "WS104",
            Code::Ws105 => "WS105",
            Code::Ws110 => "WS110",
            Code::Ws111 => "WS111",
            Code::Ws112 => "WS112",
            Code::Ws113 => "WS113",
            Code::Ws114 => "WS114",
            Code::Wm001 => "WM001",
            Code::Wm002 => "WM002",
            Code::Wm003 => "WM003",
            Code::Wm004 => "WM004",
        }
    }

    /// One-line catalog description (used by `wiera-lint --explain`).
    pub fn describe(self) -> &'static str {
        match self {
            Code::Wp000 => "syntax or lowering error",
            Code::Wp001 => "duplicate tier declaration",
            Code::Wp002 => "reference to an undeclared tier",
            Code::Wp003 => "event references an undefined parameter",
            Code::Wp004 => "declared parameter is never used",
            Code::Wp005 => "duplicate handler for the same event",
            Code::Wp006 => "rule can never fire (infeasible threshold)",
            Code::Wp007 => "flow into a tier smaller than its source",
            Code::Wp008 => "archival tier on a latency-sensitive path",
            Code::Wp009 => "unit or threshold sanity violation",
            Code::Wp010 => "conflicting consistency models across insert rules",
            Code::Wp011 => "duplicate region declaration",
            Code::Wp012 => "unknown response name",
            Code::Wp013 => "response missing a required argument",
            Code::Wp014 => "change_policy targets an unknown policy",
            Code::Wp015 => "constant condition makes a branch unreachable",
            Code::Wp016 => "rule reads a tier no flow path populates",
            Code::Wp017 => "unrecognized event shape",
            Code::Wc001 => "lock-order cycle (potential deadlock)",
            Code::Wc002 => "same-class lock nesting with no intra-class order",
            Code::Wc003 => "lock release without a matching acquisition",
            Code::Wc010 => "history violates linearizability under the deduced model",
            Code::Wc011 => "read-your-writes violation under eventual consistency",
            Code::Wc012 => "replicas failed to converge",
            Code::Wc013 => "history incomplete or uncheckable",
            Code::Ws100 => "static lock-order cycle (potential deadlock on an unexercised path)",
            Code::Ws101 => "handler completeness: unhandled variant or missing fence/history",
            Code::Ws102 => "panic site reachable from a data-path handler",
            Code::Ws103 => "blocking operation while a tracked lock guard is live",
            Code::Ws104 => "metrics discipline violation",
            Code::Ws105 => "unresolved/widened call sites reachable from data-path entries",
            Code::Ws110 => "epoch-bearing handler arm mutates state without an epoch guard",
            Code::Ws111 => "request handler arm emits no reply on any extracted path",
            Code::Ws112 => "reply emitted before the arm's state mutation commits",
            Code::Ws113 => "epoch overwritten from a foreign value with no monotonic guard",
            Code::Ws114 => "handler arm extracted to an empty transition (model blind spot)",
            Code::Wm001 => "split-brain: two nodes acted as primary in one epoch",
            Code::Wm002 => "a node's epoch moved backwards",
            Code::Wm003 => "acknowledged write lost across failover",
            Code::Wm004 => "live replicas failed to converge after quiescence",
        }
    }
}

impl Serialize for Code {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer or front-end finding.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    pub message: String,
    pub span: Option<Span>,
    /// Secondary notes ("first declared at line 3").
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    pub fn deny(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Deny, message)
    }

    pub fn warn(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Warn, message)
    }

    pub fn note(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Note, message)
    }

    pub fn at(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// One-line machine-stable form: `WP001 deny 4:4 message`.
    pub fn compact(&self) -> String {
        match self.span {
            Some(s) => format!(
                "{} {} {}:{} {}",
                self.code, self.severity, s.line, s.col, self.message
            ),
            None => format!("{} {} -:- {}", self.code, self.severity, self.message),
        }
    }

    /// rustc-style report with the offending source line underlined.
    pub fn render_human(&self, src: &str, origin: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        if let Some(span) = self.span {
            out.push_str(&format!(" --> {}:{}:{}\n", origin, span.line, span.col));
            if let Some(line_text) = src.lines().nth(span.line.saturating_sub(1)) {
                let gutter = format!("{:>4}", span.line);
                out.push_str(&format!("{gutter} | {line_text}\n"));
                let pad = " ".repeat(span.col.saturating_sub(1));
                let avail = line_text
                    .chars()
                    .count()
                    .saturating_sub(span.col.saturating_sub(1));
                let carets = "^".repeat(span.len().min(avail.max(1)));
                out.push_str(&format!("     | {pad}{carets}\n"));
            }
        } else {
            out.push_str(&format!(" --> {origin}\n"));
        }
        for note in &self.notes {
            out.push_str(&format!("     = note: {note}\n"));
        }
        out
    }

    /// Stable JSON object for tooling.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| String::from("{}"))
    }
}

/// Sort in source order (unspanned findings last), then by code.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by_key(|d| {
        (
            d.span.map(|s| s.start).unwrap_or(usize::MAX),
            d.code,
            std::cmp::Reverse(d.severity),
        )
    });
}

/// Does any finding reach the given severity (counting `--deny-warnings`
/// promotion when `deny_warnings` is set)?
pub fn worst_is_deny(diags: &[Diagnostic], deny_warnings: bool) -> bool {
    diags
        .iter()
        .any(|d| d.severity == Severity::Deny || (deny_warnings && d.severity == Severity::Warn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_compare_equal_regardless_of_position() {
        assert_eq!(Span::new(0, 5, 1, 1), Span::new(90, 95, 7, 3));
    }

    #[test]
    fn compact_form_is_stable() {
        let d = Diagnostic::deny(Code::Wp001, "duplicate tier declaration 'tier1'")
            .at(Span::new(10, 15, 4, 4));
        assert_eq!(
            d.compact(),
            "WP001 deny 4:4 duplicate tier declaration 'tier1'"
        );
    }

    #[test]
    fn human_render_underlines_span() {
        let src = "line one\ntier1: {name: X};\n";
        let d = Diagnostic::deny(Code::Wp001, "duplicate tier declaration 'tier1'")
            .at(Span::new(9, 14, 2, 1))
            .with_note("first declared at line 1");
        let r = d.render_human(src, "test.policy");
        assert!(r.contains("deny[WP001]"), "{r}");
        assert!(r.contains("--> test.policy:2:1"), "{r}");
        assert!(r.contains("^^^^^"), "{r}");
        assert!(r.contains("note: first declared at line 1"), "{r}");
    }

    #[test]
    fn json_render_contains_code_and_span() {
        let d = Diagnostic::warn(Code::Wp007, "tier overflow risk").at(Span::new(3, 8, 1, 4));
        let j = d.to_json();
        assert!(j.contains("\"code\":\"WP007\""), "{j}");
        assert!(j.contains("\"severity\":\"warn\""), "{j}");
        assert!(j.contains("\"line\":1"), "{j}");
    }

    #[test]
    fn sorting_and_deny_detection() {
        let mut ds = vec![
            Diagnostic::note(Code::Wp004, "b").at(Span::new(50, 51, 5, 1)),
            Diagnostic::warn(Code::Wp006, "a").at(Span::new(10, 12, 2, 1)),
            Diagnostic::deny(Code::Wp001, "c"),
        ];
        sort_diagnostics(&mut ds);
        assert_eq!(ds[0].code, Code::Wp006);
        assert_eq!(ds[2].code, Code::Wp001, "unspanned sorts last");
        assert!(worst_is_deny(&ds, false));
        let warns_only = vec![Diagnostic::warn(Code::Wp006, "a")];
        assert!(!worst_is_deny(&warns_only, false));
        assert!(worst_is_deny(&warns_only, true));
    }

    #[test]
    fn all_codes_have_unique_names_and_descriptions() {
        let mut seen = std::collections::BTreeSet::new();
        for c in ALL_CODES
            .iter()
            .chain(ALL_CHECK_CODES.iter())
            .chain(ALL_AUDIT_CODES.iter())
            .chain(ALL_MODEL_CODES.iter())
        {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(!c.describe().is_empty());
        }
        assert_eq!(seen.len(), 40);
    }
}
