//! The paper's policy figures, verbatim (modulo figure typos, which the
//! parser/compiler also accept), as a named registry.
//!
//! Applications launch these by id through the Wiera API, exactly as §3.3
//! envisions: `startInstances(instance_id, policy)`.

/// Fig. 1(a): write-back local policy — memory first, flushed to disk on a
/// timer.
pub const LOW_LATENCY_INSTANCE: &str = r#"
Tiera LowLatencyInstance(time t) {
   % two tiers specified with initial sizes
   tier1: {name: Memcached, size: 5G};
   tier2: {name: EBS, size: 5G};
   % action event defined to always store data into Memcached
   event(insert.into) : response {
      insert.object.dirty = true;
      store(what:insert.object, to:tier1);
   }
   % write back policy: copying data to persistent store on a timer event
   event(time=t) : response {
      copy(what: object.location == tier1 && object.dirty == true, to:tier2);
   }
}
"#;

/// Fig. 1(b): write-through local policy with a capacity-triggered backup
/// to S3.
pub const PERSISTENT_INSTANCE: &str = r#"
Tiera PersistentInstance(time t) {
   tier1: {name: Memcached, size: 5G};
   tier2: {name: EBS, size: 5G};
   tier3: {name: S3, size: 10G};
   % write-through policy using action event data and copy response
   event(insert.into == tier1) : response {
      copy(what:insert.object, to:tier2);
   }
   % simple backup policy
   event(tier2.filled == 50%) : response {
      copy(what:object.location == tier2, to:tier3, bandwidth:40KB/s);
   }
}
"#;

/// Fig. 3(a): multiple primaries — global lock + synchronous broadcast.
pub const MULTI_PRIMARIES_CONSISTENCY: &str = r#"
Wiera MultiPrimariesConsistency() {
   Region1 = {name:LowLatencyInstance, region:US-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region2 = {name:LowLatencyInstance, region:US-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region3 = {name:LowLatencyInstance, region:EU-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   %MultiPrimaries Consistency
   event(insert.into) : response {
      lock(what:insert.key)
      store(what:insert.object, to:local_instance)
      copy(what:insert.object, to:all_regions)
      release(what:insert.key)
   }
}
"#;

/// Fig. 3(b): primary-backup — non-primaries forward to the primary, which
/// broadcasts synchronously.
pub const PRIMARY_BACKUP_CONSISTENCY: &str = r#"
Wiera PrimaryBackupConsistency() {
   % Primary instance is running on Region1
   Region1 = {name:LowLatencyInstance, region:US-West, primary:True,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region2 = {name:LowLatencyInstance, region:US-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region3 = {name:LowLatencyInstance, region:EU-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   %PrimaryBackup Consistency
   event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
         copy(what:insert.object, to:all_regions)
      else
         forward(what:insert.object, to:primary_instance)
   }
}
"#;

/// Fig. 3(b) variant with asynchronous propagation (`queue` instead of
/// `copy`), the trade-off §3.3.1 describes for better put latency.
pub const PRIMARY_BACKUP_ASYNC: &str = r#"
Wiera PrimaryBackupAsync() {
   Region1 = {name:LowLatencyInstance, region:US-West, primary:True,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region2 = {name:LowLatencyInstance, region:US-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
         queue(what:insert.object, to:all_regions)
      else
         forward(what:insert.object, to:primary_instance)
   }
}
"#;

/// Fig. 4: eventual consistency — local write, queued distribution.
/// (The `insert.oject` typo is the figure's own; the compiler accepts it.)
pub const EVENTUAL_CONSISTENCY: &str = r#"
Wiera EventualConsistency() {
   Region1 = {name:LowLatencyInstance, region:US-West,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   Region2 = {name:LowLatencyInstance, region:US-East,
      tier1 = {name:LocalMemory, size=5G},
      tier2 = {name:LocalDisk, size=5G} }
   %Eventual Consistency
   event(insert.into) : response {
      store(what:insert.oject, to:local_instance)
      queue(what:insert.object, to:all_regions)
   }
}
"#;

/// Fig. 5(a): dynamic consistency — switch to eventual when put latency
/// exceeds 800 ms for 30 s, and back when it recovers.
pub const DYNAMIC_CONSISTENCY: &str = r#"
Wiera DynamicConsistency() {
   % In Multiple-Primaries Consistency
   % Put operation spends more time than threshold
   % required for specific amount of time
   event(threshold.type == put) : response {
      if(threshold.latency > 800 ms && threshold.period > 30 seconds)
         change_policy(what:consistency, to:EventualConsistency);
      else if (threshold.latency <= 800 ms && threshold.period > 30 seconds)
         change_policy(what:consistency, to:MultiPrimariesConsistency);
   }
}
"#;

/// Fig. 5(b): change the primary toward the instance forwarding the most
/// requests. (`chage_policy` is the figure's own typo; accepted.)
pub const CHANGE_PRIMARY: &str = r#"
Wiera ChangePrimary() {
   % In Primary-Backup Consistency
   % If there is an instance which received more
   % requests than primary received from application.
   event(threshold.type == primary) : response {
      if(forwarded_requests_per_each_instance >= updates_from_primary
            && threshold.period = 600 seconds)
         chage_policy(what:primary_instance, to:instance_forward_most)
   }
}
"#;

/// Fig. 6(a): move cold data (untouched for 120 h) to cheap archival
/// storage.
pub const REDUCED_COST_POLICY: &str = r#"
Wiera ReducedCostPolicy() {
   Region1 = {name:PersistanceInstance, region:US-West,
      tier1 = {name:LocalDisk, size=5G},
      tier2 = {name:CheapestArchival, size=5G} }
   %Data is getting cold
   event(object.lastAccessedTime > 120 hours) : response {
      move(what:object.location == tier1, to:tier2, bandwidth:100KB/s);
   }
}
"#;

/// Fig. 6(b): simpler consistency — several DCs within one geographic
/// region forward everything to one fast primary.
pub const SIMPLER_CONSISTENCY: &str = r#"
Wiera SimplerConsistency() {
   Region1 = {name:LowLatencyInstance, region:US-West, primary:True,
      tier1 = {name:LocalMemory, size=30G},
      tier2 = {name:LocalDisk, size=30G} }
   Region2 = {name:ForwardingInstance, region:US-West-2}
   %PrimaryBackup Consistency
   event(insert.into) : response {
      if(local_instance.isPrimary == True)
         store(what:insert.object, to:local_instance)
      else
         forward(what:insert.object, to:primary_instance)
   }
}
"#;

/// All canned policies as `(id, name, source)`.
pub const ALL: [(&str, &str, &str); 10] = [
    ("low-latency", "LowLatencyInstance", LOW_LATENCY_INSTANCE),
    ("persistent", "PersistentInstance", PERSISTENT_INSTANCE),
    (
        "multi-primaries",
        "MultiPrimariesConsistency",
        MULTI_PRIMARIES_CONSISTENCY,
    ),
    (
        "primary-backup",
        "PrimaryBackupConsistency",
        PRIMARY_BACKUP_CONSISTENCY,
    ),
    (
        "primary-backup-async",
        "PrimaryBackupAsync",
        PRIMARY_BACKUP_ASYNC,
    ),
    ("eventual", "EventualConsistency", EVENTUAL_CONSISTENCY),
    (
        "dynamic-consistency",
        "DynamicConsistency",
        DYNAMIC_CONSISTENCY,
    ),
    ("change-primary", "ChangePrimary", CHANGE_PRIMARY),
    ("reduced-cost", "ReducedCostPolicy", REDUCED_COST_POLICY),
    (
        "simpler-consistency",
        "SimplerConsistency",
        SIMPLER_CONSISTENCY,
    ),
];

/// Look up a canned policy's source text by id or by policy name.
pub fn by_name(id: &str) -> Option<&'static str> {
    ALL.iter()
        .find(|(key, name, _)| key.eq_ignore_ascii_case(id) || name.eq_ignore_ascii_case(id))
        .map(|(_, _, src)| *src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, ConsistencyModel, EventKind};
    use crate::parser::parse;

    #[test]
    fn every_canned_policy_parses_and_compiles() {
        for (id, name, src) in ALL {
            let spec = parse(src).unwrap_or_else(|e| panic!("{id} parse: {e}"));
            assert_eq!(spec.name, name, "{id}");
            compile(&spec).unwrap_or_else(|e| panic!("{id} compile: {e}"));
        }
    }

    #[test]
    fn consistency_models_recognized() {
        let model = |src| compile(&parse(src).unwrap()).unwrap().consistency;
        assert_eq!(
            model(MULTI_PRIMARIES_CONSISTENCY),
            Some(ConsistencyModel::MultiPrimaries)
        );
        assert_eq!(
            model(PRIMARY_BACKUP_CONSISTENCY),
            Some(ConsistencyModel::PrimaryBackup { sync: true })
        );
        assert_eq!(
            model(PRIMARY_BACKUP_ASYNC),
            Some(ConsistencyModel::PrimaryBackup { sync: false })
        );
        assert_eq!(
            model(EVENTUAL_CONSISTENCY),
            Some(ConsistencyModel::Eventual)
        );
        assert_eq!(
            model(SIMPLER_CONSISTENCY),
            Some(ConsistencyModel::PrimaryBackup { sync: false }),
            "forward-to-primary with no propagation is primary-backup-shaped \
             (no synchronous copy step)"
        );
    }

    #[test]
    fn multi_primaries_declares_three_regions() {
        let c = compile(&parse(MULTI_PRIMARIES_CONSISTENCY).unwrap()).unwrap();
        assert_eq!(c.regions.len(), 3);
        let names: Vec<&str> = c.regions.iter().map(|r| r.region_name.as_str()).collect();
        assert_eq!(names, ["US-West", "US-East", "EU-West"]);
        for r in &c.regions {
            assert_eq!(r.instance.tiers.len(), 2);
        }
    }

    #[test]
    fn reduced_cost_has_cold_data_event() {
        let c = compile(&parse(REDUCED_COST_POLICY).unwrap()).unwrap();
        assert_eq!(
            c.rules[0].event,
            EventKind::ColdData {
                older_than_ms: 120.0 * 3_600_000.0
            }
        );
    }

    #[test]
    fn low_latency_has_writeback_rules() {
        let c = compile(&parse(LOW_LATENCY_INSTANCE).unwrap()).unwrap();
        assert_eq!(c.rules.len(), 2);
        assert_eq!(c.rules[0].event, EventKind::Insert { into: None });
        assert_eq!(c.rules[1].event, EventKind::Timer { period_ms: None });
    }

    #[test]
    fn lookup_by_id_and_name() {
        assert!(by_name("eventual").is_some());
        assert!(by_name("EventualConsistency").is_some());
        assert!(by_name("EVENTUAL").is_some());
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn pretty_print_roundtrips_all_canned() {
        for (id, _, src) in ALL {
            let spec = parse(src).unwrap();
            let printed = spec.to_string();
            let reparsed =
                parse(&printed).unwrap_or_else(|e| panic!("{id} reparse: {e}\n{printed}"));
            assert_eq!(spec, reparsed, "{id}");
        }
    }
}
