//! Recursive-descent parser for policy specifications.
//!
//! Accepts the notation exactly as the paper's figures write it, including:
//! `:` or `=` between attribute keys and values, optional semicolons,
//! spaced units (`800 ms`), and brace-less `if`/`else if`/`else` bodies
//! (a brace-less `if` branch extends to the next `else` or the end of the
//! enclosing response block, which is how every figure uses it; braces are
//! also accepted for unambiguous nesting).
//!
//! Every declaration, rule, and statement is stamped with a [`Span`] for
//! the static analyzer's diagnostics, and every parse error carries the
//! span of the offending token.

use crate::ast::{BinOp, EventRule, Expr, Param, PolicySpec, RegionDecl, SpecKind, Stmt, TierDecl};
use crate::diag::Span;
use crate::error::PolicyError;
use crate::lexer::{lex, Tok, Token};
use crate::units::Unit;
use std::collections::BTreeMap;

/// Maximum expression/statement nesting depth. Malformed input (for
/// example thousands of open parens) must produce an `Err`, not a stack
/// overflow.
const MAX_DEPTH: usize = 128;

/// Parse one policy specification from source text.
pub fn parse(src: &str) -> Result<PolicySpec, PolicyError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let spec = p.spec()?;
    if !p.at_end() {
        return Err(p.err("trailing input after specification"));
    }
    Ok(spec)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    /// Span of the current token (or the last token when at end of input).
    fn span(&self) -> Span {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.span)
            .unwrap_or_default()
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.toks
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or_default()
    }

    fn err(&self, msg: impl Into<String>) -> PolicyError {
        PolicyError::at_span(self.span(), msg)
    }

    fn enter(&mut self) -> Result<(), PolicyError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        Ok(())
    }

    fn next(&mut self) -> Result<Tok, PolicyError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|t| t.tok.clone())
            .ok_or_else(|| PolicyError::at_span(self.prev_span(), "unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), PolicyError> {
        let at = self.span();
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(PolicyError::at_span(
                at,
                format!("expected {what}, found {got:?}"),
            ))
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, PolicyError> {
        let at = self.span();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(PolicyError::at_span(
                at,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    /// An identifier together with its span.
    fn spanned_ident(&mut self, what: &str) -> Result<(String, Span), PolicyError> {
        let at = self.span();
        let name = self.ident(what)?;
        Ok((name, at))
    }

    // ---- grammar -----------------------------------------------------------

    fn spec(&mut self) -> Result<PolicySpec, PolicyError> {
        let kind = match self.ident("'Tiera' or 'Wiera'")?.as_str() {
            "Tiera" => SpecKind::Tiera,
            "Wiera" => SpecKind::Wiera,
            other => {
                return Err(PolicyError::at_span(
                    self.prev_span(),
                    format!("expected 'Tiera' or 'Wiera', found '{other}'"),
                ))
            }
        };
        let name = self.ident("policy name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        while self.peek() != Some(&Tok::RParen) {
            let (ty, ty_span) = self.spanned_ident("parameter type")?;
            let (pname, name_span) = self.spanned_ident("parameter name")?;
            params.push(Param {
                ty,
                name: pname,
                span: ty_span.to(name_span),
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        self.expect(&Tok::LBrace, "'{'")?;

        let mut tiers = Vec::new();
        let mut regions = Vec::new();
        let mut events = Vec::new();

        while self.peek() != Some(&Tok::RBrace) {
            match self.peek() {
                Some(Tok::Ident(id)) if id == "event" && self.peek2() == Some(&Tok::LParen) => {
                    events.push(self.event_rule()?);
                }
                Some(Tok::Ident(_)) => {
                    let (label, label_span) = self.spanned_ident("declaration label")?;
                    if !self.eat(&Tok::Colon) && !self.eat(&Tok::Assign) {
                        return Err(self.err(format!("expected ':' or '=' after '{label}'")));
                    }
                    let (attrs, nested) = self.attr_block()?;
                    self.eat(&Tok::Semi);
                    if label.to_ascii_lowercase().starts_with("tier") {
                        if !nested.is_empty() {
                            return Err(PolicyError::at_span(
                                label_span,
                                "tier declarations cannot nest tiers",
                            ));
                        }
                        tiers.push(TierDecl {
                            label,
                            attrs,
                            span: label_span,
                        });
                    } else {
                        regions.push(RegionDecl {
                            label,
                            attrs,
                            tiers: nested,
                            span: label_span,
                        });
                    }
                }
                other => return Err(self.err(format!("unexpected token {other:?} in body"))),
            }
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(PolicySpec {
            kind,
            name,
            params,
            tiers,
            regions,
            events,
        })
    }

    /// `{ key (:|=) (value | { ... }) , ... }` — nested blocks become tiers.
    fn attr_block(&mut self) -> Result<(BTreeMap<String, Expr>, Vec<TierDecl>), PolicyError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut attrs = BTreeMap::new();
        let mut nested = Vec::new();
        loop {
            if self.eat(&Tok::RBrace) {
                break;
            }
            let (key, key_span) = self.spanned_ident("attribute key")?;
            if !self.eat(&Tok::Colon) && !self.eat(&Tok::Assign) {
                return Err(self.err(format!("expected ':' or '=' after attribute '{key}'")));
            }
            if self.peek() == Some(&Tok::LBrace) {
                let (tattrs, deeper) = self.attr_block()?;
                if !deeper.is_empty() {
                    return Err(PolicyError::at_span(
                        key_span,
                        "attribute blocks nest at most one level",
                    ));
                }
                nested.push(TierDecl {
                    label: key,
                    attrs: tattrs,
                    span: key_span,
                });
            } else {
                let value = self.expr()?;
                attrs.insert(key, value);
            }
            if !self.eat(&Tok::Comma) {
                self.expect(&Tok::RBrace, "'}' or ','")?;
                break;
            }
        }
        Ok((attrs, nested))
    }

    fn event_rule(&mut self) -> Result<EventRule, PolicyError> {
        let (kw, start) = self.spanned_ident("'event'")?;
        debug_assert_eq!(kw, "event");
        self.expect(&Tok::LParen, "'('")?;
        let event = self.expr()?;
        self.expect(&Tok::RParen, "')'")?;
        let header = start.to(self.prev_span());
        self.expect(&Tok::Colon, "':'")?;
        let resp = self.ident("'response'")?;
        if resp != "response" {
            return Err(PolicyError::at_span(
                self.prev_span(),
                format!("expected 'response', found '{resp}'"),
            ));
        }
        self.expect(&Tok::LBrace, "'{'")?;
        let body = self.stmts_until_rbrace()?;
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(EventRule {
            event,
            body,
            span: header,
        })
    }

    /// Statements up to (not consuming) the enclosing `}`.
    fn stmts_until_rbrace(&mut self) -> Result<Vec<Stmt>, PolicyError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end of input in response body")),
                Some(Tok::RBrace) => return Ok(stmts),
                Some(Tok::Ident(id)) if id == "else" => return Ok(stmts),
                _ => stmts.push(self.stmt()?),
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt, PolicyError> {
        match self.peek() {
            Some(Tok::Ident(id)) if id == "if" => self.if_stmt(),
            Some(Tok::Ident(_)) => {
                // Either `name(args)` (call) or `a.b.c = expr` (assignment).
                let (first, start) = self.spanned_ident("statement")?;
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1; // consume '('
                    let mut args = Vec::new();
                    while self.peek() != Some(&Tok::RParen) {
                        let key = self.ident("argument name")?;
                        self.expect(&Tok::Colon, "':'")?;
                        let value = self.expr()?;
                        args.push((key, value));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen, "')'")?;
                    let span = start.to(self.prev_span());
                    self.eat(&Tok::Semi);
                    Ok(Stmt::Call {
                        name: first,
                        args,
                        span,
                    })
                } else {
                    let mut target = vec![first];
                    while self.eat(&Tok::Dot) {
                        target.push(self.ident("path segment")?);
                    }
                    self.expect(&Tok::Assign, "'='")?;
                    let value = self.expr()?;
                    let span = start.to(self.prev_span());
                    self.eat(&Tok::Semi);
                    Ok(Stmt::Assign {
                        target,
                        value,
                        span,
                    })
                }
            }
            other => Err(self.err(format!("unexpected token {other:?} in statement"))),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, PolicyError> {
        self.enter()?;
        let r = self.if_stmt_inner();
        self.depth -= 1;
        r
    }

    fn if_stmt_inner(&mut self) -> Result<Stmt, PolicyError> {
        let (kw, start) = self.spanned_ident("'if'")?;
        debug_assert_eq!(kw, "if");
        self.expect(&Tok::LParen, "'('")?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen, "')'")?;
        let header = start.to(self.prev_span());

        let then = self.branch_body()?;
        let mut otherwise = Vec::new();
        if let Some(Tok::Ident(id)) = self.peek() {
            if id == "else" {
                self.pos += 1;
                if let Some(Tok::Ident(id2)) = self.peek() {
                    if id2 == "if" {
                        // else-if chain.
                        otherwise.push(self.if_stmt()?);
                        return Ok(Stmt::If {
                            cond,
                            then,
                            otherwise,
                            span: header,
                        });
                    }
                }
                otherwise = self.branch_body()?;
            }
        }
        Ok(Stmt::If {
            cond,
            then,
            otherwise,
            span: header,
        })
    }

    /// An if/else branch: `{ stmts }` or brace-less statements running to
    /// the next `else` or the end of the enclosing block.
    fn branch_body(&mut self) -> Result<Vec<Stmt>, PolicyError> {
        if self.eat(&Tok::LBrace) {
            let stmts = self.stmts_until_rbrace()?;
            self.expect(&Tok::RBrace, "'}'")?;
            Ok(stmts)
        } else {
            self.stmts_until_rbrace()
        }
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, PolicyError> {
        self.enter()?;
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> Result<Expr, PolicyError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, PolicyError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, PolicyError> {
        let lhs = self.primary()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(BinOp::Eq),
            // The figures use a bare '=' in conditions (`event(time=t)`).
            Some(Tok::Assign) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.primary()?;
            Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn primary(&mut self) -> Result<Expr, PolicyError> {
        match self.next()? {
            Tok::Num { value, unit } => {
                // Merge a spaced unit word: `800 ms`, `30 seconds`.
                if unit.is_none() {
                    if let Some(Tok::Ident(word)) = self.peek() {
                        if let Some(u) = Unit::parse(word) {
                            self.pos += 1;
                            return Ok(Expr::Num {
                                value,
                                unit: Some(u),
                            });
                        }
                    }
                }
                Ok(Expr::Num { value, unit })
            }
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(first) => match first.as_str() {
                "True" | "true" => Ok(Expr::Bool(true)),
                "False" | "false" => Ok(Expr::Bool(false)),
                _ => {
                    let mut path = vec![first];
                    while self.eat(&Tok::Dot) {
                        path.push(self.ident("path segment")?);
                    }
                    Ok(Expr::Path(path))
                }
            },
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            other => Err(PolicyError::at_span(
                self.prev_span(),
                format!("unexpected token {other:?} in expression"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_tiera_spec() {
        let spec = parse(
            "Tiera Simple() {
                tier1: {name: Memcached, size: 5G};
                event(insert.into) : response {
                    store(what:insert.object, to:tier1);
                }
            }",
        )
        .unwrap();
        assert_eq!(spec.kind, SpecKind::Tiera);
        assert_eq!(spec.name, "Simple");
        assert_eq!(spec.tiers.len(), 1);
        assert_eq!(spec.tiers[0].label, "tier1");
        assert_eq!(
            spec.tiers[0].attr("name").unwrap().as_ident(),
            Some("Memcached")
        );
        assert_eq!(spec.events.len(), 1);
        match &spec.events[0].body[0] {
            Stmt::Call { name, args, .. } => {
                assert_eq!(name, "store");
                assert_eq!(args.len(), 2);
                assert_eq!(args[0].0, "what");
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn parse_params_and_timer_event() {
        let spec = parse(
            "Tiera WriteBack(time t) {
                tier1: {name: Memcached, size: 5G};
                event(time=t) : response {
                    copy(what: object.location == tier1 && object.dirty == true, to:tier2);
                }
            }",
        )
        .unwrap();
        assert_eq!(spec.params.len(), 1);
        assert_eq!(spec.params[0].ty, "time");
        assert_eq!(spec.params[0].name, "t");
        // `time=t` parses as equality comparison.
        match &spec.events[0].event {
            Expr::Binary {
                op: BinOp::Eq, lhs, ..
            } => {
                assert_eq!(lhs.as_ident(), Some("time"));
            }
            other => panic!("{other:?}"),
        }
        // The `what:` argument is a conjunction.
        match &spec.events[0].body[0] {
            Stmt::Call { args, .. } => match &args[0].1 {
                Expr::Binary { op: BinOp::And, .. } => {}
                other => panic!("expected &&, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_region_decl_with_nested_tiers() {
        let spec = parse(
            "Wiera G() {
                Region1 = {name:LowLatencyInstance, region:US-West, primary:True,
                    tier1 = {name:LocalMemory, size=5G},
                    tier2 = {name:LocalDisk, size=5G} }
                event(insert.into) : response {
                    store(what:insert.object, to:local_instance)
                }
            }",
        )
        .unwrap();
        assert_eq!(spec.kind, SpecKind::Wiera);
        assert_eq!(spec.regions.len(), 1);
        let r = &spec.regions[0];
        assert_eq!(r.label, "Region1");
        assert_eq!(r.attr("region").unwrap().as_ident(), Some("US-West"));
        assert_eq!(r.attr("primary").unwrap().as_bool(), Some(true));
        assert_eq!(r.tiers.len(), 2);
        assert_eq!(
            r.tiers[1].attr("name").unwrap().as_ident(),
            Some("LocalDisk")
        );
    }

    #[test]
    fn parse_braceless_if_else() {
        let spec = parse(
            "Wiera PB() {
                event(insert.into) : response {
                    if(local_instance.isPrimary == True)
                        store(what:insert.object, to:local_instance)
                        copy(what:insert.object, to:all_regions)
                    else
                        forward(what:insert.object, to:primary_instance)
                }
            }",
        )
        .unwrap();
        match &spec.events[0].body[0] {
            Stmt::If {
                then, otherwise, ..
            } => {
                assert_eq!(then.len(), 2);
                assert_eq!(otherwise.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_else_if_chain() {
        let spec = parse(
            "Wiera Dyn() {
                event(threshold.type == put) : response {
                    if(threshold.latency > 800 ms && threshold.period > 30 seconds)
                        change_policy(what:consistency, to:EventualConsistency);
                    else if (threshold.latency <= 800 ms && threshold.period > 30 seconds)
                        change_policy(what:consistency, to:MultiPrimariesConsistency);
                }
            }",
        )
        .unwrap();
        match &spec.events[0].body[0] {
            Stmt::If {
                then,
                otherwise,
                cond,
                ..
            } => {
                assert_eq!(then.len(), 1);
                assert_eq!(otherwise.len(), 1);
                assert!(matches!(otherwise[0], Stmt::If { .. }));
                // 800 ms merged into a single unit-carrying literal.
                match cond {
                    Expr::Binary {
                        op: BinOp::And,
                        lhs,
                        ..
                    } => match lhs.as_ref() {
                        Expr::Binary { rhs, .. } => {
                            assert_eq!(rhs.as_num(), Some((800.0, Some(Unit::Millis))));
                        }
                        other => panic!("{other:?}"),
                    },
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_assignment_statement() {
        let spec = parse(
            "Tiera T() {
                event(insert.into) : response {
                    insert.object.dirty = true;
                    store(what:insert.object, to:tier1);
                }
            }",
        )
        .unwrap();
        match &spec.events[0].body[0] {
            Stmt::Assign { target, value, .. } => {
                assert_eq!(target, &["insert", "object", "dirty"]);
                assert_eq!(value.as_bool(), Some(true));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_percent_threshold_event() {
        let spec = parse(
            "Tiera T() {
                event(tier2.filled == 50%) : response {
                    copy(what:object.location == tier2, to:tier3, bandwidth:40KB/s);
                }
            }",
        )
        .unwrap();
        match &spec.events[0].event {
            Expr::Binary {
                op: BinOp::Eq, rhs, ..
            } => {
                assert_eq!(rhs.as_num(), Some((50.0, Some(Unit::Percent))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("Tiera {").is_err());
        assert!(parse("Frobnicate X() {}").is_err());
        assert!(parse("Tiera X() { tier1: }").is_err());
        assert!(parse("Tiera X() { event() response {} }").is_err());
    }

    #[test]
    fn error_reports_line() {
        let err = parse("Tiera X() {\n  tier1: }\n}").unwrap_err();
        // Reported at or just past the offending token.
        assert!(matches!(err.line, Some(2) | Some(3)), "{err}");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let mut src = String::from("Tiera X() { event(insert.into) : response { if (");
        src.push_str(&"(".repeat(4096));
        src.push('a');
        src.push_str(&")".repeat(4096));
        src.push_str(") store(what:insert.object, to:tier1); } }");
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
    }

    #[test]
    fn statements_and_rules_carry_spans() {
        let src = "Tiera S() {\n  tier1: {name: M, size: 5G};\n  event(insert.into) : response {\n    store(what:insert.object, to:tier1);\n  }\n}";
        let spec = parse(src).unwrap();
        assert_eq!(spec.tiers[0].span.line, 2);
        assert_eq!(spec.events[0].span.line, 3);
        let stmt_span = spec.events[0].body[0].span();
        assert_eq!(stmt_span.line, 4);
        assert!(stmt_span.len() > 10, "call span covers the whole call");
    }

    #[test]
    fn pretty_print_roundtrip() {
        let src = "Wiera PB() {
            Region1 = {name:LowLatencyInstance, region:US-West, primary:True,
                tier1 = {name:LocalMemory, size=5G}}
            event(insert.into) : response {
                if(local_instance.isPrimary == True)
                    store(what:insert.object, to:local_instance)
                else
                    forward(what:insert.object, to:primary_instance)
            }
        }";
        let spec = parse(src).unwrap();
        let printed = spec.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(spec, reparsed);
    }
}
