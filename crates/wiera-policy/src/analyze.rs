//! Static semantic analysis of policy specifications.
//!
//! [`analyze`] runs a series of passes over a parsed [`PolicySpec`] and
//! returns every finding as a [`Diagnostic`] with a stable `WP###` code
//! (see [`crate::diag::Code`] for the catalog):
//!
//! 1. **Declarations** — duplicate tier labels per scope (WP001), duplicate
//!    region labels (WP011), tier attribute unit sanity (WP009).
//! 2. **Parameters** — events referencing undefined parameters (WP003),
//!    parameters that are never used (WP004).
//! 3. **Events** — unrecognized event shapes (WP017), duplicate handlers
//!    for the same event (WP005), infeasible thresholds (WP006, WP009).
//! 4. **Responses** — unknown response names (WP012), missing required
//!    arguments (WP013), `change_policy` to unknown policies (WP014),
//!    constant branch conditions (WP015), bandwidth/grow unit sanity
//!    (WP009), archival-class tiers on latency-sensitive paths (WP008).
//! 5. **References & flow** — undeclared tier references (WP002), flows
//!    into tiers smaller than their source (WP007), rules reading tiers no
//!    data-flow path populates (WP016).
//! 6. **Consistency** — insert rules whose shapes deduce to conflicting
//!    consistency models (WP010).
//!
//! The analyzer never panics: malformed specifications produce diagnostics
//! (or, for text that does not parse, [`analyze_source`] converts the
//! parse error into a `WP000` diagnostic).

use crate::ast::{BinOp, EventRule, Expr, PolicySpec, SpecKind, Stmt};
use crate::compile::{deduce_consistency, lower_with_params, ConsistencyModel, EventKind};
use crate::diag::{sort_diagnostics, Code, Diagnostic, Span};
use crate::units::{self, Unit};
use std::collections::{BTreeMap, BTreeSet};

/// Analyze policy source text: parse errors become a single `WP000`
/// diagnostic; otherwise all analyzer passes run on the parsed spec.
pub fn analyze_source(src: &str) -> (Option<PolicySpec>, Vec<Diagnostic>) {
    match crate::parser::parse(src) {
        Ok(spec) => {
            let diags = analyze(&spec);
            (Some(spec), diags)
        }
        Err(e) => (None, vec![e.to_diagnostic()]),
    }
}

/// Run every analyzer pass over a parsed specification. Findings come back
/// sorted in source order.
pub fn analyze(spec: &PolicySpec) -> Vec<Diagnostic> {
    let mut a = Analyzer {
        spec,
        tiers: tier_table(spec),
        diags: Vec::new(),
    };
    a.check_declarations();
    a.check_parameters();
    a.check_events_and_responses();
    a.check_flow();
    a.check_consistency();
    sort_diagnostics(&mut a.diags);
    a.diags
}

/// Tier names a policy can legally reference: declared local tiers for a
/// Tiera spec, the union of all region tier stacks for a Wiera spec.
#[derive(Debug, Default)]
struct TierTable {
    /// label → (size in bytes, lowercased kind name). First declaration
    /// wins when regions disagree.
    by_label: BTreeMap<String, (u64, String)>,
}

impl TierTable {
    fn declares(&self, label: &str) -> bool {
        self.by_label.contains_key(label)
    }

    fn is_empty(&self) -> bool {
        self.by_label.is_empty()
    }

    fn size(&self, label: &str) -> Option<u64> {
        self.by_label.get(label).map(|(s, _)| *s)
    }

    fn kind(&self, label: &str) -> Option<&str> {
        self.by_label.get(label).map(|(_, k)| k.as_str())
    }
}

fn tier_attrs(attrs: &BTreeMap<String, Expr>) -> (u64, String) {
    let size = attrs
        .get("size")
        .and_then(Expr::as_num)
        .and_then(|(v, u)| match u {
            Some(u) => units::to_bytes(v, u),
            None => Some(v as u64),
        })
        .unwrap_or(0);
    let kind = attrs
        .get("name")
        .and_then(Expr::as_ident)
        .unwrap_or("")
        .to_ascii_lowercase();
    (size, kind)
}

fn tier_table(spec: &PolicySpec) -> TierTable {
    let mut t = TierTable::default();
    for decl in &spec.tiers {
        t.by_label
            .entry(decl.label.clone())
            .or_insert_with(|| tier_attrs(&decl.attrs));
    }
    for region in &spec.regions {
        for decl in &region.tiers {
            t.by_label
                .entry(decl.label.clone())
                .or_insert_with(|| tier_attrs(&decl.attrs));
        }
    }
    t
}

/// Tier kind names that are archival-class (high read latency — Glacier
/// and friends). Matched case-insensitively against the tier's `name:`.
const ARCHIVAL_KINDS: [&str; 5] = [
    "glacier",
    "s3-glacier",
    "s3glacier",
    "cheapestarchival",
    "archival",
];

/// Responses the engines implement, post `chage_policy` typo
/// normalization.
const KNOWN_RESPONSES: [&str; 13] = [
    "store",
    "copy",
    "move",
    "delete",
    "forward",
    "queue",
    "lock",
    "release",
    "change_policy",
    "compress",
    "encrypt",
    "grow",
    "chage_policy", // figure typo, normalized during lowering
];

fn normalize_response(name: &str) -> &str {
    if name == "chage_policy" {
        "change_policy"
    } else {
        name
    }
}

/// Event shapes the engines recognize, mirrored from the compiler.
enum EventShape {
    Insert {
        into: Option<(String, Span)>,
    },
    Timer {
        period: TimerPeriod,
    },
    Filled {
        tier: String,
        value: f64,
        unit: Option<Unit>,
    },
    Cold {
        value: f64,
        unit: Option<Unit>,
    },
    OpLatency,
    Requests,
    Unknown,
}

enum TimerPeriod {
    Literal { value: f64, unit: Option<Unit> },
    Param(String),
    Bad,
}

fn classify_event(e: &Expr, span: Span) -> EventShape {
    match e {
        Expr::Path(p) if p == &["insert".to_string(), "into".to_string()] => {
            EventShape::Insert { into: None }
        }
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => {
            let lpath = lhs.as_path().map(|p| p.join("."));
            match lpath.as_deref() {
                Some("insert.into") => match rhs.as_ident() {
                    Some(t) => EventShape::Insert {
                        into: Some((t.to_string(), span)),
                    },
                    None => EventShape::Unknown,
                },
                Some("time") => match rhs.as_ref() {
                    Expr::Num { value, unit } => EventShape::Timer {
                        period: TimerPeriod::Literal {
                            value: *value,
                            unit: *unit,
                        },
                    },
                    Expr::Path(p) if p.len() == 1 => EventShape::Timer {
                        period: TimerPeriod::Param(p[0].clone()),
                    },
                    _ => EventShape::Timer {
                        period: TimerPeriod::Bad,
                    },
                },
                Some("threshold.type") => match rhs.as_ident() {
                    Some("put") | Some("get") => EventShape::OpLatency,
                    Some("primary") => EventShape::Requests,
                    _ => EventShape::Unknown,
                },
                Some(path) if path.ends_with(".filled") => match rhs.as_num() {
                    Some((v, u)) => EventShape::Filled {
                        tier: path.trim_end_matches(".filled").to_string(),
                        value: v,
                        unit: u,
                    },
                    None => EventShape::Unknown,
                },
                _ => EventShape::Unknown,
            }
        }
        Expr::Binary {
            op: BinOp::Gt,
            lhs,
            rhs,
        } => {
            let lpath = lhs.as_path().map(|p| p.join("."));
            if lpath.as_deref() == Some("object.lastAccessedTime") {
                match rhs.as_num() {
                    Some((v, u)) => EventShape::Cold { value: v, unit: u },
                    None => EventShape::Unknown,
                }
            } else {
                EventShape::Unknown
            }
        }
        _ => EventShape::Unknown,
    }
}

/// Is this rule's event a latency-sensitive path (in the request path of a
/// put/get, per §3.2.3)?
fn latency_sensitive(e: &Expr, span: Span) -> bool {
    matches!(
        classify_event(e, span),
        EventShape::Insert { .. } | EventShape::OpLatency
    )
}

/// A tier mentioned by a rule: where and how.
struct TierRef {
    label: String,
    span: Span,
}

struct Analyzer<'a> {
    spec: &'a PolicySpec,
    tiers: TierTable,
    diags: Vec<Diagnostic>,
}

impl<'a> Analyzer<'a> {
    fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    // ---- pass 1: declarations ---------------------------------------------

    fn check_declarations(&mut self) {
        self.check_tier_scope(&self.spec.tiers.iter().collect::<Vec<_>>(), "specification");
        let mut region_seen: BTreeMap<&str, Span> = BTreeMap::new();
        for region in &self.spec.regions {
            match region_seen.get(region.label.as_str()) {
                Some(first) => {
                    let d = Diagnostic::deny(
                        Code::Wp011,
                        format!("duplicate region declaration '{}'", region.label),
                    )
                    .at(region.span)
                    .with_note(format!("first declared at line {}", first.line));
                    self.push(d);
                }
                None => {
                    region_seen.insert(&region.label, region.span);
                }
            }
            self.check_tier_scope(
                &region.tiers.iter().collect::<Vec<_>>(),
                &format!("region '{}'", region.label),
            );
        }
    }

    fn check_tier_scope(&mut self, decls: &[&crate::ast::TierDecl], scope: &str) {
        let mut seen: BTreeMap<String, Span> = BTreeMap::new();
        let mut found = Vec::new();
        for decl in decls {
            match seen.get(&decl.label) {
                Some(first) => {
                    found.push(
                        Diagnostic::deny(
                            Code::Wp001,
                            format!("duplicate tier declaration '{}' in {scope}", decl.label),
                        )
                        .at(decl.span)
                        .with_note(format!("first declared at line {}", first.line)),
                    );
                }
                None => {
                    seen.insert(decl.label.clone(), decl.span);
                }
            }
            if let Some((_, Some(u))) = decl.attrs.get("size").and_then(Expr::as_num) {
                if !u.is_size() {
                    found.push(
                        Diagnostic::deny(
                            Code::Wp009,
                            format!(
                                "tier '{}' declares size with non-size unit '{u}'",
                                decl.label
                            ),
                        )
                        .at(decl.span),
                    );
                }
            }
        }
        for d in found {
            self.push(d);
        }
    }

    // ---- pass 2: parameters -----------------------------------------------

    fn check_parameters(&mut self) {
        let declared: BTreeSet<&str> = self.spec.params.iter().map(|p| p.name.as_str()).collect();
        let mut used: BTreeSet<String> = BTreeSet::new();
        for rule in &self.spec.events {
            collect_single_idents(&rule.event, &mut used);
            for stmt in &rule.body {
                collect_stmt_idents(stmt, &mut used);
            }
        }
        for rule in &self.spec.events {
            if let EventShape::Timer {
                period: TimerPeriod::Param(name),
            } = classify_event(&rule.event, rule.span)
            {
                if !declared.contains(name.as_str()) {
                    let d = Diagnostic::deny(
                        Code::Wp003,
                        format!("timer event references undefined parameter '{name}'"),
                    )
                    .at(rule.span)
                    .with_note("declare it in the specification header, e.g. `(time t)`");
                    self.push(d);
                }
            }
        }
        let unused: Vec<Diagnostic> = self
            .spec
            .params
            .iter()
            .filter(|p| !used.contains(&p.name))
            .map(|p| {
                Diagnostic::note(
                    Code::Wp004,
                    format!("parameter '{} {}' is never used", p.ty, p.name),
                )
                .at(p.span)
            })
            .collect();
        for d in unused {
            self.push(d);
        }
    }

    // ---- passes 3+4: events and responses ---------------------------------

    fn check_events_and_responses(&mut self) {
        let mut handler_seen: BTreeMap<String, Span> = BTreeMap::new();
        for rule in &self.spec.events {
            let key = rule.event.to_string();
            match handler_seen.get(&key) {
                Some(first) => {
                    let d = Diagnostic::warn(
                        Code::Wp005,
                        format!("duplicate handler for event '{key}'"),
                    )
                    .at(rule.span)
                    .with_note(format!(
                        "first handler at line {}; both responses run on this event",
                        first.line
                    ));
                    self.push(d);
                }
                None => {
                    handler_seen.insert(key, rule.span);
                }
            }
            self.check_event_shape(rule);
            let sensitive = latency_sensitive(&rule.event, rule.span);
            for stmt in &rule.body {
                self.check_stmt(stmt, sensitive);
            }
        }
    }

    fn check_event_shape(&mut self, rule: &EventRule) {
        match classify_event(&rule.event, rule.span) {
            EventShape::Unknown => {
                let d = Diagnostic::deny(
                    Code::Wp017,
                    format!("unrecognized event shape '{}'", rule.event),
                )
                .at(rule.span)
                .with_note(
                    "recognized events: insert.into[==tier], time=<t>, tierX.filled==N%, \
                     object.lastAccessedTime><duration>, threshold.type==put|get|primary",
                );
                self.push(d);
            }
            EventShape::Timer { period } => match period {
                TimerPeriod::Literal { value, unit } => {
                    if let Some(u) = unit {
                        if !u.is_duration() {
                            self.push(
                                Diagnostic::deny(
                                    Code::Wp009,
                                    format!("timer period has non-duration unit '{u}'"),
                                )
                                .at(rule.span),
                            );
                            return;
                        }
                    }
                    let ms = unit
                        .and_then(|u| units::to_millis(value, u))
                        .unwrap_or(value);
                    if ms <= 0.0 {
                        self.push(
                            Diagnostic::warn(
                                Code::Wp006,
                                "timer period is not positive; rule can never fire".to_string(),
                            )
                            .at(rule.span),
                        );
                    }
                }
                TimerPeriod::Param(_) | TimerPeriod::Bad => {}
            },
            EventShape::Filled { tier, value, unit } => {
                self.check_tier_ref(&TierRef {
                    label: tier,
                    span: rule.span,
                });
                if let Some(u) = unit {
                    if u != Unit::Percent {
                        self.push(
                            Diagnostic::deny(
                                Code::Wp009,
                                format!("filled threshold has non-percent unit '{u}'"),
                            )
                            .at(rule.span),
                        );
                        return;
                    }
                }
                let fraction = match unit {
                    Some(u) => units::to_fraction(value, u).unwrap_or(value),
                    None => value,
                };
                if fraction <= 0.0 || fraction > 1.0 {
                    self.push(
                        Diagnostic::warn(
                            Code::Wp006,
                            format!(
                                "fill threshold {:.0}% can never be reached; rule is dead",
                                fraction * 100.0
                            ),
                        )
                        .at(rule.span),
                    );
                }
            }
            EventShape::Cold { value, unit } => {
                if let Some(u) = unit {
                    if !u.is_duration() {
                        self.push(
                            Diagnostic::deny(
                                Code::Wp009,
                                format!("cold-data threshold has non-duration unit '{u}'"),
                            )
                            .at(rule.span),
                        );
                        return;
                    }
                }
                if value <= 0.0 {
                    self.push(
                        Diagnostic::warn(
                            Code::Wp006,
                            "cold-data threshold is not positive; rule matches everything"
                                .to_string(),
                        )
                        .at(rule.span),
                    );
                }
            }
            EventShape::Insert { into } => {
                if let Some((tier, span)) = into {
                    self.check_tier_ref(&TierRef { label: tier, span });
                }
            }
            EventShape::OpLatency | EventShape::Requests => {}
        }
    }

    fn check_stmt(&mut self, stmt: &Stmt, sensitive: bool) {
        match stmt {
            Stmt::Assign { .. } => {}
            Stmt::If {
                cond,
                then,
                otherwise,
                span,
            } => {
                self.check_condition(cond, *span);
                if let Some(why) = constant_condition(cond) {
                    self.push(
                        Diagnostic::warn(
                            Code::Wp015,
                            format!("branch condition is constant: {why}"),
                        )
                        .at(*span),
                    );
                }
                for s in then.iter().chain(otherwise) {
                    self.check_stmt(s, sensitive);
                }
            }
            Stmt::Call { name, args, span } => self.check_call(name, args, *span, sensitive),
        }
    }

    fn check_condition(&mut self, cond: &Expr, span: Span) {
        for tier in condition_tier_refs(cond) {
            self.check_tier_ref(&TierRef { label: tier, span });
        }
    }

    fn check_call(&mut self, name: &str, args: &[(String, Expr)], span: Span, sensitive: bool) {
        if !KNOWN_RESPONSES.contains(&name) {
            let d = Diagnostic::deny(Code::Wp012, format!("unknown response '{name}'"))
                .at(span)
                .with_note(format!(
                    "known responses: {}",
                    KNOWN_RESPONSES[..KNOWN_RESPONSES.len() - 1].join(", ")
                ));
            self.push(d);
            return;
        }
        let norm = normalize_response(name);
        let get = |key: &str| args.iter().find(|(k, _)| k == key).map(|(_, v)| v);

        let required: &[&str] = match norm {
            "store" | "copy" | "move" | "forward" | "queue" | "change_policy" => &["what", "to"],
            "delete" | "lock" | "release" | "compress" | "encrypt" => &["what"],
            "grow" => &["what", "by"],
            _ => &[],
        };
        for req in required {
            if get(req).is_none() {
                self.push(
                    Diagnostic::deny(
                        Code::Wp013,
                        format!("{norm}() is missing required argument '{req}:'"),
                    )
                    .at(span),
                );
            }
        }

        // Tier references in `what:` conditions and tier-valued arguments.
        if let Some(what) = get("what") {
            if matches!(what, Expr::Binary { .. }) {
                self.check_condition(what, span);
            }
            if norm == "grow" {
                if let Some(t) = what.as_ident() {
                    self.check_tier_ref(&TierRef {
                        label: t.to_string(),
                        span,
                    });
                }
            }
        }
        if norm != "change_policy" {
            if let Some(t) = get("to").and_then(Expr::as_ident) {
                if t.to_ascii_lowercase().starts_with("tier") {
                    self.check_tier_ref(&TierRef {
                        label: t.to_string(),
                        span,
                    });
                }
                if sensitive && matches!(norm, "store" | "copy" | "forward") {
                    if let Some(kind) = self.tiers.kind(t) {
                        if ARCHIVAL_KINDS.contains(&kind) {
                            self.push(
                                Diagnostic::warn(
                                    Code::Wp008,
                                    format!(
                                        "archival-class tier '{t}' ({kind}) targeted on a \
                                         latency-sensitive path"
                                    ),
                                )
                                .at(span)
                                .with_note(
                                    "archival stores have minutes-to-hours retrieval latency; \
                                     use a timer or cold-data rule instead",
                                ),
                            );
                        }
                    }
                }
            }
        }

        // change_policy(what:consistency, to:<policy>) must name a policy
        // that exists (a canned policy or this specification itself).
        if norm == "change_policy" {
            let what_is_consistency = get("what")
                .and_then(Expr::as_ident)
                .is_some_and(|w| w == "consistency");
            if what_is_consistency {
                if let Some(to) = get("to").and_then(Expr::as_ident) {
                    if crate::canned::by_name(to).is_none() && to != self.spec.name {
                        self.push(
                            Diagnostic::warn(
                                Code::Wp014,
                                format!("change_policy targets unknown policy '{to}'"),
                            )
                            .at(span)
                            .with_note(
                                "not a canned policy or this specification; the switch will \
                                 fail at run time unless the coordinator registered it",
                            ),
                        );
                    }
                }
            }
        }

        // Bandwidth and grow-size unit sanity.
        if let Some(bw) = get("bandwidth") {
            if let Some((v, u)) = bw.as_num() {
                let bad_unit = u.is_some_and(|u| !u.is_rate());
                if bad_unit {
                    self.push(
                        Diagnostic::deny(
                            Code::Wp009,
                            format!(
                                "bandwidth has non-rate unit '{}'",
                                u.map(|u| u.to_string()).unwrap_or_default()
                            ),
                        )
                        .at(span),
                    );
                } else if v <= 0.0 {
                    self.push(
                        Diagnostic::deny(
                            Code::Wp009,
                            "bandwidth limit must be positive".to_string(),
                        )
                        .at(span),
                    );
                }
            }
        }
        if norm == "grow" {
            if let Some((_, Some(u))) = get("by").and_then(Expr::as_num) {
                if !u.is_size() {
                    self.push(
                        Diagnostic::deny(
                            Code::Wp009,
                            format!("grow() 'by' has non-size unit '{u}'"),
                        )
                        .at(span),
                    );
                }
            }
        }
    }

    fn check_tier_ref(&mut self, r: &TierRef) {
        // A spec that declares no tiers at all delegates layout to the
        // embedder (common in programmatic use); only check references when
        // the spec itself declares the layout.
        if self.tiers.is_empty() || self.tiers.declares(&r.label) {
            return;
        }
        let declared: Vec<&str> = self.tiers.by_label.keys().map(String::as_str).collect();
        let d = Diagnostic::deny(
            Code::Wp002,
            format!("reference to undeclared tier '{}'", r.label),
        )
        .at(r.span)
        .with_note(format!("declared tiers: {}", declared.join(", ")));
        self.push(d);
    }

    // ---- pass 5: data flow -------------------------------------------------

    /// Build the tier-to-tier data-flow graph and check (a) flows into
    /// strictly smaller bounded tiers (WP007) and (b) rules that read a
    /// tier no flow path populates (WP016).
    fn check_flow(&mut self) {
        if self.tiers.is_empty() {
            return;
        }
        let first_tiers = self.first_tiers();
        let mut populated: BTreeSet<String> = BTreeSet::new();
        let mut edges: Vec<(String, String)> = Vec::new();
        // (label, span) pairs of tiers a rule observes.
        let mut reads: Vec<(String, Span)> = Vec::new();
        let mut has_insert = false;
        let mut flow_warns = Vec::new();

        for rule in &self.spec.events {
            let shape = classify_event(&rule.event, rule.span);
            match &shape {
                EventShape::Insert { into } => {
                    has_insert = true;
                    if let Some((tier, _)) = into {
                        populated.insert(tier.clone());
                    }
                }
                EventShape::Filled { tier, .. } => {
                    reads.push((tier.clone(), rule.span));
                }
                _ => {}
            }
            let is_insert = matches!(shape, EventShape::Insert { .. });
            for_each_call(&rule.body, &mut |name, args, span| {
                let norm = normalize_response(name);
                if !matches!(norm, "store" | "copy" | "move" | "queue" | "forward") {
                    return;
                }
                let get = |key: &str| args.iter().find(|(k, _)| k == key).map(|(_, v)| v);
                let to = get("to").and_then(Expr::as_ident);
                let what = get("what");
                let sources: Vec<String> = what.map(condition_location_refs).unwrap_or_default();
                for src in &sources {
                    reads.push((src.clone(), span));
                }
                match to {
                    Some(t) if self.tiers.declares(t) => {
                        if is_insert && sources.is_empty() {
                            // Ingest flows populate their target directly.
                            populated.insert(t.to_string());
                        }
                        for src in &sources {
                            edges.push((src.clone(), t.to_string()));
                            // WP007: bounded flow into a strictly smaller tier.
                            if let (Some(from), Some(into)) =
                                (self.tiers.size(src), self.tiers.size(t))
                            {
                                if from > 0 && into > 0 && into < from {
                                    flow_warns.push(
                                        Diagnostic::warn(
                                            Code::Wp007,
                                            format!(
                                                "flow from tier '{src}' ({from} bytes) into \
                                                 smaller tier '{t}' ({into} bytes) can overflow",
                                            ),
                                        )
                                        .at(span),
                                    );
                                }
                            }
                        }
                    }
                    Some("local_instance" | "all_regions" | "primary_instance")
                        if is_insert && sources.is_empty() =>
                    {
                        for ft in &first_tiers {
                            populated.insert(ft.clone());
                        }
                    }
                    _ => {}
                }
            });
        }
        for d in flow_warns {
            self.push(d);
        }

        // WP016 only makes sense when the policy itself defines the ingest
        // path; without an insert rule, data arrives by means the analyzer
        // cannot see.
        if !has_insert {
            return;
        }
        // Propagate reachability over copy/move edges to a fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            for (src, dst) in &edges {
                if populated.contains(src) && populated.insert(dst.clone()) {
                    changed = true;
                }
            }
        }
        let mut reported: BTreeSet<String> = BTreeSet::new();
        let mut dead_reads = Vec::new();
        for (label, span) in reads {
            if self.tiers.declares(&label)
                && !populated.contains(&label)
                && reported.insert(label.clone())
            {
                dead_reads.push(
                    Diagnostic::warn(
                        Code::Wp016,
                        format!("rule reads tier '{label}' but no data-flow path populates it"),
                    )
                    .at(span)
                    .with_note("no insert, store, copy, or move rule ever places data there"),
                );
            }
        }
        for d in dead_reads {
            self.push(d);
        }
    }

    /// Default ingest tiers: the first tier of the local stack (Tiera) or
    /// of each region's stack (Wiera) — where `to:local_instance` and
    /// `to:all_regions` place data.
    fn first_tiers(&self) -> Vec<String> {
        match self.spec.kind {
            SpecKind::Tiera => self
                .spec
                .tiers
                .first()
                .map(|t| vec![t.label.clone()])
                .unwrap_or_default(),
            SpecKind::Wiera => self
                .spec
                .regions
                .iter()
                .filter_map(|r| r.tiers.first().map(|t| t.label.clone()))
                .collect(),
        }
    }

    // ---- pass 6: consistency ----------------------------------------------

    /// Each insert rule's shape implies one of the paper's consistency
    /// protocols; two insert rules implying different protocols leave the
    /// instance in an undefined model.
    fn check_consistency(&mut self) {
        let Ok(compiled) = lower_with_params(self.spec, &BTreeMap::new()) else {
            // Lowering problems surface as their own diagnostics/errors.
            return;
        };
        let mut models: Vec<(ConsistencyModel, Span)> = Vec::new();
        for (rule, lowered) in self.spec.events.iter().zip(&compiled.rules) {
            if !matches!(lowered.event, EventKind::Insert { .. }) {
                continue;
            }
            if let Some(model) = deduce_consistency(std::slice::from_ref(lowered)) {
                models.push((model, rule.span));
            }
        }
        let mut conflicts = Vec::new();
        if let Some((first, _)) = models.first() {
            for (model, span) in &models[1..] {
                if model != first {
                    conflicts.push(
                        Diagnostic::warn(
                            Code::Wp010,
                            format!(
                                "insert rule implies consistency model {model}, but an \
                                 earlier insert rule implies {first}",
                            ),
                        )
                        .at(*span)
                        .with_note("the instance cannot satisfy both models at once"),
                    );
                }
            }
        }
        for d in conflicts {
            self.push(d);
        }
    }
}

// ---- expression walkers ----------------------------------------------------

/// Call `f(name, args, span)` for every response call in `body`, including
/// calls nested under `if`/`else`.
fn for_each_call<'s>(body: &'s [Stmt], f: &mut dyn FnMut(&'s str, &'s [(String, Expr)], Span)) {
    for stmt in body {
        match stmt {
            Stmt::Call { name, args, span } => f(name, args, *span),
            Stmt::If {
                then, otherwise, ..
            } => {
                for_each_call(then, f);
                for_each_call(otherwise, f);
            }
            Stmt::Assign { .. } => {}
        }
    }
}

/// Single-segment identifiers appearing anywhere in an expression (used
/// for parameter-usage tracking).
fn collect_single_idents(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Path(p) if p.len() == 1 => {
            out.insert(p[0].clone());
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_single_idents(lhs, out);
            collect_single_idents(rhs, out);
        }
        _ => {}
    }
}

fn collect_stmt_idents(stmt: &Stmt, out: &mut BTreeSet<String>) {
    match stmt {
        Stmt::Assign { value, .. } => collect_single_idents(value, out),
        Stmt::Call { args, .. } => {
            for (_, v) in args {
                collect_single_idents(v, out);
            }
        }
        Stmt::If {
            cond,
            then,
            otherwise,
            ..
        } => {
            collect_single_idents(cond, out);
            for s in then.iter().chain(otherwise) {
                collect_stmt_idents(s, out);
            }
        }
    }
}

/// Tier labels a condition compares against: `object.location == tierX`,
/// `insert.into == tierX`, plus bare `tierX.<attr>` field references.
fn condition_tier_refs(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<String>) {
        if let Expr::Binary { op, lhs, rhs } = e {
            if matches!(op, BinOp::And | BinOp::Or) {
                walk(lhs, out);
                walk(rhs, out);
                return;
            }
            let lpath = lhs.as_path().map(|p| p.join("."));
            if matches!(
                lpath.as_deref(),
                Some("object.location") | Some("insert.into")
            ) {
                if let Some(t) = rhs.as_ident() {
                    if t.to_ascii_lowercase().starts_with("tier") {
                        out.push(t.to_string());
                    }
                }
            }
            for side in [lhs.as_ref(), rhs.as_ref()] {
                if let Some(p) = side.as_path() {
                    if p.len() > 1 && p[0].to_ascii_lowercase().starts_with("tier") {
                        out.push(p[0].clone());
                    }
                }
            }
        }
    }
    walk(e, &mut out);
    out
}

/// Tier labels a condition pins `object.location` to (data-flow sources).
fn condition_location_refs(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<String>) {
        if let Expr::Binary { op, lhs, rhs } = e {
            if matches!(op, BinOp::And | BinOp::Or) {
                walk(lhs, out);
                walk(rhs, out);
                return;
            }
            if *op == BinOp::Eq
                && lhs.as_path().map(|p| p.join(".")).as_deref() == Some("object.location")
            {
                if let Some(t) = rhs.as_ident() {
                    out.push(t.to_string());
                }
            }
        }
    }
    walk(e, &mut out);
    out
}

/// Is this condition constant? Returns a human explanation when it is.
fn constant_condition(e: &Expr) -> Option<String> {
    // Literal-vs-literal comparison anywhere in the tree.
    fn literal(e: &Expr) -> bool {
        matches!(e, Expr::Num { .. } | Expr::Bool(_) | Expr::Str(_))
    }
    fn find_folded(e: &Expr) -> Option<String> {
        match e {
            Expr::Bool(b) => Some(format!("literal {}", if *b { "True" } else { "False" })),
            Expr::Binary { op, lhs, rhs } => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    return find_folded(lhs).or_else(|| find_folded(rhs));
                }
                if literal(lhs) && literal(rhs) {
                    return Some(format!("'{lhs} {op} {rhs}' compares two literals"));
                }
                None
            }
            _ => None,
        }
    }
    if let Some(why) = find_folded(e) {
        return Some(why);
    }
    // Contradictory conjunction: the same field equal to two different
    // literals (`object.location == tier1 && object.location == tier2`).
    fn eq_pins(e: &Expr, pins: &mut Vec<(String, String)>) -> bool {
        match e {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => eq_pins(lhs, pins) && eq_pins(rhs, pins),
            Expr::Binary {
                op: BinOp::Eq,
                lhs,
                rhs,
            } => {
                if let (Some(field), Some(v)) = (lhs.as_path(), rhs.as_ident()) {
                    pins.push((field.join("."), v.to_string()));
                }
                true
            }
            // Or-branches and other comparisons make the analysis
            // inconclusive; bail out rather than guess.
            Expr::Binary { op: BinOp::Or, .. } => false,
            _ => true,
        }
    }
    let mut pins = Vec::new();
    if eq_pins(e, &mut pins) {
        for (i, (field, value)) in pins.iter().enumerate() {
            for (field2, value2) in &pins[i + 1..] {
                if field == field2 && value != value2 {
                    return Some(format!(
                        "'{field} == {value}' contradicts '{field2} == {value2}'; the \
                         condition is always false"
                    ));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        let (_, diags) = analyze_source(src);
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_policy_has_no_findings() {
        assert!(codes(crate::canned::LOW_LATENCY_INSTANCE).is_empty());
    }

    #[test]
    fn all_canned_policies_are_deny_and_warn_clean() {
        for (id, _, src) in crate::canned::ALL {
            let (_, diags) = analyze_source(src);
            let gating: Vec<_> = diags
                .iter()
                .filter(|d| d.severity != crate::diag::Severity::Note)
                .collect();
            assert!(gating.is_empty(), "{id}: {gating:?}");
        }
    }

    #[test]
    fn duplicate_tier_is_wp001() {
        let c = codes(
            "Tiera T() {
                tier1: {name: Memcached, size: 5G};
                tier1: {name: EBS, size: 5G};
            }",
        );
        assert_eq!(c, vec!["WP001"]);
    }

    #[test]
    fn undeclared_tier_is_wp002() {
        let c = codes(
            "Tiera T() {
                tier1: {name: Memcached, size: 5G};
                event(insert.into) : response { store(what:insert.object, to:tier9); }
            }",
        );
        assert_eq!(c, vec!["WP002"]);
    }

    #[test]
    fn no_tier_decls_skips_wp002() {
        // Embedder-supplied layouts: references are not checkable.
        let c = codes(
            "Tiera T() {
                event(insert.into) : response { store(what:insert.object, to:tier1); }
            }",
        );
        assert!(c.is_empty(), "{c:?}");
    }

    #[test]
    fn undefined_param_is_wp003_and_unused_is_wp004() {
        let c = codes(
            "Tiera T(time unused) {
                event(time=t) : response { delete(what:object.dirty == true); }
            }",
        );
        assert_eq!(c, vec!["WP004", "WP003"]);
    }

    #[test]
    fn duplicate_handler_is_wp005() {
        let c = codes(
            "Tiera T() {
                event(insert.into) : response { delete(what:object.dirty == true); }
                event(insert.into) : response { compress(what:object.dirty == true); }
            }",
        );
        assert_eq!(c, vec!["WP005"]);
    }

    #[test]
    fn infeasible_threshold_is_wp006() {
        let c = codes(
            "Tiera T() {
                tier1: {name: Memcached, size: 5G};
                event(tier1.filled == 150%) : response { delete(what:object.dirty == true); }
            }",
        );
        assert_eq!(c, vec!["WP006"]);
    }

    #[test]
    fn shrinkflow_is_wp007_and_dead_read_is_wp016() {
        let c = codes(
            "Tiera T(time t) {
                tier1: {name: Memcached, size: 5G};
                tier2: {name: EBS, size: 1G};
                tier3: {name: S3, size: 5G};
                event(insert.into) : response { store(what:insert.object, to:tier1); }
                event(time=t) : response {
                    copy(what: object.location == tier1, to:tier2);
                    move(what: object.location == tier3, to:tier1);
                }
            }",
        );
        assert!(c.contains(&"WP007"), "{c:?}");
        assert!(c.contains(&"WP016"), "{c:?}");
    }

    #[test]
    fn archival_on_insert_path_is_wp008() {
        let c = codes(
            "Tiera T() {
                tier1: {name: Glacier, size: 50G};
                event(insert.into) : response { store(what:insert.object, to:tier1); }
            }",
        );
        assert_eq!(c, vec!["WP008"]);
    }

    #[test]
    fn unit_nonsense_is_wp009() {
        let c = codes(
            "Tiera T() {
                tier1: {name: Memcached, size: 5 seconds};
            }",
        );
        assert_eq!(c, vec!["WP009"]);
    }

    #[test]
    fn conflicting_insert_models_is_wp010() {
        let c = codes(
            "Wiera W() {
                event(insert.into) : response {
                    lock(what:insert.key)
                    store(what:insert.object, to:local_instance)
                    copy(what:insert.object, to:all_regions)
                    release(what:insert.key)
                }
                event(insert.into == tier1) : response {
                    store(what:insert.object, to:local_instance)
                    queue(what:insert.object, to:all_regions)
                }
            }",
        );
        assert!(!c.contains(&"WP005"), "{c:?}");
        assert!(c.contains(&"WP010"), "{c:?}");
    }

    #[test]
    fn duplicate_region_is_wp011() {
        let c = codes(
            "Wiera W() {
                Region1 = {name:X, region:US-West}
                Region1 = {name:Y, region:US-East}
            }",
        );
        assert_eq!(c, vec!["WP011"]);
    }

    #[test]
    fn unknown_response_is_wp012() {
        let c = codes(
            "Tiera T() {
                event(insert.into) : response { explode(what:insert.object); }
            }",
        );
        assert_eq!(c, vec!["WP012"]);
    }

    #[test]
    fn missing_arg_is_wp013() {
        let c = codes(
            "Tiera T() {
                event(insert.into) : response { store(what:insert.object); }
            }",
        );
        assert_eq!(c, vec!["WP013"]);
    }

    #[test]
    fn unknown_change_policy_target_is_wp014() {
        let c = codes(
            "Wiera W() {
                event(threshold.type == put) : response {
                    change_policy(what:consistency, to:NoSuchPolicy);
                }
            }",
        );
        assert_eq!(c, vec!["WP014"]);
    }

    #[test]
    fn constant_condition_is_wp015() {
        let c = codes(
            "Tiera T(time t) {
                event(time=t) : response {
                    if (object.location == tier1 && object.location == tier2)
                        delete(what:object.dirty == true);
                }
            }",
        );
        assert_eq!(c, vec!["WP015"]);
    }

    #[test]
    fn unrecognized_event_is_wp017() {
        let c = codes(
            "Tiera T() {
                event(full.moon) : response { delete(what:object.dirty == true); }
            }",
        );
        assert_eq!(c, vec!["WP017"]);
    }

    #[test]
    fn parse_error_becomes_wp000() {
        let (spec, diags) = analyze_source("Tiera {");
        assert!(spec.is_none());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Wp000);
    }

    #[test]
    fn diagnostics_carry_spans() {
        let (_, diags) = analyze_source(
            "Tiera T() {\n  tier1: {name: M, size: 5G};\n  tier1: {name: N, size: 5G};\n}",
        );
        assert_eq!(diags.len(), 1);
        let span = diags[0].span.expect("WP001 carries a span");
        assert_eq!(span.line, 3);
    }

    #[test]
    fn programmatically_built_policies_are_clean() {
        let spec = crate::builder::PolicyBuilder::wiera("B")
            .region("Region1", "US-East", true, &[("tier1", "Memcached", "2G")])
            .primary_backup(true)
            .cold_data_rule(72, "tier1", "tier1")
            .build();
        let diags = analyze(&spec);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
