//! Value units used by policy specifications.
//!
//! The paper's figures attach units directly to numbers: `5G` (size),
//! `800 ms` / `30 seconds` / `120 hours` (durations), `40KB/s` (bandwidth),
//! `50%` (fill fraction). This module normalizes them: sizes to bytes,
//! durations to milliseconds, rates to bytes/second, percent to a fraction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A unit suffix attached to a numeric literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unit {
    // sizes
    Bytes,
    KiB,
    MiB,
    GiB,
    TiB,
    // durations
    Millis,
    Seconds,
    Minutes,
    Hours,
    // rates
    BytesPerSec,
    KiBPerSec,
    MiBPerSec,
    // fraction
    Percent,
}

impl Unit {
    /// Parse a unit suffix token (already stripped of the number).
    pub fn parse(s: &str) -> Option<Unit> {
        let norm = s.trim().to_ascii_lowercase();
        Some(match norm.as_str() {
            "b" | "bytes" => Unit::Bytes,
            "k" | "kb" | "kib" => Unit::KiB,
            "m" | "mb" | "mib" => Unit::MiB,
            "g" | "gb" | "gib" => Unit::GiB,
            "t" | "tb" | "tib" => Unit::TiB,
            "ms" | "millis" | "milliseconds" => Unit::Millis,
            "s" | "sec" | "secs" | "second" | "seconds" => Unit::Seconds,
            "min" | "mins" | "minute" | "minutes" => Unit::Minutes,
            "h" | "hr" | "hrs" | "hour" | "hours" => Unit::Hours,
            "b/s" | "bps" => Unit::BytesPerSec,
            "kb/s" | "kib/s" => Unit::KiBPerSec,
            "mb/s" | "mib/s" => Unit::MiBPerSec,
            "%" | "percent" => Unit::Percent,
            _ => return None,
        })
    }

    pub fn is_size(self) -> bool {
        matches!(
            self,
            Unit::Bytes | Unit::KiB | Unit::MiB | Unit::GiB | Unit::TiB
        )
    }

    pub fn is_duration(self) -> bool {
        matches!(
            self,
            Unit::Millis | Unit::Seconds | Unit::Minutes | Unit::Hours
        )
    }

    pub fn is_rate(self) -> bool {
        matches!(self, Unit::BytesPerSec | Unit::KiBPerSec | Unit::MiBPerSec)
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Unit::Bytes => "B",
            Unit::KiB => "KB",
            Unit::MiB => "MB",
            Unit::GiB => "G",
            Unit::TiB => "T",
            Unit::Millis => "ms",
            Unit::Seconds => "seconds",
            Unit::Minutes => "minutes",
            Unit::Hours => "hours",
            Unit::BytesPerSec => "B/s",
            Unit::KiBPerSec => "KB/s",
            Unit::MiBPerSec => "MB/s",
            Unit::Percent => "%",
        };
        write!(f, "{s}")
    }
}

/// Bytes represented by `v` with size unit `u`.
pub fn to_bytes(v: f64, u: Unit) -> Option<u64> {
    let mult: f64 = match u {
        Unit::Bytes => 1.0,
        Unit::KiB => 1024.0,
        Unit::MiB => 1024.0 * 1024.0,
        Unit::GiB => 1024.0 * 1024.0 * 1024.0,
        Unit::TiB => 1024.0f64 * 1024.0 * 1024.0 * 1024.0,
        _ => return None,
    };
    Some((v * mult) as u64)
}

/// Milliseconds represented by `v` with duration unit `u`.
pub fn to_millis(v: f64, u: Unit) -> Option<f64> {
    let mult = match u {
        Unit::Millis => 1.0,
        Unit::Seconds => 1e3,
        Unit::Minutes => 60e3,
        Unit::Hours => 3600e3,
        _ => return None,
    };
    Some(v * mult)
}

/// Bytes/second represented by `v` with rate unit `u`.
pub fn to_bytes_per_sec(v: f64, u: Unit) -> Option<f64> {
    let mult = match u {
        Unit::BytesPerSec => 1.0,
        Unit::KiBPerSec => 1024.0,
        Unit::MiBPerSec => 1024.0 * 1024.0,
        _ => return None,
    };
    Some(v * mult)
}

/// Fraction (0..1) represented by `v` with unit `u` (percent only).
pub fn to_fraction(v: f64, u: Unit) -> Option<f64> {
    match u {
        Unit::Percent => Some(v / 100.0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_suffixes() {
        assert_eq!(Unit::parse("G"), Some(Unit::GiB));
        assert_eq!(Unit::parse("ms"), Some(Unit::Millis));
        assert_eq!(Unit::parse("seconds"), Some(Unit::Seconds));
        assert_eq!(Unit::parse("hours"), Some(Unit::Hours));
        assert_eq!(Unit::parse("KB/s"), Some(Unit::KiBPerSec));
        assert_eq!(Unit::parse("%"), Some(Unit::Percent));
        assert_eq!(Unit::parse("parsecs"), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(to_bytes(5.0, Unit::GiB), Some(5 * 1024 * 1024 * 1024));
        assert_eq!(to_bytes(1.5, Unit::KiB), Some(1536));
        assert_eq!(to_millis(30.0, Unit::Seconds), Some(30_000.0));
        assert_eq!(to_millis(120.0, Unit::Hours), Some(432_000_000.0));
        assert_eq!(to_bytes_per_sec(40.0, Unit::KiBPerSec), Some(40.0 * 1024.0));
        assert_eq!(to_fraction(50.0, Unit::Percent), Some(0.5));
    }

    #[test]
    fn wrong_category_returns_none() {
        assert_eq!(to_bytes(5.0, Unit::Seconds), None);
        assert_eq!(to_millis(5.0, Unit::GiB), None);
        assert_eq!(to_bytes_per_sec(5.0, Unit::Percent), None);
        assert_eq!(to_fraction(5.0, Unit::GiB), None);
    }

    #[test]
    fn category_predicates() {
        assert!(Unit::GiB.is_size());
        assert!(Unit::Hours.is_duration());
        assert!(Unit::KiBPerSec.is_rate());
        assert!(!Unit::Percent.is_size());
    }
}
