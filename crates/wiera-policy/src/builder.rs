//! Programmatic policy construction.
//!
//! The DSL is the paper's interface, but embedders often want to build
//! policies in code (e.g. generating the region list from service
//! discovery). [`PolicyBuilder`] produces the same [`PolicySpec`] the
//! parser does — so everything downstream (compilation, consistency
//! recognition, pretty-printing) is shared, and a built policy can be
//! printed back out as DSL text.
//!
//! ```
//! use wiera_policy::builder::PolicyBuilder;
//! use wiera_policy::{compile, ConsistencyModel};
//!
//! let spec = PolicyBuilder::wiera("MyPolicy")
//!     .region("Region1", "US-East", true, &[("tier1", "Memcached", "2G")])
//!     .region("Region2", "EU-West", false, &[("tier1", "Memcached", "2G")])
//!     .primary_backup(true)
//!     .cold_data_rule(72, "tier1", "tier1")
//!     .build();
//! let compiled = compile(&spec).unwrap();
//! assert_eq!(compiled.consistency, Some(ConsistencyModel::PrimaryBackup { sync: true }));
//! ```

use crate::ast::{BinOp, EventRule, Expr, Param, PolicySpec, RegionDecl, SpecKind, Stmt, TierDecl};
use crate::diag::Span;
use crate::units::Unit;
use std::collections::BTreeMap;

/// Fluent builder for [`PolicySpec`]s.
pub struct PolicyBuilder {
    spec: PolicySpec,
}

fn size_expr(size: &str) -> Expr {
    // Accept "5G", "512M", "1024" (bytes).
    let split = size
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(size.len());
    let value: f64 = size[..split].parse().unwrap_or(0.0);
    let unit = Unit::parse(&size[split..]);
    Expr::Num { value, unit }
}

fn tier_decl(label: &str, kind: &str, size: &str) -> TierDecl {
    let mut attrs = BTreeMap::new();
    attrs.insert("name".to_string(), Expr::path(&[kind]));
    if !size.is_empty() {
        attrs.insert("size".to_string(), size_expr(size));
    }
    TierDecl {
        label: label.to_string(),
        attrs,
        span: Span::default(),
    }
}

impl PolicyBuilder {
    pub fn wiera(name: &str) -> Self {
        PolicyBuilder {
            spec: PolicySpec {
                kind: SpecKind::Wiera,
                name: name.to_string(),
                params: Vec::new(),
                tiers: Vec::new(),
                regions: Vec::new(),
                events: Vec::new(),
            },
        }
    }

    pub fn tiera(name: &str) -> Self {
        PolicyBuilder {
            spec: PolicySpec {
                kind: SpecKind::Tiera,
                name: name.to_string(),
                params: Vec::new(),
                tiers: Vec::new(),
                regions: Vec::new(),
                events: Vec::new(),
            },
        }
    }

    pub fn param(mut self, ty: &str, name: &str) -> Self {
        self.spec.params.push(Param {
            ty: ty.to_string(),
            name: name.to_string(),
            span: Span::default(),
        });
        self
    }

    /// Declare a local tier (Tiera specs): `("tier1", "Memcached", "5G")`.
    /// Pass `""` for size to leave the tier provider-managed.
    pub fn tier(mut self, label: &str, kind: &str, size: &str) -> Self {
        self.spec.tiers.push(tier_decl(label, kind, size));
        self
    }

    /// Declare a region (Wiera specs) with its tier stack.
    pub fn region(
        mut self,
        label: &str,
        region: &str,
        primary: bool,
        tiers: &[(&str, &str, &str)],
    ) -> Self {
        let mut attrs = BTreeMap::new();
        attrs.insert("name".to_string(), Expr::path(&["LowLatencyInstance"]));
        attrs.insert("region".to_string(), Expr::path(&[region]));
        if primary {
            attrs.insert("primary".to_string(), Expr::Bool(true));
        }
        self.spec.regions.push(RegionDecl {
            label: label.to_string(),
            attrs,
            tiers: tiers.iter().map(|(l, k, s)| tier_decl(l, k, s)).collect(),
            span: Span::default(),
        });
        self
    }

    fn insert_event(mut self, body: Vec<Stmt>) -> Self {
        self.spec.events.push(EventRule {
            event: Expr::path(&["insert", "into"]),
            body,
            span: Span::default(),
        });
        self
    }

    fn call(name: &str, args: &[(&str, Expr)]) -> Stmt {
        Stmt::Call {
            name: name.to_string(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            span: Span::default(),
        }
    }

    /// Fig. 3(a): lock + store + synchronous broadcast + release.
    pub fn multi_primaries(self) -> Self {
        self.insert_event(vec![
            Self::call("lock", &[("what", Expr::path(&["insert", "key"]))]),
            Self::call(
                "store",
                &[
                    ("what", Expr::path(&["insert", "object"])),
                    ("to", Expr::path(&["local_instance"])),
                ],
            ),
            Self::call(
                "copy",
                &[
                    ("what", Expr::path(&["insert", "object"])),
                    ("to", Expr::path(&["all_regions"])),
                ],
            ),
            Self::call("release", &[("what", Expr::path(&["insert", "key"]))]),
        ])
    }

    /// Fig. 3(b): forward to primary; `sync` picks copy vs queue propagation.
    pub fn primary_backup(self, sync: bool) -> Self {
        let propagate = if sync { "copy" } else { "queue" };
        self.insert_event(vec![Stmt::If {
            cond: Expr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(Expr::path(&["local_instance", "isPrimary"])),
                rhs: Box::new(Expr::Bool(true)),
            },
            then: vec![
                Self::call(
                    "store",
                    &[
                        ("what", Expr::path(&["insert", "object"])),
                        ("to", Expr::path(&["local_instance"])),
                    ],
                ),
                Self::call(
                    propagate,
                    &[
                        ("what", Expr::path(&["insert", "object"])),
                        ("to", Expr::path(&["all_regions"])),
                    ],
                ),
            ],
            otherwise: vec![Self::call(
                "forward",
                &[
                    ("what", Expr::path(&["insert", "object"])),
                    ("to", Expr::path(&["primary_instance"])),
                ],
            )],
            span: Span::default(),
        }])
    }

    /// Fig. 4: local store + queued distribution.
    pub fn eventual(self) -> Self {
        self.insert_event(vec![
            Self::call(
                "store",
                &[
                    ("what", Expr::path(&["insert", "object"])),
                    ("to", Expr::path(&["local_instance"])),
                ],
            ),
            Self::call(
                "queue",
                &[
                    ("what", Expr::path(&["insert", "object"])),
                    ("to", Expr::path(&["all_regions"])),
                ],
            ),
        ])
    }

    /// Fig. 6(a): move data idle for `hours` from `from_tier` to `to_tier`.
    pub fn cold_data_rule(mut self, hours: u64, from_tier: &str, to_tier: &str) -> Self {
        self.spec.events.push(EventRule {
            event: Expr::Binary {
                op: BinOp::Gt,
                lhs: Box::new(Expr::path(&["object", "lastAccessedTime"])),
                rhs: Box::new(Expr::Num {
                    value: hours as f64,
                    unit: Some(Unit::Hours),
                }),
            },
            body: vec![Self::call(
                "move",
                &[
                    (
                        "what",
                        Expr::Binary {
                            op: BinOp::Eq,
                            lhs: Box::new(Expr::path(&["object", "location"])),
                            rhs: Box::new(Expr::path(&[from_tier])),
                        },
                    ),
                    ("to", Expr::path(&[to_tier])),
                ],
            )],
            span: Span::default(),
        });
        self
    }

    /// Write-back flush on a timer (Fig. 1(a)'s second rule).
    pub fn writeback_rule(mut self, period_secs: u64, from_tier: &str, to_tier: &str) -> Self {
        self.spec.events.push(EventRule {
            event: Expr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(Expr::path(&["time"])),
                rhs: Box::new(Expr::Num {
                    value: period_secs as f64,
                    unit: Some(Unit::Seconds),
                }),
            },
            body: vec![Self::call(
                "copy",
                &[
                    (
                        "what",
                        Expr::Binary {
                            op: BinOp::And,
                            lhs: Box::new(Expr::Binary {
                                op: BinOp::Eq,
                                lhs: Box::new(Expr::path(&["object", "location"])),
                                rhs: Box::new(Expr::path(&[from_tier])),
                            }),
                            rhs: Box::new(Expr::Binary {
                                op: BinOp::Eq,
                                lhs: Box::new(Expr::path(&["object", "dirty"])),
                                rhs: Box::new(Expr::Bool(true)),
                            }),
                        },
                    ),
                    ("to", Expr::path(&[to_tier])),
                ],
            )],
            span: Span::default(),
        });
        self
    }

    /// Append a raw event rule (escape hatch).
    pub fn rule(mut self, rule: EventRule) -> Self {
        self.spec.events.push(rule);
        self
    }

    pub fn build(self) -> PolicySpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, ConsistencyModel, EventKind};
    use crate::parser::parse;

    #[test]
    fn built_policies_compile_with_expected_consistency() {
        let mp = PolicyBuilder::wiera("Mp")
            .region("Region1", "US-East", false, &[("tier1", "Memcached", "1G")])
            .multi_primaries()
            .build();
        assert_eq!(
            compile(&mp).unwrap().consistency,
            Some(ConsistencyModel::MultiPrimaries)
        );

        let pb = PolicyBuilder::wiera("Pb")
            .region("Region1", "US-East", true, &[("tier1", "Memcached", "1G")])
            .primary_backup(false)
            .build();
        assert_eq!(
            compile(&pb).unwrap().consistency,
            Some(ConsistencyModel::PrimaryBackup { sync: false })
        );

        let ev = PolicyBuilder::wiera("Ev")
            .region("Region1", "US-East", false, &[("tier1", "Memcached", "1G")])
            .eventual()
            .build();
        assert_eq!(
            compile(&ev).unwrap().consistency,
            Some(ConsistencyModel::Eventual)
        );
    }

    #[test]
    fn built_policy_pretty_prints_to_parseable_dsl() {
        let spec = PolicyBuilder::wiera("RoundTrip")
            .region(
                "Region1",
                "US-West",
                true,
                &[("tier1", "Memcached", "2G"), ("tier2", "EBS-SSD", "10G")],
            )
            .region("Region2", "EU-West", false, &[("tier1", "Memcached", "2G")])
            .primary_backup(true)
            .cold_data_rule(120, "tier2", "tier2")
            .build();
        let printed = spec.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn tiera_builder_with_local_rules() {
        let spec = PolicyBuilder::tiera("Local")
            .param("time", "t")
            .tier("tier1", "Memcached", "5G")
            .tier("tier2", "EBS-SSD", "5G")
            .writeback_rule(30, "tier1", "tier2")
            .cold_data_rule(120, "tier2", "tier2")
            .build();
        let compiled = compile(&spec).unwrap();
        assert_eq!(compiled.tiers.len(), 2);
        assert_eq!(compiled.tiers[0].size_bytes, 5 << 30);
        assert!(
            matches!(compiled.rules[0].event, EventKind::Timer { period_ms: Some(p) } if p == 30_000.0)
        );
        assert!(matches!(
            compiled.rules[1].event,
            EventKind::ColdData { .. }
        ));
    }

    #[test]
    fn size_parsing_variants() {
        let spec = PolicyBuilder::tiera("Sizes")
            .tier("tier1", "S3", "")
            .tier("tier2", "EBS-SSD", "512M")
            .tier("tier3", "EBS-HDD", "1024")
            .build();
        let c = compile(&spec).unwrap();
        assert_eq!(c.tiers[0].size_bytes, 0);
        assert_eq!(c.tiers[1].size_bytes, 512 << 20);
        assert_eq!(c.tiers[2].size_bytes, 1024);
    }
}
