//! Tokenizer for the policy notation.
//!
//! Notable quirks inherited from the paper's figures:
//!
//! * `%` starts a line comment — *except* immediately after a number, where
//!   it is the percent unit (`tier2.filled == 50%`).
//! * Identifiers may contain hyphens when the hyphen is directly followed by
//!   an alphanumeric character (`US-West`, `US-West-1`), since the language
//!   has no arithmetic.
//! * Units may be attached to the number (`5G`, `40KB/s`) or be the next
//!   word (`800 ms`, `30 seconds`); the lexer handles the attached form and
//!   the parser merges the spaced form.
//!
//! Every token carries a [`Span`] (character offsets + line/column) so the
//! parser and static analyzer can anchor diagnostics in the source text.

use crate::diag::Span;
use crate::error::PolicyError;
use crate::units::Unit;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Num { value: f64, unit: Option<Unit> },
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Semi,
    Comma,
    Dot,
    Assign, // =
    Eq,     // ==
    Ne,     // !=
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
}

/// Token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

struct Cursor {
    /// 1-based current line.
    line: usize,
    /// Character offset where the current line starts.
    line_start: usize,
}

impl Cursor {
    fn span(&self, start: usize, end: usize) -> Span {
        Span::new(start, end, self.line, start - self.line_start + 1)
    }
}

pub fn lex(src: &str) -> Result<Vec<Token>, PolicyError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut cur = Cursor {
        line: 1,
        line_start: 0,
    };
    let n = chars.len();

    let push = |tok: Tok, span: Span, out: &mut Vec<Token>| out.push(Token { tok, span });

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                cur.line += 1;
                i += 1;
                cur.line_start = i;
            }
            c if c.is_whitespace() => i += 1,
            '%' => {
                // Comment (the number-adjacent percent case is consumed by
                // the number lexer below and never reaches here).
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                push(Tok::LBrace, cur.span(i, i + 1), &mut out);
                i += 1;
            }
            '}' => {
                push(Tok::RBrace, cur.span(i, i + 1), &mut out);
                i += 1;
            }
            '(' => {
                push(Tok::LParen, cur.span(i, i + 1), &mut out);
                i += 1;
            }
            ')' => {
                push(Tok::RParen, cur.span(i, i + 1), &mut out);
                i += 1;
            }
            ':' => {
                push(Tok::Colon, cur.span(i, i + 1), &mut out);
                i += 1;
            }
            ';' => {
                push(Tok::Semi, cur.span(i, i + 1), &mut out);
                i += 1;
            }
            ',' => {
                push(Tok::Comma, cur.span(i, i + 1), &mut out);
                i += 1;
            }
            '.' => {
                push(Tok::Dot, cur.span(i, i + 1), &mut out);
                i += 1;
            }
            '=' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push(Tok::Eq, cur.span(i, i + 2), &mut out);
                    i += 2;
                } else {
                    push(Tok::Assign, cur.span(i, i + 1), &mut out);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push(Tok::Ne, cur.span(i, i + 2), &mut out);
                    i += 2;
                } else {
                    return Err(PolicyError::at_span(cur.span(i, i + 1), "unexpected '!'"));
                }
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push(Tok::Le, cur.span(i, i + 2), &mut out);
                    i += 2;
                } else {
                    push(Tok::Lt, cur.span(i, i + 1), &mut out);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    push(Tok::Ge, cur.span(i, i + 2), &mut out);
                    i += 2;
                } else {
                    push(Tok::Gt, cur.span(i, i + 1), &mut out);
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < n && chars[i + 1] == '&' {
                    push(Tok::AndAnd, cur.span(i, i + 2), &mut out);
                    i += 2;
                } else {
                    return Err(PolicyError::at_span(
                        cur.span(i, i + 1),
                        "unexpected '&' (use '&&')",
                    ));
                }
            }
            '|' => {
                if i + 1 < n && chars[i + 1] == '|' {
                    push(Tok::OrOr, cur.span(i, i + 2), &mut out);
                    i += 2;
                } else {
                    return Err(PolicyError::at_span(
                        cur.span(i, i + 1),
                        "unexpected '|' (use '||')",
                    ));
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < n && chars[j] != '"' {
                    if chars[j] == '\n' {
                        return Err(PolicyError::at_span(cur.span(i, j), "unterminated string"));
                    }
                    j += 1;
                }
                if j >= n {
                    return Err(PolicyError::at_span(cur.span(i, n), "unterminated string"));
                }
                push(
                    Tok::Str(chars[start..j].iter().collect()),
                    cur.span(i, j + 1),
                    &mut out,
                );
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    // A dot followed by a non-digit ends the number (it's a
                    // path separator, though numbers never start paths here).
                    if chars[i] == '.' && (i + 1 >= n || !chars[i + 1].is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value: f64 = text.parse().map_err(|_| {
                    PolicyError::at_span(cur.span(start, i), format!("bad number '{text}'"))
                })?;
                // Attached unit suffix: letters optionally followed by "/s",
                // or a '%' directly after the digits.
                let mut unit = None;
                if i < n && chars[i] == '%' {
                    unit = Some(Unit::Percent);
                    i += 1;
                } else if i < n && chars[i].is_ascii_alphabetic() {
                    let ustart = i;
                    let mut j = i;
                    while j < n && chars[j].is_ascii_alphabetic() {
                        j += 1;
                    }
                    if j + 1 < n && chars[j] == '/' && chars[j + 1] == 's' {
                        j += 2;
                    }
                    let utext: String = chars[ustart..j].iter().collect();
                    if let Some(u) = Unit::parse(&utext) {
                        unit = Some(u);
                        i = j;
                    }
                    // Not a unit: leave it for the identifier lexer (e.g.
                    // a key like `5foo` would be odd, but don't swallow it).
                }
                push(Tok::Num { value, unit }, cur.span(start, i), &mut out);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n {
                    let ch = chars[i];
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        i += 1;
                    } else if ch == '-' && i + 1 < n && (chars[i + 1].is_ascii_alphanumeric()) {
                        // Hyphenated identifier (US-West, S3-IA).
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                push(Tok::Ident(text), cur.span(start, i), &mut out);
            }
            other => {
                return Err(PolicyError::at_span(
                    cur.span(i, i + 1),
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_symbols_and_idents() {
        assert_eq!(
            toks("tier1: {name: Memcached, size: 5G};"),
            vec![
                Tok::Ident("tier1".into()),
                Tok::Colon,
                Tok::LBrace,
                Tok::Ident("name".into()),
                Tok::Colon,
                Tok::Ident("Memcached".into()),
                Tok::Comma,
                Tok::Ident("size".into()),
                Tok::Colon,
                Tok::Num {
                    value: 5.0,
                    unit: Some(Unit::GiB)
                },
                Tok::RBrace,
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn percent_after_number_vs_comment() {
        assert_eq!(
            toks("tier2.filled == 50%"),
            vec![
                Tok::Ident("tier2".into()),
                Tok::Dot,
                Tok::Ident("filled".into()),
                Tok::Eq,
                Tok::Num {
                    value: 50.0,
                    unit: Some(Unit::Percent)
                },
            ]
        );
        // '%' elsewhere starts a comment.
        assert_eq!(
            toks("a % this is a comment\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn hyphenated_identifiers() {
        assert_eq!(toks("US-West-1"), vec![Tok::Ident("US-West-1".into())]);
        assert_eq!(toks("S3-IA"), vec![Tok::Ident("S3-IA".into())]);
    }

    #[test]
    fn attached_rate_unit() {
        assert_eq!(
            toks("bandwidth:40KB/s"),
            vec![
                Tok::Ident("bandwidth".into()),
                Tok::Colon,
                Tok::Num {
                    value: 40.0,
                    unit: Some(Unit::KiBPerSec)
                },
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a == b != c <= d >= e < f > g = h"),
            vec![
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Ident("b".into()),
                Tok::Ne,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Ge,
                Tok::Ident("e".into()),
                Tok::Lt,
                Tok::Ident("f".into()),
                Tok::Gt,
                Tok::Ident("g".into()),
                Tok::Assign,
                Tok::Ident("h".into()),
            ]
        );
    }

    #[test]
    fn boolean_connectives() {
        assert_eq!(
            toks("a && b || c"),
            vec![
                Tok::Ident("a".into()),
                Tok::AndAnd,
                Tok::Ident("b".into()),
                Tok::OrOr,
                Tok::Ident("c".into()),
            ]
        );
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn decimal_numbers_and_paths() {
        assert_eq!(
            toks("x = 2.5"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Num {
                    value: 2.5,
                    unit: None
                }
            ]
        );
        // Trailing dot is a path separator, not a decimal point.
        assert_eq!(
            toks("insert.object"),
            vec![
                Tok::Ident("insert".into()),
                Tok::Dot,
                Tok::Ident("object".into())
            ]
        );
    }

    #[test]
    fn spans_report_line_col_and_offsets() {
        let tokens = lex("a\nb\n  c").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[0].span.col, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[1].span.col, 1);
        assert_eq!(tokens[2].span.line, 3);
        assert_eq!(tokens[2].span.col, 3);
        assert_eq!((tokens[2].span.start, tokens[2].span.end), (6, 7));
    }

    #[test]
    fn lex_errors_carry_spans() {
        let err = lex("ok\n  !bad").unwrap_err();
        let span = err.span.expect("lex error has a span");
        assert_eq!((span.line, span.col), (2, 3));
    }

    #[test]
    fn quoted_strings() {
        assert_eq!(
            toks("\"hello world\""),
            vec![Tok::Str("hello world".into())]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn spaced_unit_stays_separate_token() {
        // "800 ms": the parser merges these; the lexer keeps them separate.
        assert_eq!(
            toks("800 ms"),
            vec![
                Tok::Num {
                    value: 800.0,
                    unit: None
                },
                Tok::Ident("ms".into())
            ]
        );
    }
}
