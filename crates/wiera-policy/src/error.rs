//! Policy-language errors with source positions.

use crate::diag::{Diagnostic, Span};
use std::fmt;

/// Error from parsing or compiling a policy specification.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyError {
    pub message: String,
    /// 1-based line in the source text, when known.
    pub line: Option<usize>,
    /// Full source range, when known (strictly more precise than `line`).
    pub span: Option<Span>,
    /// When compilation was refused by the static analyzer, the findings
    /// that caused it (deny-level first; may include warnings and notes).
    pub diagnostics: Vec<Diagnostic>,
}

impl PolicyError {
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        PolicyError {
            message: message.into(),
            line: Some(line),
            span: None,
            diagnostics: Vec::new(),
        }
    }

    pub fn at_span(span: Span, message: impl Into<String>) -> Self {
        PolicyError {
            message: message.into(),
            line: Some(span.line),
            span: Some(span),
            diagnostics: Vec::new(),
        }
    }

    pub fn general(message: impl Into<String>) -> Self {
        PolicyError {
            message: message.into(),
            line: None,
            span: None,
            diagnostics: Vec::new(),
        }
    }

    /// An error carrying the analyzer findings that produced it.
    pub fn rejected(diagnostics: Vec<Diagnostic>) -> Self {
        let first_deny = diagnostics
            .iter()
            .find(|d| d.severity == crate::diag::Severity::Deny);
        let (message, line, span) = match first_deny {
            Some(d) => (
                format!("policy rejected: [{}] {}", d.code, d.message),
                d.span.map(|s| s.line),
                d.span,
            ),
            None => ("policy rejected by analyzer".to_string(), None, None),
        };
        PolicyError {
            message,
            line,
            span,
            diagnostics,
        }
    }

    /// Attach a span when this error has none (used to anchor lowering
    /// errors to the statement or rule they came from).
    pub fn or_at(mut self, span: Span) -> Self {
        if self.span.is_none() {
            self.span = Some(span);
            self.line = self.line.or(Some(span.line));
        }
        self
    }

    /// Render this error as a single front-end diagnostic (`WP000`), so
    /// parse and lowering failures print uniformly with analyzer findings.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let d = Diagnostic::deny(crate::diag::Code::Wp000, self.message.clone());
        match self.span {
            Some(s) => d.at(s),
            None => match self.line {
                Some(l) => d.at(Span::new(0, 0, l, 1)),
                None => d,
            },
        }
    }
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.message)?,
            None => write!(f, "{}", self.message)?,
        }
        let denies = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == crate::diag::Severity::Deny)
            .count();
        if denies > 1 {
            write!(f, " (+{} more deny diagnostics)", denies - 1)?;
        }
        Ok(())
    }
}

impl std::error::Error for PolicyError {}
