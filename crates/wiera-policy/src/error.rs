//! Policy-language errors with source positions.

use std::fmt;

/// Error from parsing or compiling a policy specification.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyError {
    pub message: String,
    /// 1-based line in the source text, when known.
    pub line: Option<usize>,
}

impl PolicyError {
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        PolicyError {
            message: message.into(),
            line: Some(line),
        }
    }

    pub fn general(message: impl Into<String>) -> Self {
        PolicyError {
            message: message.into(),
            line: None,
        }
    }
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for PolicyError {}
