//! `wiera-lint` — static analysis for Wiera policy specifications.
//!
//! ```text
//! wiera-lint [--json] [--deny-warnings] [--canned] [FILES...]
//! ```
//!
//! Lints each policy file (and, with `--canned`, every canned paper
//! policy). Findings print in a rustc-like caret format, or as a JSON
//! array with `--json`.
//!
//! Exit status: `0` clean, `1` deny-level findings (or any warning under
//! `--deny-warnings`), `2` usage or I/O error.

use std::process::ExitCode;
use wiera_policy::diag::{worst_is_deny, Diagnostic, Severity};

const USAGE: &str = "\
usage: wiera-lint [--json] [--deny-warnings] [--canned] [FILES...]

  --json           print findings as a JSON array instead of human text
  --deny-warnings  exit non-zero on warnings too (notes never gate)
  --canned         also lint every canned paper policy
  --codes          list all diagnostic codes and exit
";

struct Options {
    json: bool,
    deny_warnings: bool,
    canned: bool,
    codes: bool,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        canned: false,
        codes: false,
        files: Vec::new(),
    };
    for a in args {
        match a.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--canned" => opts.canned = true,
            "--codes" => opts.codes = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if !opts.codes && opts.files.is_empty() && !opts.canned {
        return Err("no input files (use --canned to lint the canned corpus)".to_string());
    }
    Ok(opts)
}

/// One lint unit: an origin label plus policy source text.
struct Input {
    origin: String,
    src: String,
}

fn gather_inputs(opts: &Options) -> Result<Vec<Input>, String> {
    let mut inputs = Vec::new();
    if opts.canned {
        for (id, _, src) in wiera_policy::canned::ALL {
            inputs.push(Input {
                origin: format!("canned:{id}"),
                src: src.to_string(),
            });
        }
    }
    for path in &opts.files {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        inputs.push(Input {
            origin: path.clone(),
            src,
        });
    }
    Ok(inputs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("wiera-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.codes {
        for code in wiera_policy::diag::ALL_CODES {
            println!("{}  {}", code.as_str(), code.describe());
        }
        return ExitCode::SUCCESS;
    }

    let inputs = match gather_inputs(&opts) {
        Ok(i) => i,
        Err(msg) => {
            eprintln!("wiera-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut gating = false;
    let mut json_items: Vec<String> = Vec::new();
    let mut counts = (0usize, 0usize, 0usize); // deny, warn, note
    for input in &inputs {
        let (_, diags) = wiera_policy::analyze_source(&input.src);
        gating |= worst_is_deny(&diags, opts.deny_warnings);
        for d in &diags {
            match d.severity {
                Severity::Deny => counts.0 += 1,
                Severity::Warn => counts.1 += 1,
                Severity::Note => counts.2 += 1,
            }
            if opts.json {
                json_items.push(diag_json(&input.origin, d));
            } else {
                print!("{}", d.render_human(&input.src, &input.origin));
            }
        }
    }

    if opts.json {
        println!("[{}]", json_items.join(","));
    } else {
        let (deny, warn, note) = counts;
        if deny + warn + note > 0 {
            println!(
                "{} polic{} checked: {deny} deny, {warn} warning{}, {note} note{}",
                inputs.len(),
                if inputs.len() == 1 { "y" } else { "ies" },
                if warn == 1 { "" } else { "s" },
                if note == 1 { "" } else { "s" },
            );
        }
    }

    if gating {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The diagnostic's own JSON with the origin file spliced in.
fn diag_json(origin: &str, d: &Diagnostic) -> String {
    let body = d.to_json();
    let rest = body.strip_prefix('{').unwrap_or(&body);
    format!("{{\"origin\":{},{rest}", json_escape(origin))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
